"""Evaluation-as-a-service: the programmatic client for `repro.serving`.

Walks the serving API end to end:

1. train small policies (the service serves whatever weights you hand it);
2. stand up an :class:`EvaluationService` with a content-addressed result
   cache and submit a burst of episode requests -- cold, so every request
   rolls through the continuously-batched fleet;
3. repeat the identical burst -- warm, so every request is a cache hit and
   nothing rolls;
4. verify the serving determinism contract: cold traces, warm traces and a
   plain ``evaluate_system`` batch run are byte-identical, lane for lane;
5. show the JSONL line a network front-end would send for the same request
   (``repro-experiments serve`` / ``python -m repro.serving``).

Run:  PYTHONPATH=src python examples/serving_client.py

``REPRO_EXAMPLE_SCALE=smoke`` shrinks training and the request burst for
the examples smoke test.  Pass ``workers=2`` to ``EvaluationService`` to
fan requests across the warm multi-process pool instead (wrap the call in
``if __name__ == "__main__":`` -- pool workers re-import this module).

``REPRO_SERVING_TCP=HOST:PORT`` switches the script into a *network*
walkthrough: instead of standing up an in-process service it drives a
running TCP server (``python -m repro.serving --tcp HOST:PORT``) over a
socket -- a cold request burst, a cached rerun checked byte-identical
modulo the ``cached`` flag, one injected garbage frame (the connection
survives, the bad frame gets its own error envelope), and the server's
merged stats.  The CI ``serving-tcp`` job runs exactly this mode.
"""

import json
import os
import time

import numpy as np

from repro.analysis.evaluation import JOB_LENGTH, TrainedPolicies, evaluate_system
from repro.core import (
    BaselinePolicy,
    CorkiPolicy,
    TrainingConfig,
    train_baseline,
    train_corki,
)
from repro.serving import EpisodeRequest, EvaluationService, ResultCache
from repro.serving.client import ServingClient
from repro.sim import OBSERVATION_DIM, SEEN_LAYOUT, TASKS, collect_demonstrations
from repro.sim.tasks import sample_job

SMOKE = os.environ.get("REPRO_EXAMPLE_SCALE") == "smoke"
SEED = 11
REQUESTS = 4 if SMOKE else 8


def train_small_policies() -> TrainedPolicies:
    rng = np.random.default_rng(0)
    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=1 if SMOKE else 3)
    baseline = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    corki = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    config = TrainingConfig(epochs=1, batch_size=64)
    train_baseline(baseline, demos, config)
    train_corki(corki, demos, config)
    return TrainedPolicies(baseline, corki, demos_per_task=1, epochs=1)


def job_frames(count: int) -> list[dict]:
    """JSONL request frames mirroring lanes 0..count-1 of a batch run."""
    job_rng = np.random.default_rng(SEED)
    jobs = [sample_job(job_rng, JOB_LENGTH) for _ in range(count)]
    return [
        {
            "id": f"job-{lane}",
            "system": "corki-5",
            "instructions": [task.instruction for task in job],
            "seed": SEED,
            "lane": lane,
        }
        for lane, job in enumerate(jobs)
    ]


def run_tcp_walkthrough(address: str) -> None:
    """Drive a running ``python -m repro.serving --tcp`` server over a socket."""
    host, _, port_text = address.rpartition(":")
    frames = job_frames(REQUESTS)
    with ServingClient(host, int(port_text), attempts=40, retry_wait=0.25) as client:
        print(f"cold burst: {REQUESTS} five-task job requests over {address} ...")
        started = time.perf_counter()
        for frame in frames:
            client.send(frame)
        client.flush()
        cold: dict[str, bytes] = {}
        for _ in frames:
            line = client.recv_raw()
            cold[json.loads(line)["id"]] = line
        cold_s = time.perf_counter() - started
        statuses = [json.loads(cold[frame["id"]])["status"] for frame in frames]
        assert statuses == ["ok"] * REQUESTS, statuses
        print(f"  {cold_s:.2f}s, cached: "
              f"{[json.loads(cold[frame['id']])['cached'] for frame in frames]}")

        print("re-sending the identical burst (warm cache) ...")
        started = time.perf_counter()
        for frame in frames:
            client.send(frame)
        client.flush()
        warm: dict[str, bytes] = {}
        for _ in frames:
            line = client.recv_raw()
            warm[json.loads(line)["id"]] = line
        warm_s = time.perf_counter() - started
        for frame in frames:
            fresh = json.loads(cold[frame["id"]])
            rerun = json.loads(warm[frame["id"]])
            assert rerun.pop("cached") is True
            fresh.pop("cached")
            assert json.dumps(fresh) == json.dumps(rerun), frame["id"]
        print(f"  {warm_s:.3f}s ({cold_s / max(warm_s, 1e-9):.0f}x faster), "
              "byte-identical modulo the `cached` flag")

        print("injecting one garbage frame next to a valid request ...")
        client.send_raw(b"this is not json")
        client.send({
            "id": "after-garbage",
            "system": "roboflamingo",
            "instruction": TASKS[0].instruction,
            "seed": SEED,
            "lane": 0,
            "max_frames": 40,
        })
        client.flush()
        by_id = {response.get("id"): response for response in
                 (client.recv() for _ in range(2))}
        assert by_id[None]["status"] == "error", by_id
        assert by_id["after-garbage"]["status"] == "ok", by_id
        print(f"  error envelope: {json.dumps(by_id[None])}")
        print("  the valid frame on the same connection still served")

        print("\nserver stats:", json.dumps(client.stats()))


def main() -> None:
    tcp_address = os.environ.get("REPRO_SERVING_TCP")
    if tcp_address:
        run_tcp_walkthrough(tcp_address)
        return

    print("training small policies ...")
    policies = train_small_policies()

    # Requests address episodes exactly like batch-evaluation lanes do:
    # (seed, lane) fixes the random streams, the instructions fix the job.
    # These mirror lanes 0..N-1 of `evaluate_system(..., seed=SEED)`.
    job_rng = np.random.default_rng(SEED)
    jobs = [sample_job(job_rng, JOB_LENGTH) for _ in range(REQUESTS)]
    requests = [
        EpisodeRequest(
            system="corki-5",
            instructions=tuple(task.instruction for task in job),
            seed=SEED,
            lane=lane,
        )
        for lane, job in enumerate(jobs)
    ]

    service = EvaluationService(policies, workers=1, slots=4, cache=ResultCache())
    print(f"\nserving {REQUESTS} five-task job requests (cold cache) ...")
    started = time.perf_counter()
    cold = service.serve(requests)
    cold_s = time.perf_counter() - started
    completed = sum(sum(result.successes) for result in cold)
    print(f"  {cold_s:.2f}s, {completed} tasks completed, "
          f"cached: {[result.cached for result in cold]}")

    print("re-serving the identical requests (warm cache) ...")
    started = time.perf_counter()
    warm = service.serve(requests)
    warm_s = time.perf_counter() - started
    print(f"  {warm_s:.3f}s ({cold_s / max(warm_s, 1e-9):.0f}x faster), "
          f"cached: {[result.cached for result in warm]}")

    print("\nchecking the determinism contract against a batch run ...")
    batch = evaluate_system(policies, "corki-5", SEEN_LAYOUT, jobs=REQUESTS, seed=SEED)
    batch_traces = batch.traces
    served_traces = [trace for result in warm for trace in result.traces]
    assert len(batch_traces) == len(served_traces)
    for fresh, served in zip(batch_traces, served_traces):
        assert fresh.success == served.success
        assert fresh.frames == served.frames
        assert fresh.executed_steps == served.executed_steps
        assert np.array_equal(fresh.ee_path, served.ee_path)
        assert np.array_equal(fresh.gripper_path, served.gripper_path)
    print("  cached == fresh == batch, byte for byte")

    print("\nservice stats:", service.stats())
    print("\nthe same request as one repro-serve JSONL line:")
    print(" ", json.dumps({
        "id": "job-0",
        "system": requests[0].system,
        "instructions": list(requests[0].instructions),
        "seed": requests[0].seed,
        "lane": requests[0].lane,
    }))


if __name__ == "__main__":
    main()
