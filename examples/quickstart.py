"""Quickstart: train a small Corki policy and run one closed-loop episode.

This walks the full public API in about a minute:

1. collect scripted-expert demonstrations in the CALVIN-like environment;
2. train the baseline (per-frame) and Corki (trajectory) policy heads;
3. roll out one episode of each and compare behaviour;
4. roll out a batch of episodes through the fleet engine;
5. compose the system-level latency/energy model for both pipelines.

Run:  PYTHONPATH=src python examples/quickstart.py

Set ``REPRO_EXAMPLE_SCALE=smoke`` to run the same walkthrough at a few
seconds' scale (fewer demos/epochs, smaller heads) -- what
``tests/test_examples.py`` runs so this script cannot rot.
"""

import os
import time

import numpy as np

from repro.core import (
    VARIATIONS,
    BaselinePolicy,
    CorkiPolicy,
    TrainingConfig,
    run_baseline_episode,
    run_corki_episode,
    run_corki_fleet,
    train_baseline,
    train_corki,
)
from repro.pipeline import simulate_baseline, simulate_corki
from repro.sim import (
    OBSERVATION_DIM,
    SEEN_LAYOUT,
    TASKS,
    ManipulationEnv,
    collect_demonstrations,
)


# The smoke scale trades fidelity for seconds; it exists so the examples
# smoke test exercises every code path here on every tier-1 run.
SMOKE = os.environ.get("REPRO_EXAMPLE_SCALE") == "smoke"
PER_TASK = 1 if SMOKE else 6
EPOCHS = 1 if SMOKE else 3
TOKEN_DIM, HIDDEN_DIM = (16, 32) if SMOKE else (32, 64)
FLEET_N = 4 if SMOKE else 8


def main() -> None:
    rng = np.random.default_rng(0)

    print("collecting demonstrations ...")
    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=PER_TASK)
    print(f"  {len(demos)} demonstrations across {len(TASKS)} instructions")

    print("training policies (small configuration) ...")
    baseline = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=TOKEN_DIM, hidden_dim=HIDDEN_DIM)
    corki = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=TOKEN_DIM, hidden_dim=HIDDEN_DIM)
    config = TrainingConfig(epochs=EPOCHS)
    print(f"  baseline loss: {[round(x, 3) for x in train_baseline(baseline, demos, config)]}")
    print(f"  corki loss:    {[round(x, 3) for x in train_corki(corki, demos, config)]}")

    task = TASKS[0]  # "lift the red block"
    print(f"\nrolling out: {task.instruction!r}")
    env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(42))
    baseline_trace = run_baseline_episode(env, baseline, task)
    env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(42))
    corki_trace = run_corki_episode(
        env, corki, task, VARIATIONS["corki-5"], np.random.default_rng(7)
    )
    print(f"  baseline: success={baseline_trace.success}  "
          f"frames={baseline_trace.frames}  inferences={baseline_trace.inference_count}")
    print(f"  corki-5:  success={corki_trace.success}  "
          f"frames={corki_trace.frames}  inferences={corki_trace.inference_count}")

    fleet_n = FLEET_N
    print(f"\nbatched fleet evaluation ({fleet_n} Corki-5 lanes in lock-step):")
    envs = [ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(42 + i)) for i in range(fleet_n)]
    rngs = [np.random.default_rng(7 + i) for i in range(fleet_n)]
    started = time.perf_counter()
    fleet_traces = run_corki_fleet(
        envs, corki, [TASKS[i % len(TASKS)] for i in range(fleet_n)],
        VARIATIONS["corki-5"], rngs,
    )
    elapsed = time.perf_counter() - started
    successes = sum(trace.success for trace in fleet_traces)
    print(f"  {fleet_n} episodes in {elapsed:.2f}s "
          f"({fleet_n / elapsed:.1f} episodes/s), {successes} succeeded")

    print("\nsystem pipeline model (paper-calibrated constants):")
    base_pipe = simulate_baseline(60)
    corki_pipe = simulate_corki(corki_trace.executed_steps or [5] * 12)
    print(f"  baseline: {base_pipe.mean_latency_ms:6.1f} ms/frame "
          f"({base_pipe.frequency_hz:4.1f} Hz)")
    print(f"  corki-5:  {corki_pipe.mean_latency_ms:6.1f} ms/frame "
          f"({corki_pipe.frequency_hz:4.1f} Hz)  "
          f"speedup {corki_pipe.speedup_vs(base_pipe):.1f}x  "
          f"energy reduction {corki_pipe.energy_reduction_vs(base_pipe):.1f}x")


if __name__ == "__main__":
    main()
