"""Long-horizon evaluation: a five-task CALVIN-style job.

Chains five tasks in one persistent scene, as the paper's average-job-length
metric requires, and reports per-task outcomes for the baseline and Corki-5
along with the inference cost each incurred.

Run:  python examples/long_horizon_job.py

``REPRO_EXAMPLE_SCALE=smoke`` runs the same walkthrough in a few seconds
(fewer demos/epochs, small heads) for the examples smoke test.
"""

import os

import numpy as np

from repro.core import (
    VARIATIONS,
    BaselinePolicy,
    CorkiPolicy,
    TrainingConfig,
    run_baseline_episode,
    run_corki_episode,
    run_job,
    train_baseline,
    train_corki,
)
from repro.sim import (
    OBSERVATION_DIM,
    SEEN_LAYOUT,
    TASKS,
    ManipulationEnv,
    collect_demonstrations,
    sample_job,
)


SMOKE = os.environ.get("REPRO_EXAMPLE_SCALE") == "smoke"


def main() -> None:
    rng = np.random.default_rng(0)
    print("training policies ...")
    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=1 if SMOKE else 6)
    dims = {"token_dim": 16, "hidden_dim": 32} if SMOKE else {}
    baseline = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, **dims)
    corki = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, **dims)
    config = TrainingConfig(epochs=1 if SMOKE else 3)
    train_baseline(baseline, demos, config)
    train_corki(corki, demos, config)

    job = sample_job(np.random.default_rng(99))
    print("\njob:", " -> ".join(task.instruction for task in job))

    for system in ("roboflamingo", "corki-5"):
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(1))
        policy_rng = np.random.default_rng(2)
        if system == "roboflamingo":
            def episode(task, chained):
                return run_baseline_episode(env, baseline, task, chained=chained)
        else:
            def episode(task, chained):
                return run_corki_episode(
                    env, corki, task, VARIATIONS["corki-5"], policy_rng, chained=chained
                )
        traces = run_job(env, job, episode)
        completed = sum(trace.success for trace in traces)
        inferences = sum(trace.inference_count for trace in traces)
        frames = sum(trace.frames for trace in traces)
        print(f"\n{system}: completed {completed}/5 tasks "
              f"({frames} frames, {inferences} VLM inferences)")
        for task, trace in zip(job, traces):
            mark = "ok " if trace.success else "FAIL"
            print(f"  [{mark}] {task.instruction:38s} {trace.frames:3d} frames")


if __name__ == "__main__":
    main()
