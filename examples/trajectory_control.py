"""Track a Corki trajectory on the full Panda rigid-body model.

Shows the hardware half of the co-design: a cubic trajectory (what the Corki
policy emits) is followed with task-space computed torque control, once on
the plain software controller and once through the accelerator model with
approximate computing enabled, reporting tracking error, ACE skip rate, and
modeled cycle counts.

Run:  python examples/trajectory_control.py
"""

import numpy as np

from repro.accelerator import CLOCK_MHZ, CorkiAccelerator, ablation, resource_report
from repro.analysis import sample_trajectory, track_trajectory
from repro.robot import panda


def main() -> None:
    model = panda()
    rng = np.random.default_rng(3)
    trajectory = sample_trajectory(model, rng)
    motion = np.linalg.norm(trajectory.pose(trajectory.duration)[:3] - trajectory.origin[:3])
    print(f"trajectory: {trajectory.steps} steps over {trajectory.duration * 1000:.0f} ms, "
          f"{motion * 100:.1f} cm of end-effector motion")

    print("\ntracking with software TS-CTC:")
    for hz in (30, 100):
        report = track_trajectory(model, trajectory, control_hz=hz)
        print(f"  {hz:3d} Hz control: rmse {report.rmse_m * 1000:5.2f} mm, "
              f"max {report.max_error_m * 1000:5.2f} mm")

    print("\ntracking through the Corki accelerator (threshold 40%):")
    accelerator = CorkiAccelerator(model, threshold=0.4)
    report = track_trajectory(model, trajectory, control_hz=100, accelerator=accelerator)
    cycles = np.array(accelerator.cycle_log)
    print(f"  rmse {report.rmse_m * 1000:.2f} mm with {report.skip_rate * 100:.1f}% "
          "of matrix updates skipped")
    print(f"  control tick: mean {cycles.mean():.0f} cycles "
          f"({cycles.mean() / CLOCK_MHZ:.2f} us at {CLOCK_MHZ:.0f} MHz), "
          f"min {cycles.min()}, max {cycles.max()}")

    print("\ndatapath ablation (paper Sec. 4.2):")
    reports = ablation(model.dof)
    base = reports["baseline"]
    for name, report in reports.items():
        print(f"  {name:15s} {report.cycles:5d} cycles  "
              f"(-{report.reduction_vs(base) * 100:4.1f}% vs baseline)")

    print("\nFPGA resource estimate (ZC706):")
    for name, used, pct in resource_report().rows():
        print(f"  {name:5s} {used:7d}  {pct:4.1f}%")


if __name__ == "__main__":
    main()
