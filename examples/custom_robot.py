"""Bring your own arm: build a custom robot model and run the Corki stack.

The library is parameterised by robot morphology (as the accelerator
literature it builds on argues it should be): a UR5-class 6-DoF arm is
assembled from modified-DH and inertial parameters, validated, and driven
through TS-CTC and the accelerator model -- whose datapath cycle counts and
ablation automatically re-scale with the link count.

Run:  python examples/custom_robot.py
"""

import numpy as np

from repro.accelerator import CorkiAccelerator, ablation
from repro.analysis import sample_trajectory, track_trajectory
from repro.robot import (
    LinkParameters,
    RobotModel,
    end_effector_pose,
    forward_kinematics,
    mass_matrix,
    solve_ik,
)


def build_ur5_like() -> RobotModel:
    """A UR5-class 6-DoF arm from public kinematic/inertial figures."""
    mdh = [
        # (a, alpha, d)
        (0.0, 0.0, 0.1625),
        (0.0, np.pi / 2.0, 0.0),
        (-0.425, 0.0, 0.0),
        (-0.3922, 0.0, 0.1333),
        (0.0, np.pi / 2.0, 0.0997),
        (0.0, -np.pi / 2.0, 0.0996),
    ]
    masses = [3.761, 8.058, 2.846, 1.37, 1.3, 0.365]
    coms = [
        (0.0, -0.02561, 0.00193),
        (0.2125, 0.0, 0.11336),
        (0.15, 0.0, 0.0265),
        (0.0, -0.0018, 0.01634),
        (0.0, 0.0018, 0.01634),
        (0.0, 0.0, -0.001159),
    ]
    links = []
    for (a, alpha, d), mass, com in zip(mdh, masses, coms):
        # Rough rotational inertia: solid-cylinder estimate about the COM.
        inertia = np.eye(3) * max(0.002, 0.02 * mass * 0.05)
        links.append(
            LinkParameters(a=a, alpha=alpha, d=d, mass=mass, com=np.array(com), inertia_com=inertia)
        )
    flange = np.eye(4)
    return RobotModel(
        name="ur5-like",
        links=links,
        flange=flange,
        q_home=np.array([0.0, -1.2, 1.4, -1.6, -1.5, 0.0]),
        q_lower=-2.9 * np.ones(6),
        q_upper=2.9 * np.ones(6),
        qd_limit=np.full(6, 3.14),
        tau_limit=np.array([150.0, 150.0, 150.0, 28.0, 28.0, 28.0]),
    )


def main() -> None:
    robot = build_ur5_like()
    print(f"built {robot.name}: {robot.dof} joints")

    pose = forward_kinematics(robot, robot.q_home)
    print(f"home end-effector position: {np.round(pose[:3, 3], 3)}")

    m = mass_matrix(robot, robot.q_home)
    eigenvalues = np.linalg.eigvalsh(m)
    print(f"mass matrix PD: {bool(eigenvalues.min() > 0)} "
          f"(eigenvalues {eigenvalues.min():.3f} .. {eigenvalues.max():.3f})")

    target = end_effector_pose(robot, robot.q_home)
    target[2] -= 0.08
    result = solve_ik(robot, target)
    print(f"IK to 8 cm below home: converged={result.converged} "
          f"in {result.iterations} iterations ({result.position_error * 1000:.2f} mm)")

    trajectory = sample_trajectory(robot, np.random.default_rng(0), steps=6)
    report = track_trajectory(robot, trajectory, control_hz=100, physics_hz=400)
    print(f"TS-CTC tracking: rmse {report.rmse_m * 1000:.2f} mm")

    accelerator = CorkiAccelerator(robot, threshold=0.4)
    print(f"accelerator full tick: {accelerator.full_tick_cycles()} cycles "
          f"(6-link datapath, vs {ablation(7)['reuse+pipeline'].cycles} for the Panda)")
    reports = ablation(robot.dof)
    base = reports["baseline"]
    for name, schedule in reports.items():
        print(f"  {name:15s} {schedule.cycles:4d} cycles "
              f"(-{schedule.reduction_vs(base) * 100:4.1f}%)")


if __name__ == "__main__":
    main()
