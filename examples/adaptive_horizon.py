"""Algorithm 1 in action: adaptive trajectory length selection.

Constructs trajectories with known geometry -- straight, sharply curved, and
with a gripper change -- and shows where the waypoint identification
algorithm terminates each one.  Then compares the execution-length
distribution Corki-ADAP produces against fixed-step variants on the
system-level latency model.

Run:  python examples/adaptive_horizon.py
"""

import numpy as np

from repro.core import (
    CubicTrajectory,
    adaptive_termination_step,
    fit_cubic,
    gripper_change_flags,
)
from repro.pipeline import simulate_baseline, simulate_corki


def make_trajectory(offsets: np.ndarray, gripper_open: np.ndarray) -> CubicTrajectory:
    return CubicTrajectory(
        origin=np.zeros(6),
        coefficients=fit_cubic(offsets),
        duration=len(offsets) / 30.0,
        gripper_open=gripper_open,
    )


def describe(name: str, trajectory: CubicTrajectory, current_gripper_open: bool) -> int:
    waypoints = trajectory.waypoints()[:, :3]
    flags = gripper_change_flags(trajectory.gripper_open, current_gripper_open)
    step = adaptive_termination_step(trajectory.origin[:3], waypoints, flags, 0.02)
    print(f"  {name:28s} -> execute {step} of {trajectory.steps} steps")
    return step


def main() -> None:
    steps = 9
    tau = np.arange(1, steps + 1)[:, None] / steps

    print("Algorithm 1 termination decisions:")
    straight = np.concatenate([tau * [0.06, 0.0, 0.0], np.zeros((steps, 3))], axis=1)
    describe("straight reach", make_trajectory(straight, np.ones(steps, dtype=bool)), True)

    hook = straight.copy()
    hook[5:, 0] = hook[4, 0] - (tau[5:, 0] - tau[4, 0]) * 0.12  # reverses direction
    describe("sharp turn at step 5", make_trajectory(hook, np.ones(steps, dtype=bool)), True)

    grasp_schedule = np.ones(steps, dtype=bool)
    grasp_schedule[3:] = False  # gripper closes at step 4
    describe("gripper closes at step 4", make_trajectory(straight, grasp_schedule), True)

    print("\nlatency consequences (pipeline model):")
    baseline = simulate_baseline(90)
    mixes = {
        "corki-9 (fixed)": [9] * 10,
        "corki-5 (fixed)": [5] * 18,
        "corki-adap (mixed lengths)": [9, 9, 4, 9, 3, 9, 9, 5, 9, 9, 6, 9],
    }
    for name, executed in mixes.items():
        trace = simulate_corki(executed)
        print(f"  {name:28s} {trace.mean_latency_ms:6.1f} ms/frame, "
              f"speedup {trace.speedup_vs(baseline):4.1f}x")
    print("\nadaptive length keeps near-Corki-9 speed while re-planning early at"
          "\nhigh-curvature or gripper-change waypoints (paper Sec. 3.3).")


if __name__ == "__main__":
    main()
