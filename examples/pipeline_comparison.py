"""System-pipeline comparison across servers and data representations.

Pure latency/energy modelling (no training needed): reproduces the shape of
the paper's Fig. 13 and Tbl. 3/4 from the calibrated stage constants.

Run:  python examples/pipeline_comparison.py
"""

import numpy as np

from repro import constants
from repro.pipeline import SystemStages, simulate_baseline, simulate_corki


def main() -> None:
    rng = np.random.default_rng(0)
    baseline = simulate_baseline(300, rng=rng)
    print(f"baseline (RoboFlamingo): {baseline.mean_latency_ms:.1f} ms/frame, "
          f"{baseline.mean_energy_j:.1f} J/frame")
    breakdown = baseline.latency_breakdown()
    print("  latency shares:", {k: f"{v * 100:.1f}%" for k, v in breakdown.items()})

    print("\nCorki variations (fixed execution lengths):")
    for steps in (1, 3, 5, 7, 9):
        trace = simulate_corki([steps] * (300 // steps), rng=rng)
        print(f"  corki-{steps}: {trace.mean_latency_ms:6.1f} ms "
              f"({trace.frequency_hz:4.1f} Hz)  "
              f"speedup {trace.speedup_vs(baseline):5.2f}x  "
              f"energy reduction {trace.energy_reduction_vs(baseline):5.2f}x")
    sw = simulate_corki([5] * 60, stages=SystemStages.corki(control="cpu"), rng=rng)
    print(f"  corki-sw (CPU control): {sw.mean_latency_ms:.1f} ms ({sw.frequency_hz:.1f} Hz)")

    print("\nTbl. 3 -- server sweep (Corki-5 vs the same server's baseline):")
    for server, scale in constants.GPU_INFERENCE_SCALE.items():
        base = simulate_baseline(100, stages=SystemStages.baseline(scale), rng=rng)
        corki = simulate_corki([5] * 20, stages=SystemStages.corki(scale), rng=rng)
        print(f"  {server:12s} inference x{scale:4.1f}: speedup {corki.speedup_vs(base):4.1f}x")

    print("\nTbl. 4 -- data representation sweep:")
    for rep, scale in constants.DATA_REPRESENTATION_SCALE.items():
        base = simulate_baseline(100, stages=SystemStages.baseline(scale), rng=rng)
        corki = simulate_corki([5] * 20, stages=SystemStages.corki(scale), rng=rng)
        print(f"  {rep:5s} inference x{scale:3.1f}: speedup {corki.speedup_vs(base):4.1f}x")


if __name__ == "__main__":
    main()
