"""Experiment scale profiles.

``quick`` keeps every experiment comfortably inside a laptop-minute budget;
``full`` approaches the paper's evaluation scale (1000 test sequences is
still out of reach of a pure-Python policy stack, but 200 jobs gives stable
statistics).  Select with the ``REPRO_PROFILE`` environment variable or an
explicit argument to each experiment's ``run()``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["Profile", "QUICK", "FULL", "get_profile"]


@dataclass(frozen=True)
class Profile:
    """Sample counts for the evaluation-scale experiments."""

    name: str
    jobs: int  # five-task jobs per system per layout
    demos_per_task: int
    epochs: int
    pipeline_frames: int  # frames for the Fig. 2 breakdown trace
    threshold_points: tuple[float, ...]  # Fig. 15 sweep
    sweep_trajectories: int
    eval_seed: int = 1234
    fleet_size: int = 32  # jobs rolled out in lock-step per evaluation fleet
    family_episodes: int = 2  # episodes per task in the per-family matrix
    workers: int = 1  # OS processes sharding each evaluation (1 = in-process)
    # Directory of the content-addressed result cache (repro.serving.cache);
    # None evaluates without one.  With a cache, re-running an experiment
    # against unchanged policy weights re-rolls nothing -- cached lanes are
    # byte-identical to fresh ones, so reports cannot drift.
    result_cache_dir: str | None = None


QUICK = Profile(
    name="quick",
    jobs=25,
    demos_per_task=24,
    epochs=12,
    pipeline_frames=300,
    threshold_points=(0.0, 0.2, 0.4, 0.6, 0.8),
    sweep_trajectories=2,
)

FULL = Profile(
    name="full",
    jobs=200,
    demos_per_task=24,
    epochs=12,
    pipeline_frames=300,
    threshold_points=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    sweep_trajectories=4,
    family_episodes=6,
)


def get_profile(name: str | None = None) -> Profile:
    """Resolve a profile by explicit name or the ``REPRO_PROFILE`` variable."""
    chosen = (name or os.environ.get("REPRO_PROFILE", "quick")).lower()
    if chosen == "quick":
        return QUICK
    if chosen == "full":
        return FULL
    raise ValueError(f"unknown profile {chosen!r} (expected 'quick' or 'full')")
