"""Fig. 14: frame-by-frame latency/energy and the long-tail analysis.

One 100-frame sequence is simulated for RoboFlamingo, Corki-5 and
Corki-ADAP.  Corki's series shows the paper's crest/trough structure
(inference at trajectory boundaries, execution in between); sorting the
latencies exposes Corki's heavier tail relative to its mean, quantified by
the coefficient-of-variation comparison the paper reports (the baseline's
relative variation is 56.0% lower than Corki's).

Like Fig. 13, jitter streams are keyed ``(seed, system name)`` (the three
systems used to share one sequential generator) and the three sequences
evaluate as one :func:`repro.pipeline.simulate_lanes` batch.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series
from repro.experiments.context import shared_context
from repro.experiments.profiles import Profile
from repro.pipeline import (
    PipelineLane,
    simulate_baseline,
    simulate_corki,
    simulate_lanes,
    system_jitter_rng,
)

__all__ = ["run", "frame_lanes", "frame_traces"]

_SEQUENCE_FRAMES = 100
_JITTER_SEED = 14


# repro: allow[BATCH-REF] reason=builds lane *specifications*, not a batched kernel; simulate_lanes consumes them
def frame_lanes(adap_steps: list[int]) -> list[PipelineLane]:
    """The figure's lane specifications: baseline, Corki-5, Corki-ADAP."""
    steps: list[int] = []
    for value in adap_steps:
        steps.append(value)
        if sum(steps) >= _SEQUENCE_FRAMES:
            break
    if not steps:
        steps = [5] * (_SEQUENCE_FRAMES // 5)
    return [
        PipelineLane(
            "roboflamingo",
            frames=_SEQUENCE_FRAMES,
            rng=system_jitter_rng(_JITTER_SEED, "roboflamingo"),
        ),
        PipelineLane(
            "corki-5",
            executed_steps=tuple([5] * (_SEQUENCE_FRAMES // 5)),
            rng=system_jitter_rng(_JITTER_SEED, "corki-5"),
        ),
        PipelineLane(
            "corki-adap",
            executed_steps=tuple(steps),
            rng=system_jitter_rng(_JITTER_SEED, "corki-adap"),
        ),
    ]


def frame_traces(profile: Profile | None = None, batched: bool = True):
    """Per-frame traces for one sequence: baseline, Corki-5, Corki-ADAP."""
    context = shared_context(profile)
    adap_eval = context.evaluations("seen")["corki-adap"]
    lanes = frame_lanes(list(adap_eval.executed_steps))
    if batched:
        return {view.name: view for view in simulate_lanes(lanes)}
    traces = {}
    for lane in lanes:
        if lane.frames is not None:
            traces[lane.name] = simulate_baseline(
                lane.frames, stages=lane.stages, rng=lane.rng, name=lane.name
            )
        else:
            traces[lane.name] = simulate_corki(
                list(lane.executed_steps),
                stages=lane.stages,
                rng=lane.rng,
                name=lane.name,
            )
    return traces


def run(profile: Profile | None = None) -> str:
    traces = frame_traces(profile)
    blocks = ["Fig. 14 -- frame-by-frame latency/energy and long tail"]
    # Stride 3 over the first 45 frames: coprime with the crest periods, so
    # the crest/trough structure is visible instead of aliasing away.
    stride, window = 3, 45
    for name, trace in traces.items():
        latencies = trace.latencies_ms()
        frames = np.arange(0, min(window, len(latencies)), stride)
        blocks.append(format_series(f"{name} latency", frames, latencies[frames], unit="ms"))
    tail_stride = 10
    for name, trace in traces.items():
        tail = trace.sorted_latencies_ms()
        frames = np.arange(0, len(tail), tail_stride)
        blocks.append(format_series(f"{name} sorted tail", frames, tail[frames], unit="ms"))

    base_cv = traces["roboflamingo"].latency_variation
    corki_cv = traces["corki-5"].latency_variation
    reduction = 100.0 * (1.0 - base_cv / corki_cv)
    blocks.append(
        f"relative latency variation: baseline {base_cv:.3f} vs corki-5 {corki_cv:.3f}; "
        f"baseline is {reduction:.1f}% lower (paper: 56.0% lower)"
    )
    mean_energy = {name: round(trace.mean_energy_j, 2) for name, trace in traces.items()}
    blocks.append(f"mean frame energy (J): {mean_energy}")
    return "\n".join(blocks)


if __name__ == "__main__":
    print(run())
