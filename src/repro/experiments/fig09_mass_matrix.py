"""Fig. 9: mass-matrix element change under single-joint rotations."""

from __future__ import annotations

import numpy as np

from repro.accelerator.approx import mass_matrix_joint_sensitivity
from repro.analysis.reporting import format_table
from repro.experiments.profiles import Profile
from repro.robot.dynamics import mass_matrix
from repro.robot.model import panda

__all__ = ["run"]

_ANGLES_DEG = (6, 17, 29)


def run(profile: Profile | None = None) -> str:
    model = panda()
    angles = tuple(np.deg2rad(a) for a in _ANGLES_DEG)
    sensitivity = mass_matrix_joint_sensitivity(model, angles=angles)
    reference = mass_matrix(model, model.q_home)
    reference_scale = float(np.abs(reference).max())

    rows = []
    for joint in range(model.dof):
        row = [f"joint {joint + 1}"]
        for angle in angles:
            absolute = sensitivity[float(angle)][joint]
            row.append(f"{absolute:.3f} ({100 * absolute / reference_scale:.1f}%)")
        rows.append(row)
    headers = ["joint"] + [f"{deg} deg" for deg in _ANGLES_DEG]
    table = format_table(headers, rows, title="Fig. 9 -- max |dM| per joint rotation (abs, rel)")
    middle = max(sensitivity[float(angles[-1])][1:4])
    ends = max(sensitivity[float(angles[-1])][0], sensitivity[float(angles[-1])][6])
    shape = (
        f"\nshape check: middle joints (2-4) max {middle:.3f} vs end joints (1,7) "
        f"max {ends:.3f} -- paper reports ~0.8 vs ~0 at 29 deg"
    )
    return table + shape


if __name__ == "__main__":
    print(run())
