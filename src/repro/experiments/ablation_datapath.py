"""Sec. 4.2 ablation: data reuse and pipelining, plus control acceleration.

Reproduces the paper's architecture claims: data reuse cuts 54.0% of the
naive datapath latency, pipelining brings the total reduction to 86.0%, and
the accelerator beats the robot-CPU control path by 29.0x (we report both
the paper-constant ratio used by the pipeline model and the ratio of our
own measured numpy TS-CTC against the cycle model).
"""

from __future__ import annotations

import time

import numpy as np

from repro.accelerator.accelerator import CPU_CONTROL_LATENCY_MS, FPGA_CONTROL_LATENCY_MS
from repro.accelerator.scheduler import ablation
from repro.analysis.reporting import paper_vs_measured
from repro.experiments.profiles import Profile
from repro.robot.dynamics import operational_space_quantities
from repro.robot.model import panda

__all__ = ["run"]


def _measure_numpy_control_us(iterations: int = 30) -> float:
    model = panda()
    # repro: allow[RNG-KEYED] reason=fixed microbenchmark workload; only the timing is reported
    rng = np.random.default_rng(0)
    q = model.q_home
    qd = rng.normal(size=model.dof) * 0.1
    # repro: allow[NO-WALLCLOCK] reason=microbenchmark measures host wall-clock by design
    start = time.perf_counter()
    for _ in range(iterations):
        operational_space_quantities(model, q, qd)
    # repro: allow[NO-WALLCLOCK] reason=microbenchmark measures host wall-clock by design
    return (time.perf_counter() - start) / iterations * 1e6


def run(profile: Profile | None = None) -> str:
    reports = ablation(links=7)
    base = reports["baseline"]
    reuse = reports["data-reuse"]
    pipe = reports["reuse+pipeline"]
    numpy_us = _measure_numpy_control_us()
    rows = [
        ("reuse latency reduction", "54.0%", f"{reuse.reduction_vs(base) * 100:.1f}%"),
        ("reuse+pipeline reduction", "86.0%", f"{pipe.reduction_vs(base) * 100:.1f}%"),
        ("accelerated tick latency", "-", f"{pipe.microseconds:.2f} us ({pipe.cycles} cyc)"),
        (
            "control acceleration (paper constants)",
            "29.0x",
            f"{CPU_CONTROL_LATENCY_MS / FPGA_CONTROL_LATENCY_MS:.1f}x",
        ),
        (
            "control acceleration (host numpy vs cycle model)",
            "-",
            f"{numpy_us / pipe.microseconds:.0f}x",
        ),
    ]
    return paper_vs_measured(rows, "Sec. 4.2 -- datapath ablation and control acceleration")


if __name__ == "__main__":
    print(run())
