"""Per-family success matrix over the 34-instruction task suite.

A Tbl. 2-style view the paper aggregates away: success rate by task family,
for the scripted-expert oracle (which must sit at 1.0 -- the task-suite
health gate) and each evaluated execution model.  Policy rows roll through
:class:`repro.core.fleet.FleetRunner` with one family-tagged lane per
episode, so the matrix inherits the fleet engine's determinism and
fleet-size invariance.
"""

from __future__ import annotations

from repro.analysis.evaluation import (
    evaluate_system_families,
    expert_oracle_families,
)
from repro.analysis.reporting import format_table
from repro.experiments.context import shared_context
from repro.experiments.profiles import Profile
from repro.sim.tasks import TASK_FAMILIES, TASKS, tasks_by_family
from repro.sim.world import SEEN_LAYOUT, UNSEEN_LAYOUT

__all__ = ["run", "family_table"]

_SYSTEMS = ("roboflamingo", "corki-5", "corki-adap")


def family_table(scenario: str, profile: Profile | None = None) -> str:
    context = shared_context(profile)
    resolved = context.profile
    layout = SEEN_LAYOUT if scenario == "seen" else UNSEEN_LAYOUT
    oracle = expert_oracle_families(
        layout,
        episodes_per_task=resolved.family_episodes,
        workers=resolved.workers,
    )
    systems = {}
    estimates = {}
    for name in _SYSTEMS:
        systems[name], estimates[name] = evaluate_system_families(
            context.policies(),
            name,
            layout,
            episodes_per_task=resolved.family_episodes,
            seed=resolved.eval_seed,
            fleet_size=resolved.fleet_size,
            workers=resolved.workers,
            return_estimates=True,
        )
    rows = []
    for family in TASK_FAMILIES:
        count = len(tasks_by_family(family))
        rows.append(
            [family, count, f"{oracle[family].success_rate * 100:.0f}%"]
            + [f"{systems[name][family].success_rate * 100:.1f}%" for name in _SYSTEMS]
        )
    headers = ["family", "tasks", "expert oracle", *_SYSTEMS]
    episodes = resolved.family_episodes
    table = format_table(
        headers,
        rows,
        title=(
            f"Per-family success on {scenario} tasks "
            f"({len(TASKS)} instructions, {episodes} episodes/task)"
        ),
    )
    footer = ["estimated pipeline cost per frame (lane-batched latency/energy model):"]
    for name in _SYSTEMS:
        lanes = estimates[name]
        if not lanes:
            continue
        latency = sum(e.mean_latency_ms for e in lanes) / len(lanes)
        energy = sum(e.mean_energy_j for e in lanes) / len(lanes)
        footer.append(
            f"  {name}: {latency:.1f} ms ({1000.0 / latency:.1f} Hz), {energy:.2f} J"
        )
    return table + "\n" + "\n".join(footer)


def run(profile: Profile | None = None) -> str:
    return family_table("seen", profile)


if __name__ == "__main__":
    print(run())
