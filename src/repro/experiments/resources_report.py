"""Sec. 6.1: FPGA resource consumption of the Corki accelerator."""

from __future__ import annotations

from repro.accelerator.resources import resource_report
from repro.analysis.reporting import paper_vs_measured
from repro.experiments.profiles import Profile

__all__ = ["run"]

_PAPER = {"DSP": "13.6%", "FF": "7.8%", "LUT": "16.9%", "BRAM": "6.6%"}


def run(profile: Profile | None = None) -> str:
    report = resource_report()
    rows = [
        (f"{name} ({used} used)", _PAPER[name], f"{pct:.1f}%")
        for name, used, pct in report.rows()
    ]
    text = paper_vs_measured(rows, f"Sec. 6.1 -- resource consumption on {report.device.name}")
    return text + "\nno off-chip DRAM traffic during a control cycle (buffer model asserts this)"


if __name__ == "__main__":
    print(run())
