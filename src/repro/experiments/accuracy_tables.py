"""Tbl. 1 and Tbl. 2: success rates and average job length per variation.

Both tables share one implementation; ``scenario`` picks the layout.  All
systems are rolled out on identical job sequences, so columns are paired
comparisons as in the paper.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.context import shared_context
from repro.experiments.profiles import Profile

__all__ = ["run_seen", "run_unseen", "accuracy_table"]

_SYSTEM_ORDER = (
    "roboflamingo",
    "corki-1",
    "corki-3",
    "corki-5",
    "corki-7",
    "corki-9",
    "corki-adap",
    "corki-sw",
)

_PAPER_AVG_LEN = {
    "seen": {
        "roboflamingo": 2.916, "corki-1": 3.078, "corki-3": 3.234, "corki-5": 3.421,
        "corki-7": 3.092, "corki-9": 2.983, "corki-adap": 3.2, "corki-sw": 3.421,
    },
    "unseen": {
        "roboflamingo": 2.48, "corki-1": 2.769, "corki-3": 2.642, "corki-5": 2.824,
        "corki-7": 2.723, "corki-9": 2.413, "corki-adap": 2.827, "corki-sw": 2.824,
    },
}


def accuracy_table(scenario: str, profile: Profile | None = None) -> str:
    import numpy as np

    from repro.analysis.statistics import bootstrap_mean_ci

    context = shared_context(profile)
    evaluations = context.evaluations(scenario)
    rows = []
    for name in _SYSTEM_ORDER:
        evaluation = evaluations[name]
        stats = evaluation.job_stats
        if evaluation.completed_counts:
            ci = bootstrap_mean_ci(np.array(evaluation.completed_counts, dtype=float))
            interval = f"[{ci.lower:.2f}, {ci.upper:.2f}]"
        else:
            interval = "-"
        rows.append(
            [name]
            + [f"{value * 100:.1f}%" for value in stats.success_at]
            + [f"{stats.average_length:.3f}", interval, f"{_PAPER_AVG_LEN[scenario][name]:.3f}"]
        )
    headers = ["system", "1", "2", "3", "4", "5", "avg len", "95% CI", "paper avg"]
    table_number = "Tbl. 1" if scenario == "seen" else "Tbl. 2"
    jobs = evaluations[_SYSTEM_ORDER[0]].job_stats.jobs
    return format_table(
        headers, rows, title=f"{table_number} -- accuracy on {scenario} tasks ({jobs} jobs/system)"
    )


def run_seen(profile: Profile | None = None) -> str:
    return accuracy_table("seen", profile)


def run_unseen(profile: Profile | None = None) -> str:
    return accuracy_table("unseen", profile)


if __name__ == "__main__":
    print(run_seen())
    print()
    print(run_unseen())
