"""Fig. 12: X/Y/Z trajectory of one test sequence vs the ground truth."""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series
from repro.core.config import VARIATIONS
from repro.core.runner import run_baseline_episode, run_corki_episode
from repro.experiments.context import shared_context
from repro.experiments.profiles import Profile
from repro.sim.env import TRACKING_100HZ, TRACKING_30HZ, ManipulationEnv
from repro.sim.tasks import TASKS
from repro.sim.world import SEEN_LAYOUT

__all__ = ["run", "sequence_paths"]


def sequence_paths(profile: Profile | None = None, task_index: int = 4, seed: int = 42):
    """Roll one fixed sequence under the baseline and Corki-5.

    Returns ``(reference, baseline_trace, corki_trace)``; the scene is
    identical across systems because the environment RNG is reseeded.
    """
    context = shared_context(profile)
    policies = context.policies()
    task = TASKS[task_index]

    # repro: allow[RNG-KEYED] reason=scene deliberately reseeded identically for both systems (paired comparison)
    env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(seed))
    baseline_trace = run_baseline_episode(env, policies.baseline, task, actuation=TRACKING_30HZ)
    # repro: allow[RNG-KEYED] reason=scene deliberately reseeded identically for both systems (paired comparison)
    env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(seed))
    corki_trace = run_corki_episode(
        # repro: allow[RNG-KEYED] reason=one showcase episode's feedback stream; nothing lane-scoped
        env, policies.corki, task, VARIATIONS["corki-5"], np.random.default_rng(7),
        actuation=TRACKING_100HZ,
    )
    return baseline_trace.reference_path, baseline_trace, corki_trace


def _showcase_sequence(profile: Profile | None):
    """Pick a sequence where Corki-5 succeeds, preferring baseline failures.

    The paper's Fig. 12 shows a representative success/failure contrast
    ("off the target"); scanning a handful of fixed seeds finds ours.
    """
    fallback = None
    for task_index, seed in ((4, 42), (0, 42), (7, 11), (2, 7), (15, 3)):
        reference, baseline_trace, corki_trace = sequence_paths(profile, task_index, seed)
        if corki_trace.success and not baseline_trace.success:
            return reference, baseline_trace, corki_trace
        if fallback is None:
            fallback = (reference, baseline_trace, corki_trace)
    return fallback


def run(profile: Profile | None = None) -> str:
    reference, baseline_trace, corki_trace = _showcase_sequence(profile)
    baseline_path, corki_path = baseline_trace.ee_path, corki_trace.ee_path
    frames = min(len(reference), len(baseline_path), len(corki_path))
    stride = max(1, frames // 12)
    steps = np.arange(0, frames, stride)
    blocks = [f"Fig. 12 -- one sequence, {frames} frames (cm, sampled every {stride} frames)"]
    for dim, label in enumerate("xyz"):
        blocks.append(format_series(f"ground truth {label}", steps, reference[steps, dim] * 100))
        blocks.append(format_series(f"corki-5 {label}", steps, corki_path[steps, dim] * 100))
        blocks.append(format_series(f"roboflamingo {label}", steps, baseline_path[steps, dim] * 100))
    rmse_b = float(np.sqrt(np.mean((baseline_path[:frames, :3] - reference[:frames, :3]) ** 2)))
    rmse_c = float(np.sqrt(np.mean((corki_path[:frames, :3] - reference[:frames, :3]) ** 2)))
    blocks.append(
        f"sequence RMSE: corki-5 {rmse_c * 100:.2f} cm (success={corki_trace.success}) vs "
        f"roboflamingo {rmse_b * 100:.2f} cm (success={baseline_trace.success}) "
        "(paper: Corki follows the ground truth; the baseline drifts off target)"
    )
    return "\n".join(blocks)


if __name__ == "__main__":
    print(run())
