"""Fig. 2: per-frame latency and energy breakdown of RoboFlamingo."""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import paper_vs_measured
from repro.experiments.profiles import Profile, get_profile
from repro.pipeline import simulate_baseline

__all__ = ["run"]


def run(profile: Profile | None = None) -> str:
    profile = profile or get_profile()
    # repro: allow[RNG-KEYED] reason=single jitter stream for one standalone trace; nothing lane-scoped
    trace = simulate_baseline(profile.pipeline_frames, rng=np.random.default_rng(2))
    latency = trace.latency_breakdown()
    energy = trace.energy_breakdown()
    rows = [
        ("frame latency (ms)", "249.4", f"{trace.mean_latency_ms:.1f}"),
        ("latency: inference", "72.7%", f"{latency['inference'] * 100:.1f}%"),
        ("latency: control", "9.9%", f"{latency['control'] * 100:.1f}%"),
        ("latency: communication", "17.4%", f"{latency['communication'] * 100:.1f}%"),
        ("energy: inference", "95.8%", f"{energy['inference'] * 100:.1f}%"),
        ("peak frame energy (J)", "~25", f"{trace.energies_j().max():.1f}"),
    ]
    return paper_vs_measured(rows, f"Fig. 2 -- baseline breakdown over {profile.pipeline_frames} frames")


if __name__ == "__main__":
    print(run())
