"""Algorithm-level ablations of the Corki design choices (paper Sec. 3).

Three design decisions the paper argues for are measured head-to-head here:

1. **Loss design** (Sec. 3.2): supervising sampled trajectory waypoints
   (Eq. 5) versus supervising raw cubic coefficients.  The paper rejects
   coefficient supervision because coefficient ground truth must be fitted
   first (accumulating error) and the coefficients are badly scaled for
   learning.
2. **Masked training** (Fig. 4): training with deployment-realistic token
   masks versus always-full windows.
3. **Closed-loop features** (Sec. 3.4): ViT feedback tokens versus pure
   mask embeddings for mid-trajectory frames.

Each ablation trains a small Corki head both ways on the same
demonstrations and compares held-out waypoint prediction error.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.config import PREDICTION_HORIZON
from repro.core.policy import WINDOW_LENGTH, CorkiPolicy
from repro.core.training import TrainingConfig, deployment_slot_pattern, train_corki
from repro.core.trajectory import fit_cubic
from repro.experiments.profiles import Profile, get_profile
from repro.nn.functional import mse_loss
from repro.nn.optim import Adam, clip_gradients
from repro.nn.tensor import Tensor
from repro.sim.camera import OBSERVATION_DIM
from repro.sim.dataset import ActionNormalizer, collect_demonstrations, corki_targets
from repro.sim.tasks import TASKS
from repro.sim.world import SEEN_LAYOUT

__all__ = ["run", "heldout_waypoint_error", "train_coefficient_supervised"]

_SMALL = dict(token_dim=24, hidden_dim=48)


def _windows_and_targets(demos, normalizer, rng, limit=400):
    """Sample held-out (window, mask, target) triples for error measurement."""
    samples = []
    for _ in range(limit):
        demo = demos[int(rng.integers(len(demos)))]
        t = int(rng.integers(len(demo) - 1))
        indices = np.clip(np.arange(t - WINDOW_LENGTH + 1, t + 1), 0, len(demo) - 1)
        window = demo.observations[indices]
        offsets, _ = corki_targets(demo, t, PREDICTION_HORIZON)
        period = int(rng.integers(1, PREDICTION_HORIZON + 1))
        real, feedback = deployment_slot_pattern(WINDOW_LENGTH, period, rng)
        samples.append((window, demo.instruction_id, real, feedback, offsets / normalizer.scale))
    return samples


def heldout_waypoint_error(policy: CorkiPolicy, samples) -> float:
    """Mean squared waypoint error of a trained policy on held-out samples."""
    errors = []
    for window, instruction, real, feedback, target in samples:
        coefficients, _ = policy(
            window[None], np.array([instruction]), real[None], feedback[None]
        )
        # waypoint_offsets covers j = 0..H; row 0 is the start offset, which
        # the held-out targets (future waypoints only) do not include.
        waypoints = policy.waypoint_offsets(coefficients).numpy()[0].T[1:]
        errors.append(float(np.mean((waypoints - target) ** 2)))
    return float(np.mean(errors))


def train_coefficient_supervised(
    policy: CorkiPolicy, demos, config: TrainingConfig
) -> list[float]:
    """The rejected alternative: supervise cubic coefficients directly.

    Ground-truth coefficients are least-squares fitted from the (noisy)
    waypoints first -- exactly the error-accumulating extraction step the
    paper criticises -- then regressed with MSE.
    """
    # repro: allow[RNG-KEYED] reason=mirrors train_corki's config.seed stream so both supervision arms train identically
    rng = np.random.default_rng(config.seed)
    normalizer = ActionNormalizer.fit(demos)
    policy.set_normalizer(normalizer)
    pairs = [
        (demo_index, t)
        for demo_index, demo in enumerate(demos)
        for t in range(len(demo) - 1)
    ]
    optimizer = Adam(policy.parameters(), lr=config.learning_rate)
    history = []
    for _ in range(config.epochs):
        order = rng.permutation(len(pairs))
        losses = []
        for start in range(0, len(order), config.batch_size):
            batch_pairs = [pairs[i] for i in order[start : start + config.batch_size]]
            batch = len(batch_pairs)
            windows = np.zeros((batch, WINDOW_LENGTH, policy.observation_dim))
            instructions = np.zeros(batch, dtype=int)
            coefficient_targets = np.zeros((batch, 6, 4))
            real = np.zeros((batch, WINDOW_LENGTH), dtype=bool)
            feedback = np.zeros((batch, WINDOW_LENGTH), dtype=bool)
            for row, (demo_index, t) in enumerate(batch_pairs):
                demo = demos[demo_index]
                indices = np.clip(
                    np.arange(t - WINDOW_LENGTH + 1, t + 1), 0, len(demo) - 1
                )
                windows[row] = demo.observations[indices]
                instructions[row] = demo.instruction_id
                offsets, _ = corki_targets(demo, t, PREDICTION_HORIZON)
                coefficient_targets[row] = fit_cubic(offsets / normalizer.scale)
                period = int(rng.integers(1, PREDICTION_HORIZON + 1))
                real[row], feedback[row] = deployment_slot_pattern(WINDOW_LENGTH, period, rng)
            coefficients, _ = policy(windows, instructions, real, feedback)
            loss = mse_loss(coefficients, Tensor(coefficient_targets))
            optimizer.zero_grad()
            loss.backward()
            clip_gradients(policy.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
    return history


def run(profile: Profile | None = None) -> str:
    profile = profile or get_profile()
    # Streams are keyed by domain: demo collection must not replay the
    # training stream (TrainingConfig(seed=11) builds default_rng(11)
    # internally, so a bare default_rng(11) here would collide with it).
    rng = np.random.default_rng([11, 1])
    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=6)
    split = int(0.8 * len(demos))
    train_set, heldout = demos[:split], demos[split:]
    config = TrainingConfig(epochs=4, seed=11)
    normalizer = ActionNormalizer.fit(train_set)
    samples = _windows_and_targets(heldout, normalizer, np.random.default_rng([11, 2]))

    def fresh_policy():
        return CorkiPolicy(OBSERVATION_DIM, len(TASKS), np.random.default_rng([11, 3]), **_SMALL)

    # 1. waypoint supervision (the paper's choice) vs coefficient supervision
    waypoint_policy = fresh_policy()
    train_corki(waypoint_policy, train_set, config)
    waypoint_error = heldout_waypoint_error(waypoint_policy, samples)

    coefficient_policy = fresh_policy()
    train_coefficient_supervised(coefficient_policy, train_set, config)
    coefficient_error = heldout_waypoint_error(coefficient_policy, samples)

    rows = [
        ["waypoint supervision (Eq. 5)", f"{waypoint_error:.4f}", "paper's choice"],
        ["coefficient supervision", f"{coefficient_error:.4f}", "rejected in Sec. 3.2"],
    ]
    table = format_table(
        ("training objective", "held-out waypoint MSE", "note"),
        rows,
        title="Algorithm ablation -- loss design (lower is better)",
    )
    verdict = (
        "\nwaypoint supervision wins"
        if waypoint_error < coefficient_error
        else "\ncoefficient supervision wins (deviation from the paper)"
    )
    return table + verdict


if __name__ == "__main__":
    print(run())
