"""Experiment drivers: one module per paper table/figure.

Each module exposes ``run(profile=None) -> str`` returning the report text;
the CLI (``repro-experiments``) dispatches by experiment id.
"""

from repro.experiments.profiles import FULL, QUICK, Profile, get_profile

__all__ = ["FULL", "Profile", "QUICK", "get_profile", "EXPERIMENTS"]


def _registry():
    from repro.experiments import (
        ablation_algorithm,
        ablation_datapath,
        accuracy_tables,
        discussion_power,
        fig02_breakdown,
        fig09_mass_matrix,
        fig11_traj_error,
        fig12_traj_example,
        fig13_latency_energy,
        fig14_frame_analysis,
        fig15_threshold,
        family_report,
        resources_report,
        tbl3_tbl4_scaling,
    )

    return {
        "families": family_report.run,
        "fig2": fig02_breakdown.run,
        "fig9": fig09_mass_matrix.run,
        "fig11": fig11_traj_error.run,
        "fig12": fig12_traj_example.run,
        "fig13": fig13_latency_energy.run,
        "fig14": fig14_frame_analysis.run,
        "fig15": fig15_threshold.run,
        "tbl1": accuracy_tables.run_seen,
        "tbl2": accuracy_tables.run_unseen,
        "tbl3": tbl3_tbl4_scaling.run_gpus,
        "tbl4": tbl3_tbl4_scaling.run_datarep,
        "resources": resources_report.run,
        "ablation": ablation_datapath.run,
        "ablation-algo": ablation_algorithm.run,
        "power": discussion_power.run,
    }


EXPERIMENTS = _registry()
"""Mapping of experiment id -> ``run`` callable."""
