"""Fig. 13: runtime frame latency and energy per system.

Fixed-step variations execute exactly T steps per inference; Corki-ADAP's
execution lengths come from its measured accuracy rollouts, which is how the
paper couples the two evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.context import shared_context
from repro.experiments.profiles import Profile
from repro.pipeline import SystemStages, simulate_baseline, simulate_corki

__all__ = ["run", "system_traces"]

_PAPER_SPEEDUP = {
    "corki-1": "1.2x", "corki-3": "~3x", "corki-5": "(26.9 Hz)", "corki-7": "~7x",
    "corki-9": "9.1x", "corki-adap": "5.9x", "corki-sw": "(18.7 Hz)",
}


def system_traces(profile: Profile | None = None):
    """Pipeline traces for the baseline and every Corki variation."""
    context = shared_context(profile)
    frames = context.profile.pipeline_frames
    rng = np.random.default_rng(3)
    traces = {"roboflamingo": simulate_baseline(frames, rng=rng)}

    for steps_taken in (1, 3, 5, 7, 9):
        trajectories = [steps_taken] * max(1, frames // steps_taken)
        traces[f"corki-{steps_taken}"] = simulate_corki(
            trajectories, rng=rng, name=f"corki-{steps_taken}"
        )

    adap_steps = context.evaluations("seen")["corki-adap"].executed_steps
    if not adap_steps:
        adap_steps = [5]
    traces["corki-adap"] = simulate_corki(adap_steps, rng=rng, name="corki-adap")
    traces["corki-sw"] = simulate_corki(
        [5] * max(1, frames // 5), stages=SystemStages.corki(control="cpu"),
        rng=rng, name="corki-sw",
    )
    return traces


def run(profile: Profile | None = None) -> str:
    traces = system_traces(profile)
    baseline = traces["roboflamingo"]
    rows = []
    for name, trace in traces.items():
        rows.append(
            [
                name,
                f"{trace.mean_latency_ms:.1f}",
                f"{trace.frequency_hz:.1f}",
                f"{trace.speedup_vs(baseline):.2f}x",
                f"{trace.mean_energy_j:.2f}",
                f"{trace.energy_reduction_vs(baseline):.2f}x",
                _PAPER_SPEEDUP.get(name, "-"),
            ]
        )
    return format_table(
        ("system", "latency ms", "Hz", "speedup", "energy J", "energy red.", "paper"),
        rows,
        title="Fig. 13 -- runtime latency and energy per frame",
    )


if __name__ == "__main__":
    print(run())
