"""Fig. 13: runtime frame latency and energy per system.

Fixed-step variations execute exactly T steps per inference; Corki-ADAP's
execution lengths come from its measured accuracy rollouts, which is how the
paper couples the two evaluations.

Every system's jitter stream is keyed ``(seed, system name)`` through
:func:`repro.pipeline.system_jitter_rng` -- the figure's systems used to
share one sequential ``default_rng(3)`` stream, so adding or removing a
system silently shifted every later system's numbers.  With keyed streams
the figure evaluates all systems as one :func:`repro.pipeline.simulate_lanes`
batch, byte-identical to simulating each system alone through the scalar
reference (the differential harness asserts both properties).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.context import shared_context
from repro.experiments.profiles import Profile
from repro.pipeline import (
    PipelineLane,
    SystemStages,
    simulate_baseline,
    simulate_corki,
    simulate_lanes,
    system_jitter_rng,
)

__all__ = ["run", "system_lanes", "system_traces"]

_JITTER_SEED = 3

_PAPER_SPEEDUP = {
    "corki-1": "1.2x", "corki-3": "~3x", "corki-5": "(26.9 Hz)", "corki-7": "~7x",
    "corki-9": "9.1x", "corki-adap": "5.9x", "corki-sw": "(18.7 Hz)",
}


# repro: allow[BATCH-REF] reason=builds lane *specifications*, not a batched kernel; simulate_lanes consumes them
def system_lanes(frames: int, adap_steps: list[int]) -> list[PipelineLane]:
    """The figure's lane specifications, pure in ``(frames, adap_steps)``.

    One lane per system, each with its own ``(seed, name)``-keyed jitter
    generator, so any subset of the systems simulates to the same bytes.
    """
    lanes = [
        PipelineLane(
            "roboflamingo",
            frames=frames,
            rng=system_jitter_rng(_JITTER_SEED, "roboflamingo"),
        )
    ]
    for steps_taken in (1, 3, 5, 7, 9):
        name = f"corki-{steps_taken}"
        lanes.append(
            PipelineLane(
                name,
                executed_steps=tuple([steps_taken] * max(1, frames // steps_taken)),
                rng=system_jitter_rng(_JITTER_SEED, name),
            )
        )
    lanes.append(
        PipelineLane(
            "corki-adap",
            executed_steps=tuple(adap_steps),
            rng=system_jitter_rng(_JITTER_SEED, "corki-adap"),
        )
    )
    lanes.append(
        PipelineLane(
            "corki-sw",
            executed_steps=tuple([5] * max(1, frames // 5)),
            stages=SystemStages.corki(control="cpu"),
            rng=system_jitter_rng(_JITTER_SEED, "corki-sw"),
        )
    )
    return lanes


def system_traces(profile: Profile | None = None, batched: bool = True):
    """Pipeline traces for the baseline and every Corki variation.

    ``batched`` evaluates all systems in one :func:`simulate_lanes` call
    (returning per-system :class:`~repro.pipeline.TraceView` lanes);
    ``batched=False`` runs the scalar reference executors.  Both paths key
    jitter per system, so the bytes are identical either way.
    """
    context = shared_context(profile)
    frames = context.profile.pipeline_frames
    adap_steps = context.evaluations("seen")["corki-adap"].executed_steps
    if not adap_steps:
        adap_steps = [5]
    lanes = system_lanes(frames, adap_steps)
    if batched:
        return {view.name: view for view in simulate_lanes(lanes)}
    traces = {}
    for lane in lanes:
        if lane.frames is not None:
            traces[lane.name] = simulate_baseline(
                lane.frames, stages=lane.stages, rng=lane.rng, name=lane.name
            )
        else:
            traces[lane.name] = simulate_corki(
                list(lane.executed_steps),
                stages=lane.stages,
                rng=lane.rng,
                name=lane.name,
            )
    return traces


def run(profile: Profile | None = None) -> str:
    traces = system_traces(profile)
    baseline = traces["roboflamingo"]
    rows = []
    for name, trace in traces.items():
        rows.append(
            [
                name,
                f"{trace.mean_latency_ms:.1f}",
                f"{trace.frequency_hz:.1f}",
                f"{trace.speedup_vs(baseline):.2f}x",
                f"{trace.mean_energy_j:.2f}",
                f"{trace.energy_reduction_vs(baseline):.2f}x",
                _PAPER_SPEEDUP.get(name, "-"),
            ]
        )
    return format_table(
        ("system", "latency ms", "Hz", "speedup", "energy J", "energy red.", "paper"),
        rows,
        title="Fig. 13 -- runtime latency and energy per frame",
    )


if __name__ == "__main__":
    print(run())
