"""Sec. 8 (Discussion): end-to-end system power including the motors.

Reproduces the paper's caveat that computing-only energy reductions (up to
9.2x) shrink once motor power is counted, because the robot's motors draw
power for the full wall-clock duration of the task regardless of where the
computation runs.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.analysis.reporting import paper_vs_measured
from repro.experiments.profiles import Profile
from repro.pipeline import simulate_baseline, simulate_corki
from repro.pipeline.power import RobotPowerModel, system_energy_per_frame

__all__ = ["run"]


def run(profile: Profile | None = None) -> str:
    # repro: allow[RNG-KEYED] reason=common-random-numbers pairing: both systems deliberately share one stream
    rng = np.random.default_rng(8)
    baseline_trace = simulate_baseline(100, rng=rng)
    corki_trace = simulate_corki([5] * 20, rng=rng)

    baseline_power = RobotPowerModel()
    corki_power = baseline_power.with_accelerator()

    # The paper's accounting excludes server power, and both systems drive
    # the robot through the same physical trajectory, so the motors draw
    # power for the same wall-clock duration (one 33.3 ms frame period).
    def robot_side_computing_j(frames) -> float:
        return float(np.mean([f.control_j + f.communication_j for f in frames]))

    baseline_computing = robot_side_computing_j(baseline_trace.frames)
    corki_computing = robot_side_computing_j(corki_trace.frames)
    baseline_total = system_energy_per_frame(
        baseline_computing, constants.FRAME_DT_MS, baseline_power
    )
    corki_total = system_energy_per_frame(
        corki_computing, constants.FRAME_DT_MS, corki_power
    )

    total_computing = corki_trace.energy_reduction_vs(baseline_trace)
    robot_computing = baseline_computing / corki_computing
    end_to_end = baseline_total / corki_total
    rows = [
        ("onboard computing power share", "40.6%", f"{baseline_power.compute_share * 100:.1f}%"),
        ("computing energy reduction incl. server (Corki-5)", "~5x", f"{total_computing:.2f}x"),
        ("robot-side computing energy reduction", "-", f"{robot_computing:.2f}x"),
        ("robot end-to-end reduction incl. motors", "lower", f"{end_to_end:.2f}x"),
    ]
    note = (
        "\nmotors draw the same power for the same task on both systems, so "
        "including them dilutes the computing-side savings -- the paper's "
        "Sec. 8 caveat, visible as the drop from the robot-side computing "
        "reduction to the end-to-end reduction."
    )
    return paper_vs_measured(rows, "Sec. 8 -- end-to-end system power") + note


if __name__ == "__main__":
    print(run())
