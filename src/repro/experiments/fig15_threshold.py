"""Fig. 15: approximation threshold vs speedup and trajectory error.

Runs the full dynamics tier: TS-CTC with the approximating accelerator in
the loop, tracking CALVIN-speed cubic trajectories on the Panda rigid-body
model, sweeping the ACE threshold.
"""

from __future__ import annotations

from repro.analysis.calibration import threshold_sweep
from repro.analysis.reporting import format_table
from repro.experiments.profiles import Profile, get_profile

__all__ = ["run"]


def run(profile: Profile | None = None) -> str:
    profile = profile or get_profile()
    points = threshold_sweep(
        thresholds=list(profile.threshold_points),
        trajectories=profile.sweep_trajectories,
    )
    rows = [
        [
            f"{point.threshold * 100:.0f}%",
            f"{point.speedup:.2f}x",
            f"{point.trajectory_error_cm:.3f}",
            f"{point.skip_rate * 100:.1f}%",
        ]
        for point in points
    ]
    design = next((p for p in points if abs(p.threshold - 0.4) < 1e-9), None)
    table = format_table(
        ("threshold", "speedup", "traj error (cm)", "skip rate"),
        rows,
        title="Fig. 15 -- ACE threshold sweep (design point 40%)",
    )
    if design is not None:
        table += (
            f"\ndesign point: {design.skip_rate * 100:.1f}% of matrix updates avoided "
            "(paper: over 51%) with no loss in control accuracy"
        )
    return table


if __name__ == "__main__":
    print(run())
