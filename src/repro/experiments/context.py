"""Shared experiment context: train once, evaluate once, reuse everywhere.

Tables 1/2 and Figures 11-14 all consume the same trained policies and
closed-loop evaluations.  The context memoises them per (profile, layout) so
a full experiment sweep trains the models exactly once and rolls each system
out exactly once per layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.evaluation import (
    SystemEvaluation,
    TrainedPolicies,
    evaluate_all_systems,
    get_trained_policies,
)
from repro.experiments.profiles import Profile, get_profile
from repro.sim.world import SEEN_LAYOUT, UNSEEN_LAYOUT

__all__ = ["ExperimentContext", "shared_context"]


@dataclass
class ExperimentContext:
    """Lazily trained policies and per-layout evaluations for one profile."""

    profile: Profile = field(default_factory=get_profile)
    _policies: TrainedPolicies | None = None
    _evaluations: dict = field(default_factory=dict)
    _result_cache: object = None

    def policies(self) -> TrainedPolicies:
        if self._policies is None:
            self._policies = get_trained_policies(
                demos_per_task=self.profile.demos_per_task,
                epochs=self.profile.epochs,
            )
        return self._policies

    def result_cache(self):
        """The profile's content-addressed result cache, or ``None``."""
        if self._result_cache is None and self.profile.result_cache_dir:
            from repro.serving.cache import ResultCache

            self._result_cache = ResultCache(directory=self.profile.result_cache_dir)
        return self._result_cache

    def evaluations(self, scenario: str) -> dict[str, SystemEvaluation]:
        """All systems evaluated on ``scenario`` ("seen" or "unseen")."""
        if scenario not in self._evaluations:
            layout = SEEN_LAYOUT if scenario == "seen" else UNSEEN_LAYOUT
            self._evaluations[scenario] = evaluate_all_systems(
                self.policies(),
                layout,
                jobs=self.profile.jobs,
                seed=self.profile.eval_seed,
                fleet_size=self.profile.fleet_size,
                workers=self.profile.workers,
                cache=self.result_cache(),
            )
        return self._evaluations[scenario]


_SHARED: ExperimentContext | None = None


def shared_context(profile: Profile | None = None) -> ExperimentContext:
    """Process-wide context; experiments run from the CLI share one."""
    global _SHARED
    if _SHARED is None or (profile is not None and _SHARED.profile != profile):
        _SHARED = ExperimentContext(profile or get_profile())
    return _SHARED
