"""Fig. 11: mean trajectory error and maximum trajectory distance."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.context import shared_context
from repro.experiments.profiles import Profile

__all__ = ["run"]

_SYSTEM_ORDER = (
    "roboflamingo", "corki-1", "corki-3", "corki-5", "corki-7", "corki-9",
    "corki-adap", "corki-sw",
)


def run(profile: Profile | None = None) -> str:
    context = shared_context(profile)
    evaluations = context.evaluations("seen")
    rows = []
    baseline_rmse = None
    corki_rmses = []
    for name in _SYSTEM_ORDER:
        stats = evaluations[name].trajectory_stats()
        if name == "roboflamingo":
            baseline_rmse = stats.mean_rmse
        else:
            corki_rmses.append(stats.mean_rmse)
        max_x, max_y, max_z = stats.max_distance
        rows.append(
            [
                name,
                f"{stats.mean_rmse * 100:.2f}",
                f"{max_x * 100:.2f}",
                f"{max_y * 100:.2f}",
                f"{max_z * 100:.2f}",
            ]
        )
    table = format_table(
        ("system", "mean RMSE (cm)", "max |dx| (cm)", "max |dy| (cm)", "max |dz| (cm)"),
        rows,
        title="Fig. 11 -- trajectory error vs ground truth (seen scenario)",
    )
    mean_corki = sum(corki_rmses) / len(corki_rmses)
    reduction = 100.0 * (1.0 - mean_corki / baseline_rmse)
    return table + (
        f"\nmean Corki error reduction vs baseline: {reduction:.1f}% (paper: 25.0%)"
    )


if __name__ == "__main__":
    print(run())
