"""Tbl. 3 and Tbl. 4: speedup under different servers and data representations.

Both tables rescale the inference stage (the only stage that depends on the
server or the numeric format) and recompute the end-to-end speedup of
Corki-ADAP over the frame-by-frame baseline, as the paper does.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.analysis.reporting import format_table
from repro.experiments.context import shared_context
from repro.experiments.profiles import Profile
from repro.pipeline import SystemStages, simulate_baseline, simulate_corki

__all__ = ["run_gpus", "run_datarep", "scaled_speedup"]

_PAPER_GPU_SPEEDUP = {"v100": "5.9x", "h100": "6.4x", "jetson-orin": "5.3x", "xeon-8260": "5.4x"}
_PAPER_DATAREP_SPEEDUP = {"fp32": "5.9x", "fp16": "6.0x", "int8": "6.4x"}


def _adaptive_steps(profile: Profile | None) -> list[int]:
    context = shared_context(profile)
    steps = context.evaluations("seen")["corki-adap"].executed_steps
    return steps if steps else [5] * 60


def scaled_speedup(inference_scale: float, steps: list[int]) -> float:
    """End-to-end Corki-ADAP speedup with the inference stage scaled."""
    # repro: allow[RNG-KEYED] reason=common-random-numbers pairing: both systems deliberately share one stream
    rng = np.random.default_rng(33)
    baseline = simulate_baseline(
        len(steps), stages=SystemStages.baseline(inference_scale), rng=rng
    )
    corki = simulate_corki(steps, stages=SystemStages.corki(inference_scale), rng=rng)
    return corki.speedup_vs(baseline)


def run_gpus(profile: Profile | None = None) -> str:
    steps = _adaptive_steps(profile)
    rows = []
    for name, scale in constants.GPU_INFERENCE_SCALE.items():
        speedup = scaled_speedup(scale, steps)
        rows.append([name, f"{scale:.1f}x", f"{speedup:.1f}x", _PAPER_GPU_SPEEDUP[name]])
    return format_table(
        ("server", "norm. inference", "speedup", "paper"),
        rows,
        title="Tbl. 3 -- Corki-ADAP speedup under different GPU/CPU baselines",
    )


def run_datarep(profile: Profile | None = None) -> str:
    steps = _adaptive_steps(profile)
    rows = []
    for name, scale in constants.DATA_REPRESENTATION_SCALE.items():
        speedup = scaled_speedup(scale, steps)
        rows.append([name, f"{scale:.1f}x", f"{speedup:.1f}x", _PAPER_DATAREP_SPEEDUP[name]])
    return format_table(
        ("representation", "norm. inference", "speedup", "paper"),
        rows,
        title="Tbl. 4 -- Corki-ADAP speedup under different data representations",
    )


if __name__ == "__main__":
    print(run_gpus())
    print()
    print(run_datarep())
