"""Request serving for evaluation episodes: continuous batching + caching.

The batch experiment drivers answer "roll N jobs"; this package answers
"keep answering episode requests, fast" -- the request-serving shape the
ROADMAP's production north star implies.  Three pieces:

* :mod:`repro.serving.service` -- :class:`EvaluationService`, the
  programmatic API: queue :class:`EpisodeRequest` objects, drain them
  through a persistently warm fleet (continuous batching: finished lanes'
  slots refill at inference boundaries) or the warm multi-process pool.
* :mod:`repro.serving.cache` -- :class:`ResultCache`, content-addressed on
  policy-weight digest + environment schema + request identity; a hit is
  byte-identical to a fresh roll.
* :mod:`repro.serving.jsonl` -- the stdin/stdout JSONL protocol behind
  ``repro-serve`` (``python -m repro.serving``, or ``repro-experiments
  serve``).
* :mod:`repro.serving.server` / :mod:`repro.serving.client` -- the same
  protocol over a TCP socket (``repro-serve --tcp HOST:PORT``): asyncio
  front end with admission control, per-connection flow control, request
  priorities/deadlines and hot policy-weight reload.

See ``docs/serving.md`` for the request lifecycle, cache-key anatomy and
measured throughput, and ``examples/serving_client.py`` for a walkthrough.
"""

from repro.serving.cache import CACHE_SCHEMA, ResultCache, policy_digest, result_key
from repro.serving.client import ServingClient
from repro.serving.jsonl import serve_jsonl
from repro.serving.server import EvaluationServer, ServerHandle, start_server_thread
from repro.serving.service import (
    EpisodeRequest,
    EvaluationService,
    ServedResult,
    estimate_for_request,
)

__all__ = [
    "CACHE_SCHEMA",
    "EpisodeRequest",
    "EvaluationServer",
    "EvaluationService",
    "ResultCache",
    "ServedResult",
    "ServerHandle",
    "ServingClient",
    "estimate_for_request",
    "policy_digest",
    "result_key",
    "serve_jsonl",
    "start_server_thread",
]
