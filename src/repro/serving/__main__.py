"""``repro-serve``: the JSONL evaluation service on stdin/stdout.

Usage::

    PYTHONPATH=src python -m repro.serving [--workers N] [--slots N]
        [--tcp HOST:PORT] [--max-pending N] [--max-inflight N]
        [--cache-dir PATH] [--no-cache] [--max-entries N]
        [--demos N] [--epochs N]
        [--max-queue N] [--chunk-timeout S] [--retry-attempts N]
        [--fault-seed N] [--fault-crash-rate P] [--fault-hard-crash]
        [--fault-hang-rate P] [--fault-cache-rate P] [--fault-line-rate P]
        [--fault-conn-rate P] [--fault-frame-rate P]

``--tcp HOST:PORT`` swaps the stdin/stdout loop for the asyncio TCP front
end (:mod:`repro.serving.server`): same request schema plus ``priority``,
server-side admission control (``--max-pending``), per-connection flow
control (``--max-inflight``) and the ``reload`` op for hot weight swaps.
The bound address is announced on stderr (``[serving on HOST:PORT]``) so a
supervisor -- or the CI smoke job -- knows when to connect; port ``0``
binds an ephemeral port.

The ``--fault-*`` flags arm a deterministic :class:`repro.reliability.
FaultPlan` (requires ``--fault-seed``): injected worker crashes, hangs,
truncated cache reads and mangled request lines, all keyed on the plan's
seed so a chaos run reproduces exactly.  The service must survive all of
them -- they exist so CI can prove it does.

Requests are JSON objects, one per line; a blank line flushes the batch
(see :mod:`repro.serving.jsonl` for the protocol).  ``repro-experiments
serve`` forwards here, so both spellings serve identically.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def main(argv: list[str] | None = None, policies=None, stdin=None, stdout=None) -> int:
    """Entry point; ``policies``/``stdin``/``stdout`` are injectable for tests."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve episode-evaluation requests over stdin/stdout JSONL.",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard cache-miss requests across N warm worker processes "
             "(1 = in-process continuous batching)",
    )
    parser.add_argument(
        "--slots", type=int, default=32, metavar="N",
        help="in-flight lanes for the in-process continuous-batching path",
    )
    parser.add_argument(
        "--tcp", default=None, metavar="HOST:PORT",
        help="serve the JSONL protocol over a TCP socket instead of "
             "stdin/stdout (port 0 binds an ephemeral port, announced on "
             "stderr)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="(--tcp only) bound the server's pending batch; overflow "
             "frames answer {'status': 'rejected'} immediately",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="(--tcp only) per-connection flow control: stop reading a "
             "connection with N unanswered admissions",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persist the result cache on disk (default: in-memory only)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    parser.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="LRU-bound the result cache to N entries",
    )
    parser.add_argument(
        "--demos", type=int, default=24, metavar="N",
        help="demonstrations per task when training/loading the policies",
    )
    parser.add_argument(
        "--epochs", type=int, default=12, metavar="N",
        help="training epochs when training/loading the policies",
    )
    parser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="bound the admission queue; overflow requests answer "
             "{'status': 'rejected'} instead of queueing unboundedly",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="S",
        help="seconds before a dispatched worker chunk is declared lost "
             "(enables recovery from hard worker deaths)",
    )
    parser.add_argument(
        "--retry-attempts", type=int, default=None, metavar="N",
        help="total attempts per worker chunk before the pool is declared "
             "unhealthy and the drain degrades to in-process batching",
    )
    fault = parser.add_argument_group(
        "fault injection", "arm a deterministic FaultPlan (requires --fault-seed)"
    )
    fault.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="seed the FaultPlan's keyed decision streams",
    )
    fault.add_argument(
        "--fault-crash-rate", type=float, default=0.0, metavar="P",
        help="probability a worker chunk's first attempt crashes",
    )
    fault.add_argument(
        "--fault-hard-crash", action="store_true",
        help="injected crashes kill the worker process (os._exit) instead "
             "of raising; pair with --chunk-timeout",
    )
    fault.add_argument(
        "--fault-hang-rate", type=float, default=0.0, metavar="P",
        help="probability a worker chunk's first attempt hangs",
    )
    fault.add_argument(
        "--fault-cache-rate", type=float, default=0.0, metavar="P",
        help="probability a cache entry's first read arrives truncated",
    )
    fault.add_argument(
        "--fault-line-rate", type=float, default=0.0, metavar="P",
        help="probability a request line arrives mangled",
    )
    fault.add_argument(
        "--fault-conn-rate", type=float, default=0.0, metavar="P",
        help="(--tcp only) probability an accepted connection is dropped",
    )
    fault.add_argument(
        "--fault-frame-rate", type=float, default=0.0, metavar="P",
        help="(--tcp only) probability a request frame arrives mangled",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2

    from repro.reliability import FaultPlan, RetryPolicy
    from repro.serving.cache import ResultCache
    from repro.serving.jsonl import serve_jsonl
    from repro.serving.service import EvaluationService

    fault_plan = None
    if args.fault_seed is not None:
        fault_plan = FaultPlan(
            seed=args.fault_seed,
            crash_rate=args.fault_crash_rate,
            hard_crash=args.fault_hard_crash,
            hang_rate=args.fault_hang_rate,
            cache_corrupt_rate=args.fault_cache_rate,
            malformed_line_rate=args.fault_line_rate,
            connection_drop_rate=args.fault_conn_rate,
            frame_corrupt_rate=args.fault_frame_rate,
        )
    retry = None
    if args.retry_attempts is not None:
        retry = RetryPolicy(max_attempts=args.retry_attempts)

    if policies is None:
        from repro.analysis.evaluation import get_trained_policies

        policies = get_trained_policies(demos_per_task=args.demos, epochs=args.epochs)
    cache = None
    if not args.no_cache:
        cache = ResultCache(
            directory=args.cache_dir,
            max_entries=args.max_entries,
            fault_plan=fault_plan,
        )
    if args.tcp is not None:
        return _serve_tcp(args, policies, cache, fault_plan, retry)
    with EvaluationService(
        policies,
        workers=args.workers,
        slots=args.slots,
        cache=cache,
        use_cache=not args.no_cache,
        max_queue=args.max_queue,
        retry=retry,
        chunk_timeout=args.chunk_timeout,
        fault_plan=fault_plan,
    ) as service:
        served = serve_jsonl(
            service, stdin or sys.stdin, stdout or sys.stdout, fault_plan=fault_plan
        )
    print(f"[served {served} requests]", file=sys.stderr)
    return 0


def _serve_tcp(args, policies, cache, fault_plan, retry) -> int:
    """Run the asyncio TCP front end until interrupted (SIGINT exits 0)."""
    import asyncio

    from repro.serving.server import EvaluationServer

    host, _, port_text = args.tcp.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"--tcp expects HOST:PORT, got {args.tcp!r}", file=sys.stderr)
        return 2

    async def _run() -> None:
        server = EvaluationServer(
            policies,
            host or "127.0.0.1",
            port,
            workers=args.workers,
            slots=args.slots,
            cache=cache,
            use_cache=not args.no_cache,
            max_pending=args.max_pending,
            max_inflight=args.max_inflight,
            retry=retry,
            chunk_timeout=args.chunk_timeout,
            fault_plan=fault_plan,
        )
        await server.start()
        print(f"[serving on {server.host}:{server.port}]", file=sys.stderr, flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            served = server.stats()["requests_served"]
            await server.close()
            print(f"[served {served} requests]", file=sys.stderr)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
