"""``repro-serve``: the JSONL evaluation service on stdin/stdout.

Usage::

    PYTHONPATH=src python -m repro.serving [--workers N] [--slots N]
        [--cache-dir PATH] [--no-cache] [--max-entries N]
        [--demos N] [--epochs N]

Requests are JSON objects, one per line; a blank line flushes the batch
(see :mod:`repro.serving.jsonl` for the protocol).  ``repro-experiments
serve`` forwards here, so both spellings serve identically.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def main(argv: list[str] | None = None, policies=None, stdin=None, stdout=None) -> int:
    """Entry point; ``policies``/``stdin``/``stdout`` are injectable for tests."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve episode-evaluation requests over stdin/stdout JSONL.",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard cache-miss requests across N warm worker processes "
             "(1 = in-process continuous batching)",
    )
    parser.add_argument(
        "--slots", type=int, default=32, metavar="N",
        help="in-flight lanes for the in-process continuous-batching path",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persist the result cache on disk (default: in-memory only)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    parser.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="LRU-bound the result cache to N entries",
    )
    parser.add_argument(
        "--demos", type=int, default=24, metavar="N",
        help="demonstrations per task when training/loading the policies",
    )
    parser.add_argument(
        "--epochs", type=int, default=12, metavar="N",
        help="training epochs when training/loading the policies",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2

    from repro.serving.cache import ResultCache
    from repro.serving.jsonl import serve_jsonl
    from repro.serving.service import EvaluationService

    if policies is None:
        from repro.analysis.evaluation import get_trained_policies

        policies = get_trained_policies(demos_per_task=args.demos, epochs=args.epochs)
    cache = None
    if not args.no_cache:
        cache = ResultCache(directory=args.cache_dir, max_entries=args.max_entries)
    service = EvaluationService(
        policies,
        workers=args.workers,
        slots=args.slots,
        cache=cache,
        use_cache=not args.no_cache,
    )
    served = serve_jsonl(service, stdin or sys.stdin, stdout or sys.stdout)
    print(f"[served {served} requests]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
