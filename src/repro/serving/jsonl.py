"""stdin/stdout JSONL front-end for the evaluation service (``repro-serve``).

One request per line::

    {"id": "r1", "system": "corki-5", "instructions": ["lift the red block"], "seed": 3}
    {"id": "r2", "system": "roboflamingo", "instruction": "push the blue block left", "seed": 3, "lane": 1}

A **blank line** (or end of input) flushes the accumulated batch through
:meth:`~repro.serving.service.EvaluationService.drain` -- requests between
flushes are served together, so clients that stream several lines before a
blank line get full continuous-batching throughput.  Each request yields one
response line, in request order::

    {"id": "r1", "cached": false, "successes": [true], "frames": [41],
     "executed_steps": [[5, 5, ...]],
     "estimate": {"system": "corki-5", "frames": 41, "mean_latency_ms": ..., "mean_energy_j": ...}}

The ``estimate`` block prices the episode's measured frame structure through
the lane-batched pipeline latency/energy model; it is a pure function of the
request identity and the traces, so cached and fresh responses carry
identical estimates.

Operations: ``{"op": "stats"}`` flushes, then reports service/cache
counters.  A malformed line yields ``{"error": ...}`` (with the request's
``id`` when one parsed) without disturbing the rest of the batch.

Requests may carry ``deadline_ms``; a request the service could not serve
in time (or shed under admission control) answers with its ``status`` and
an ``error`` instead of traces::

    {"id": "r9", "status": "timeout", "error": "deadline of 5 ms exceeded"}

Successful responses carry ``"status": "ok"``.
"""

from __future__ import annotations

import json
from typing import IO

from repro.serving.service import EpisodeRequest, EvaluationService

__all__ = ["request_from_json", "response_to_json", "serve_jsonl"]


def request_from_json(obj: dict) -> EpisodeRequest:
    """Build a validated :class:`EpisodeRequest` from one decoded line.

    Instructions are resolved against the task registry *here*, so a typo'd
    instruction yields a per-request error response instead of surfacing as
    an exception mid-drain (possibly from a worker process) and killing the
    whole batch.
    """
    from repro.sim.tasks import task_by_instruction

    if "instructions" in obj:
        instructions = tuple(obj["instructions"])
    elif "instruction" in obj:
        instructions = (obj["instruction"],)
    else:
        raise ValueError("a request needs 'instructions' (list) or 'instruction'")
    for text in instructions:
        task_by_instruction(text)  # raises KeyError naming the instruction
    kwargs = {}
    for key in ("lane", "layout", "max_frames", "priority"):
        if key in obj:
            kwargs[key] = obj[key] if key == "layout" else int(obj[key])
    if obj.get("deadline_ms") is not None:
        kwargs["deadline_ms"] = float(obj["deadline_ms"])
    return EpisodeRequest(
        system=obj["system"],
        instructions=instructions,
        seed=int(obj["seed"]),
        **kwargs,
    )


def response_to_json(result, request_id=None) -> dict:
    """One response object for one :class:`ServedResult`.

    A non-``ok`` result (timeout, rejection) answers with its status and
    error only -- there are no traces to report, and emitting empty success
    lists would read as "ran and failed" rather than "never ran".
    """
    if not result.ok:
        response = {"status": result.status, "error": result.error}
        if request_id is not None:
            response = {"id": request_id, **response}
        return response
    response = {
        "status": "ok",
        "cached": result.cached,
        "successes": result.successes,
        "frames": [trace.frames for trace in result.traces],
        "executed_steps": [list(trace.executed_steps) for trace in result.traces],
    }
    if result.estimate is not None:
        response["estimate"] = result.estimate.to_json()
    if request_id is not None:
        response = {"id": request_id, **response}
    return response


def serve_jsonl(
    service: EvaluationService,
    stdin: IO[str],
    stdout: IO[str],
    fault_plan=None,
) -> int:
    """Run the request loop until ``stdin`` closes; returns requests served.

    The loop batches lines until a blank line / ``stats`` op / EOF, drains
    the service once per batch, and writes one response line per request in
    request order, flushing ``stdout`` after every batch so an interactive
    client sees its answers immediately.

    ``fault_plan`` (a :class:`repro.reliability.FaultPlan`) optionally
    mangles request lines as if the transport truncated them -- each mangled
    line must surface as a per-line ``{"error": ...}`` response, never kill
    the loop; the chaos suite drives this path.
    """
    batch: list[tuple[object, EpisodeRequest]] = []
    served = 0
    line_index = -1

    def emit(obj: dict) -> None:
        stdout.write(json.dumps(obj) + "\n")

    def flush() -> None:
        nonlocal served
        if batch:
            results = service.serve([request for _, request in batch])
            for (request_id, _), result in zip(batch, results):
                emit(response_to_json(result, request_id))
            served += len(batch)
            batch.clear()
        stdout.flush()

    for line in stdin:
        line = line.strip()
        if not line:
            flush()
            continue
        line_index += 1
        if fault_plan is not None and fault_plan.mangles_line(line_index):
            line = fault_plan.mangle_line(line)
        request_id = None
        try:
            obj = json.loads(line)
            request_id = obj.get("id")
            if obj.get("op") == "stats":
                flush()
                emit({"stats": service.stats()})
                stdout.flush()
                continue
            batch.append((request_id, request_from_json(obj)))
        except Exception as error:
            flush()  # keep response order aligned with request order
            payload = {"error": str(error) or type(error).__name__}
            if request_id is not None:
                payload = {"id": request_id, **payload}
            emit(payload)
            stdout.flush()
    flush()
    return served
