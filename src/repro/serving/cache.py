"""Content-addressed result cache for evaluation episodes.

A cache entry is one lane's trace list, keyed by a SHA-256 digest over
*everything* that determines its bytes:

* the **policy digest** -- a hash of the trained weights themselves (the
  npz archive bytes :func:`repro.analysis.parallel.archive_policies`
  produces, plus the normalizer scale and the head dimensions), so
  retraining or perturbing a single weight changes every key;
* the **environment schema** -- task-registry size and the camera's
  raw-feature / observation widths (the same fields the policy-training
  cache tags with: growing the task suite or the sensor channels must
  invalidate, not silently reuse);
* the **request identity** -- system name, scene layout, evaluation seed,
  *global lane index*, the job's instruction strings and the frame budget.

Determinism contract: because every lane's randomness is a pure function of
``(seed, lane index)`` (:func:`repro.analysis.evaluation.lane_generators`)
and fleet numerics are fleet-size invariant, a key identifies exactly one
byte pattern of traces.  Entries round-trip through npz (float64-exact), so
a cache hit is **byte-identical** to a fresh roll -- ``tests/test_serving.py``
asserts this end to end.

Robustness: entries are validated on read; a corrupted payload (truncated
file, stray bytes, missing arrays) is evicted and reported as a miss, so
the caller re-rolls instead of crashing.  Capacity is bounded by an LRU
policy over ``max_entries``; evicted entries also leave the disk store.

Shared mounts: several processes may point at one cache directory (the
multi-server deployment shape ``docs/serving.md`` documents).  Keys are
content addresses, so concurrent writers of the same key write the same
bytes; atomic ``os.replace`` keeps every read a complete payload; and an
advisory ``flock`` on ``<dir>/.lock`` (shared for reads, exclusive for
writes and evictions) serialises the metadata races those two guarantees
do not cover -- an eviction never yanks a file mid-read, and a read that
loses the race to an eviction reports a miss instead of raising.
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

import numpy as np

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts mount unlocked
    fcntl = None  # type: ignore[assignment]

from repro.core.runner import MAX_EPISODE_FRAMES, EpisodeTrace

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "policy_digest",
    "result_key",
    "encode_traces",
    "decode_traces",
]

CACHE_SCHEMA = "repro-result-cache/2"
"""Versions the key *and* payload layout; bumping it invalidates every entry.

Schema 2 (the estimate-era schema): payloads embed the schema marker, so a
pre-bump payload that somehow lands under a current key (hand-copied files,
a downgraded writer) fails validation and is evicted as corrupt -- the lane
re-rolls instead of serving a result the estimate path cannot vouch for.
"""

_DIGEST_CACHE: dict[int, tuple[weakref.ref, str]] = {}


def policy_digest(policies) -> str:
    """SHA-256 over the trained weights (archive bytes + head dimensions).

    Policies are frozen after training in this codebase, so the digest is
    memoised by object identity -- the archive serialization (every weight
    to npz bytes) runs once per trained pair, not once per request.  The
    memo holds a weak reference and re-verifies it, because a bare ``id()``
    key can be recycled by the allocator after the original object dies --
    a stale digest here would serve one model's cached traces as another's.
    """
    entry = _DIGEST_CACHE.get(id(policies))
    if entry is not None:
        ref, digest = entry
        if ref() is policies:
            return digest
    from repro.analysis.parallel import archive_policies

    archive = archive_policies(policies)
    hasher = hashlib.sha256()
    hasher.update(archive.baseline_npz)
    hasher.update(archive.corki_npz)
    hasher.update(archive.normalizer_scale)
    hasher.update(f"{archive.token_dim}:{archive.hidden_dim}".encode())
    digest = hasher.hexdigest()
    _DIGEST_CACHE[id(policies)] = (weakref.ref(policies), digest)
    return digest


def result_key(
    policy: str,
    system: str,
    layout_name: str,
    seed: int,
    lane: int,
    instructions: tuple[str, ...],
    max_frames: int = MAX_EPISODE_FRAMES,
    registry_size: int | None = None,
    raw_feature_dim: int | None = None,
    observation_dim: int | None = None,
) -> str:
    """The content address of one lane's result.

    ``policy`` is a :func:`policy_digest`.  The schema fields default to the
    live registry/camera constants; tests pass explicit values to assert
    that changing any of them changes the key.
    """
    if registry_size is None or raw_feature_dim is None or observation_dim is None:
        from repro.sim.camera import OBSERVATION_DIM, RAW_FEATURE_DIM
        from repro.sim.tasks import TASKS

        registry_size = len(TASKS) if registry_size is None else registry_size
        raw_feature_dim = RAW_FEATURE_DIM if raw_feature_dim is None else raw_feature_dim
        observation_dim = OBSERVATION_DIM if observation_dim is None else observation_dim
    payload = "\n".join(
        [
            CACHE_SCHEMA,
            policy,
            f"registry={registry_size}",
            f"raw={raw_feature_dim}",
            f"obs={observation_dim}",
            f"system={system}",
            f"layout={layout_name}",
            f"seed={seed}",
            f"lane={lane}",
            f"frames={max_frames}",
            *instructions,
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def encode_traces(traces: list[EpisodeTrace]) -> bytes:
    """Serialize one lane's trace list to npz bytes (float64-exact)."""
    arrays: dict[str, np.ndarray] = {
        "schema": np.array(CACHE_SCHEMA),
        "count": np.array(len(traces)),
    }
    for index, trace in enumerate(traces):
        arrays[f"success_{index}"] = np.array(trace.success)
        arrays[f"frames_{index}"] = np.array(trace.frames)
        arrays[f"executed_{index}"] = np.array(trace.executed_steps, dtype=int)
        arrays[f"ee_{index}"] = trace.ee_path
        arrays[f"reference_{index}"] = trace.reference_path
        arrays[f"gripper_{index}"] = trace.gripper_path
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def decode_traces(payload: bytes) -> list[EpisodeTrace]:
    """Inverse of :func:`encode_traces`; raises on any malformed payload.

    The embedded schema marker is validated first: payloads written under an
    older schema (or missing the marker entirely) raise, which the cache
    treats as a corrupt entry -- evict and re-roll, never serve stale layout.
    """
    with np.load(io.BytesIO(payload)) as archive:
        if "schema" not in archive.files or str(archive["schema"]) != CACHE_SCHEMA:
            raise ValueError("cache payload written under a different schema")
        count = int(archive["count"])
        return [
            EpisodeTrace(
                success=bool(archive[f"success_{index}"]),
                frames=int(archive[f"frames_{index}"]),
                executed_steps=[int(k) for k in archive[f"executed_{index}"]],
                ee_path=archive[f"ee_{index}"],
                reference_path=archive[f"reference_{index}"],
                gripper_path=archive[f"gripper_{index}"],
            )
            for index in range(count)
        ]


class ResultCache:
    """LRU result cache, in-memory with an optional on-disk mirror.

    ``directory`` persists entries as ``<key>.npz`` files, so a cache
    survives process restarts (``repro-experiments --result-cache`` reruns,
    service restarts); in-memory entries hold the *encoded* bytes, so a hit
    always decodes through the same npz path a disk hit takes -- one code
    path, and returned traces never alias a caller's objects.
    ``max_entries`` LRU-bounds the in-memory tier, and evicting an entry
    also deletes its file; entries written by *earlier* processes are only
    counted once this process reads them, so a long-lived directory is
    bounded per process lifetime, not globally -- prune the directory (or
    start fresh) if disk footprint matters across many restarts.

    Disk writes are atomic: the payload lands in a uniquely-named temp file
    in the same directory and is ``os.replace``-d into place, so a crash
    mid-write (or two processes writing the same key) can never leave a
    truncated ``<key>.npz`` for later reads to evict.  ``fault_plan``
    (a :class:`repro.reliability.FaultPlan`) optionally truncates payloads
    *on read*, simulating exactly that torn write so the evict-and-re-roll
    path stays exercised.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_entries: int | None = None,
        fault_plan=None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = Path(directory) if directory is not None else None
        self.max_entries = max_entries
        self.fault_plan = fault_plan
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._reads: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def lane_key(
        self,
        policies,
        system: str,
        layout,
        seed: int,
        lane: int,
        job,
        max_frames: int = MAX_EPISODE_FRAMES,
    ) -> str:
        """Key one evaluation lane: ``job`` is a task list (or instructions)."""
        instructions = tuple(
            task if isinstance(task, str) else task.instruction for task in job
        )
        return result_key(
            policy_digest(policies),
            system,
            layout.name,
            seed,
            lane,
            instructions,
            max_frames=max_frames,
        )

    def _path(self, key: str) -> Path | None:
        return None if self.directory is None else self.directory / f"{key}.npz"

    @contextmanager
    def _mount_lock(self, shared: bool):
        """Advisory lock over the shared directory (no-op without a mount).

        ``flock`` on a sidecar ``<dir>/.lock`` file: shared for reads,
        exclusive for writes/evictions.  Advisory is enough -- every writer
        in this codebase takes the lock, and a foreign writer that does not
        is still harmless thanks to atomic ``os.replace`` (the lock guards
        unlink-vs-read metadata races, not payload integrity).
        """
        if self.directory is None or fcntl is None:
            yield
            return
        # repro: allow[ATOMIC-WRITE] reason=zero-length flock sidecar; the lock fd carries no payload, data files go through mkstemp+os.replace
        with open(self.directory / ".lock", "a+b") as handle:
            fcntl.flock(handle, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _read_disk(self, path: Path) -> bytes | None:
        """One locked disk read; a file another process evicted between our
        existence check and the read is a miss, never an exception."""
        with self._mount_lock(shared=True):
            try:
                return path.read_bytes()
            except FileNotFoundError:
                return None

    def get(self, key: str) -> list[EpisodeTrace] | None:
        """The cached traces for ``key``, or ``None`` (miss / corrupt entry)."""
        payload = self._entries.get(key)
        if payload is None:
            path = self._path(key)
            if path is not None:
                payload = self._read_disk(path)
        if payload is None:
            self.misses += 1
            return None
        read_index = self._reads.get(key, 0)
        self._reads[key] = read_index + 1
        if self.fault_plan is not None and self.fault_plan.corrupts_cache_read(
            key, read_index
        ):
            payload = self.fault_plan.truncate(payload)
        try:
            traces = decode_traces(payload)
        except Exception:
            # A corrupted entry must behave as a miss, not an error: drop it
            # so the caller re-rolls and the fresh result replaces it.
            self.corrupt += 1
            self.misses += 1
            self._drop(key)
            return None
        self._entries[key] = payload
        self._entries.move_to_end(key)
        self._shrink()
        self.hits += 1
        return traces

    def put(self, key: str, traces: list[EpisodeTrace]) -> None:
        """Store one lane's traces under ``key`` (idempotent)."""
        payload = encode_traces(traces)
        self._entries[key] = payload
        self._entries.move_to_end(key)
        path = self._path(key)
        if path is not None:
            # Unique temp name (mkstemp, same filesystem) + atomic rename:
            # a deterministic name like `<key>.tmp` would let two processes
            # caching the same key interleave their writes, which is the
            # torn-file failure this dance exists to rule out.  The mount
            # lock additionally keeps the replace from racing a concurrent
            # eviction's unlink of the same key.
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key[:16]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                with self._mount_lock(shared=False):
                    os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self._shrink()

    def _unlink(self, path: Path) -> None:
        """Remove one entry's file; losing the unlink race to another
        process mounting the same directory is success, not an error."""
        with self._mount_lock(shared=False):
            path.unlink(missing_ok=True)

    def _drop(self, key: str) -> None:
        self._entries.pop(key, None)
        path = self._path(key)
        if path is not None:
            self._unlink(path)

    def _shrink(self) -> None:
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            path = self._path(evicted)
            if path is not None:
                self._unlink(path)

    def stats(self) -> dict[str, int]:
        """Counters for the service's ``stats`` op and the bench report."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }
