"""A small synchronous client for the TCP/JSONL evaluation server.

The wire protocol is plain enough to drive with ``nc`` -- newline-delimited
JSON frames, a blank line to flush -- but tests, benches and the example
all want the same few moves: connect (with retries while a freshly started
server binds), stream frames, flush, collect responses, match them by
``id``.  This client is those moves and nothing more; it deliberately
holds no protocol state beyond the socket, so one client object maps to
one connection's framing exactly.
"""

from __future__ import annotations

import json
import socket
import time

__all__ = ["ServingClient"]


class ServingClient:
    """One TCP connection speaking the JSONL serving protocol.

    ::

        with ServingClient(host, port) as client:
            responses = client.request(
                {"id": "a", "system": "corki-5", "instruction": "...", "seed": 3},
                {"id": "b", "system": "corki-5", "instruction": "...", "seed": 3,
                 "lane": 1, "priority": 5},
            )
            by_id = {r.get("id"): r for r in responses}

    ``attempts`` retries the initial connect (the CI smoke job races the
    server's bind); responses come back in *server dispatch order* --
    priority order within a batch -- so callers match by ``id`` rather
    than position.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        attempts: int = 1,
        retry_wait: float = 0.25,
        timeout: float | None = 300.0,
    ):
        last: OSError | None = None
        for attempt in range(max(1, attempts)):
            try:
                self._socket = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError as error:
                last = error
                if attempt + 1 < attempts:
                    time.sleep(retry_wait)
        else:
            raise ConnectionError(
                f"could not connect to {host}:{port} after {attempts} attempt(s)"
            ) from last
        self._file = self._socket.makefile("rwb")

    # -- framing ---------------------------------------------------------------

    def send(self, obj: dict) -> None:
        """Buffer one request frame (no flush: batches build server-side)."""
        self._file.write((json.dumps(obj) + "\n").encode())

    def send_raw(self, line: bytes) -> None:
        """Buffer one pre-framed line verbatim -- the seam fault-injection
        walkthroughs use to put a malformed frame on the wire."""
        if not line.endswith(b"\n"):
            line += b"\n"
        self._file.write(line)

    def flush(self) -> None:
        """Blank-line flush: everything sent so far becomes one batch."""
        self._file.write(b"\n")
        self._file.flush()

    def recv_raw(self) -> bytes:
        """Block for one response frame; the exact bytes off the wire
        (newline included) -- what the byte-identity tests compare."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return line

    def recv(self) -> dict:
        """Block for one response frame."""
        return json.loads(self.recv_raw())

    # -- conveniences ----------------------------------------------------------

    def request(self, *objs: dict) -> list[dict]:
        """Send ``objs`` as one batch; return one response per request, in
        arrival (= server dispatch) order."""
        for obj in objs:
            self.send(obj)
        self.flush()
        return [self.recv() for _ in objs]

    def stats(self) -> dict:
        """The server's merged counters (flushes any buffered frames)."""
        self.send({"op": "stats"})
        self._file.flush()
        return self.recv()["stats"]

    def reload(self, archive_path: str) -> str:
        """Stage a hot weight reload from an archive file; returns the
        staged ``policy_digest``."""
        self.send({"op": "reload", "archive": archive_path})
        self._file.flush()
        response = self.recv()
        if "reloaded" not in response:
            raise RuntimeError(f"reload failed: {response.get('error', response)}")
        return response["reloaded"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
