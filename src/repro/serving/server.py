"""The asyncio TCP/JSONL front end of the evaluation service.

``EvaluationService`` is deliberately single-threaded: continuous batching
happens *inside* a drain, which keeps the determinism contract auditable.
This module owns everything that is not -- sockets, concurrent clients,
admission under load -- and feeds the service whole batches:

* **Framing** is the stdin protocol verbatim (:mod:`repro.serving.jsonl`):
  one JSON request per line; a **blank line** flushes the connection's
  buffered frames into the server's pending batch, so clients that stream
  several lines before a blank line get full continuous-batching
  throughput.  EOF and the ``stats`` op flush too.
* **Admission control** is server-wide: ``max_pending`` bounds the pending
  batch, and an overflowing frame is answered immediately with the same
  ``{"status": "rejected", "error": "admission queue full"}`` envelope the
  service's own bounded queue produces -- shed, never dropped.
  ``max_inflight`` is per-connection flow control: the server stops
  *reading* a connection whose unanswered admissions reach the bound, so
  backpressure propagates to the client through TCP itself.
* **Priorities and deadlines** ride on the request schema
  (``"priority"``, ``"deadline_ms"``).  Each dispatched batch is ordered
  by ``(-priority, arrival)`` before it reaches the service, whose
  priority-aware miss dispatch admits high-priority lanes into
  ``run_continuous`` slots first; responses are written in that dispatch
  order, so completion is observably out-of-order under mixed priorities
  (match responses by ``id``).  A request's deadline covers its time in
  the *server's* queue too: the dispatcher subtracts the queue wait from
  ``deadline_ms`` before submission, and the service's cancellation seams
  (PR 7) evict lanes that expire mid-roll at the next inference boundary.
* **Hot reload**: :meth:`EvaluationServer.reload` stages a new trained
  pair; the dispatcher swaps in a fresh service at the next batch boundary
  (sharing the same :class:`~repro.serving.cache.ResultCache`), so
  in-flight batches finish on the old weights while new admissions roll --
  and cache -- under the new ``policy_digest``.  Both digests' entries
  coexist in the cache; neither can serve the other's results.
* **Fault injection** (:class:`~repro.reliability.faults.FaultPlan`
  domains 13/14): ``connection_drop_rate`` closes a doomed connection at
  accept, ``frame_corrupt_rate`` mangles individual frames -- both keyed
  and budget-free, both survivable by contract: a dropped connection or a
  mangled frame never disturbs its neighbours.

Determinism contract unchanged: a response served over the socket is
byte-identical to the same request answered by the in-process service --
and therefore to ``evaluate_system(workers=1)`` -- because the bytes on
the wire are produced by the very same :func:`~repro.serving.jsonl.
response_to_json` the stdin path uses, over the very same service results.
``tests/test_server.py`` asserts this end to end over a loopback socket.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.serving.cache import ResultCache, policy_digest
from repro.serving.jsonl import request_from_json, response_to_json
from repro.serving.service import EpisodeRequest, EvaluationService

__all__ = ["EvaluationServer", "ServerHandle", "start_server_thread"]

MAX_LINE_BYTES = 1 << 20
"""Default per-line byte bound; an oversized frame errors and closes its
connection (the tail of the line is unrecoverable framing state)."""

_REJECTED = {"status": "rejected", "error": "admission queue full"}


class _Connection:
    """Per-connection state: frame buffer, inflight accounting, identity."""

    def __init__(self, index: int, writer: asyncio.StreamWriter):
        self.index = index
        self.writer = writer
        self.buffer: list[tuple[object, EpisodeRequest]] = []
        self.frames = 0
        self.inflight = 0
        self.closed = False
        self.gate = asyncio.Condition()


@dataclass
class _PendingEntry:
    """One admitted request waiting for the dispatcher."""

    seq: int
    connection: _Connection
    request_id: object
    request: EpisodeRequest
    enqueued_at: float


class EvaluationServer:
    """Serve the JSONL evaluation protocol over a TCP socket.

    ::

        server = EvaluationServer(policies, "127.0.0.1", 0, slots=8)
        await server.start()          # server.port now holds the bound port
        ...
        await server.close()

    One dispatcher task drains the server-wide pending batch through the
    wrapped :class:`EvaluationService` on a dedicated single-thread
    executor (the service is single-threaded by design; the executor keeps
    the event loop reading sockets while a batch rolls).  ``clock`` is the
    single monotonic time source for queue-wait accounting *and* the
    service's deadline checks -- injectable, so deadline tests advance a
    fake clock instead of sleeping.

    ``batch_started`` / ``before_drain`` are test seams: the first fires on
    the event loop when a batch is handed to the executor (dispatch order
    already fixed), the second inside the executor thread immediately
    before the service drains -- blocking there holds a batch "mid-drain"
    deterministically, which is how the hot-reload and shedding tests
    sequence themselves without sleeps.
    """

    def __init__(
        self,
        policies,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 1,
        slots: int = 32,
        fleet_size: int = 32,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        max_pending: int | None = None,
        max_inflight: int | None = None,
        retry=None,
        chunk_timeout: float | None = None,
        fault_plan=None,
        max_line_bytes: int = MAX_LINE_BYTES,
        clock: Callable[[], float] = time.monotonic,
        batch_started: Callable[[list], None] | None = None,
        before_drain: Callable[[list], None] | None = None,
    ):
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.host = host
        self.port = port
        self.workers = workers
        self.slots = slots
        self.fleet_size = fleet_size
        self.use_cache = use_cache
        self.max_pending = max_pending
        self.max_inflight = max_inflight
        self.retry = retry
        self.chunk_timeout = chunk_timeout
        self.fault_plan = fault_plan
        self.max_line_bytes = max_line_bytes
        self.batch_started = batch_started
        self.before_drain = before_drain
        self._clock = clock
        # One cache instance outlives every service swap, so results rolled
        # under different policy digests coexist (hot reload keeps both).
        self.cache = (
            (cache if cache is not None else ResultCache(fault_plan=fault_plan))
            if use_cache else None
        )
        self._service = self._make_service(policies)
        self._pending: list[_PendingEntry] = []
        self._seq = 0
        self._accepted = 0
        self.connections_dropped = 0
        self.frames_corrupted = 0
        self.shed = 0
        self.batches = 0
        self.reloads = 0
        self._reload_mutex = threading.Lock()
        self._staged_policies = None
        self._wake = asyncio.Event()
        self._done = asyncio.Event()
        self._closing = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None

    def _make_service(self, policies) -> EvaluationService:
        # No max_queue: admission control lives at the server (max_pending),
        # where a shed frame can be answered before it ever waits.
        return EvaluationService(
            policies,
            workers=self.workers,
            slots=self.slots,
            fleet_size=self.fleet_size,
            cache=self.cache,
            use_cache=self.use_cache,
            retry=self.retry,
            chunk_timeout=self.chunk_timeout,
            fault_plan=self.fault_plan,
            clock=self._clock,
        )

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "EvaluationServer":
        """Bind the socket and start the dispatcher; resolves ``self.port``."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-drain"
        )
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=self.max_line_bytes
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        """Stop accepting, drain what is pending, release engines."""
        if self._closing:
            await self._done.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._service.close()
        self._done.set()

    async def wait_closed(self) -> None:
        await self._done.wait()

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's foreground mode)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- hot reload ------------------------------------------------------------

    def reload(self, policies) -> str:
        """Stage new policy weights; returns their ``policy_digest``.

        Thread-safe.  The swap happens at the dispatcher's next batch
        boundary: batches already in the executor finish on the old
        weights, every batch dispatched afterwards rolls -- and caches --
        under the returned digest.  The shared cache carries both result
        sets; content addressing keeps them distinct.
        """
        digest = policy_digest(policies)
        with self._reload_mutex:
            self._staged_policies = policies
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._wake.set)
        return digest

    def _apply_staged_reload(self) -> None:
        with self._reload_mutex:
            fresh, self._staged_policies = self._staged_policies, None
        if fresh is None:
            return
        retired = self._service
        self._service = self._make_service(fresh)
        retired.close()
        self.reloads += 1

    # -- stats -----------------------------------------------------------------

    def stats(self) -> dict:
        """Server counters merged over the live service's (and cache's)."""
        return {
            "connections": self._accepted,
            "connections_dropped": self.connections_dropped,
            "frames_corrupted": self.frames_corrupted,
            "shed": self.shed,
            "batches": self.batches,
            "reloads": self.reloads,
            "policy": policy_digest(self._service.policies),
            **self._service.stats(),
        }

    # -- dispatcher ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            self._apply_staged_reload()
            if not self._pending:
                if self._closing:
                    return
                continue
            batch, self._pending = self._pending, []
            batch.sort(key=lambda entry: (-entry.request.priority, entry.seq))
            self.batches += 1
            if self.batch_started is not None:
                self.batch_started(list(batch))
            service = self._service
            try:
                payloads = await self._loop.run_in_executor(
                    self._executor, self._drain, service, batch
                )
            except Exception as error:  # the batch dies, the server must not
                message = str(error) or type(error).__name__
                payloads = [
                    self._with_id(entry.request_id, {"status": "error", "error": message})
                    for entry in batch
                ]
            for entry, payload in zip(batch, payloads):
                await self._respond(entry.connection, payload)
            if self._closing:
                # Keep the loop runnable: close() set the wake event once,
                # and this iteration consumed it.
                self._wake.set()

    def _drain(self, service: EvaluationService, batch: list[_PendingEntry]) -> list[dict]:
        """Executor-side: adjust deadlines for queue wait, drain, serialize.

        Responses are produced by the same :func:`response_to_json` the
        stdin path uses -- that shared serializer *is* the wire-level
        byte-identity guarantee the protocol tests pin.
        """
        if self.before_drain is not None:
            self.before_drain([entry.request for entry in batch])
        now = self._clock()
        requests = []
        for entry in batch:
            request = entry.request
            if request.deadline_ms is not None:
                waited_ms = (now - entry.enqueued_at) * 1000.0
                request = dataclasses.replace(
                    request, deadline_ms=max(0.0, request.deadline_ms - waited_ms)
                )
            requests.append(request)
        results = service.serve(requests)
        return [
            response_to_json(result, entry.request_id)
            for entry, result in zip(batch, results)
        ]

    # -- connection handling ---------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        index = self._accepted
        self._accepted += 1
        if self.fault_plan is not None and self.fault_plan.drops_connection(index):
            self.connections_dropped += 1
            await self._hang_up(writer)
            return
        connection = _Connection(index, writer)
        try:
            while True:
                try:
                    raw = await reader.readline()
                except ValueError:
                    # The line outgrew the stream limit; the unread tail is
                    # unrecoverable framing state, so error and hang up --
                    # this connection only, the server keeps accepting.
                    await self._send(connection, self._with_id(None, {
                        "status": "error",
                        "error": f"request line exceeds {self.max_line_bytes} bytes",
                    }))
                    break
                except ConnectionError:
                    break
                if not raw:
                    break
                await self._frame(connection, raw)
                if self.max_inflight is not None:
                    async with connection.gate:
                        while (
                            connection.inflight >= self.max_inflight
                            and not connection.closed
                        ):
                            await connection.gate.wait()
            await self._flush(connection)  # EOF flushes, like the stdin loop
            async with connection.gate:
                while connection.inflight > 0:
                    await connection.gate.wait()
        finally:
            connection.closed = True
            async with connection.gate:
                connection.gate.notify_all()
            await self._hang_up(writer)

    async def _frame(self, connection: _Connection, raw: bytes) -> None:
        """One received line: flush marker, op, or a buffered request."""
        try:
            line = raw.decode("utf-8").strip()
        except UnicodeDecodeError as error:
            await self._send(connection, self._with_id(None, {
                "status": "error", "error": f"undecodable frame: {error}",
            }))
            return
        if not line:
            await self._flush(connection)
            return
        frame_index = connection.frames
        connection.frames += 1
        if self.fault_plan is not None and self.fault_plan.corrupts_frame(
            connection.index, frame_index
        ):
            self.frames_corrupted += 1
            line = self.fault_plan.mangle_line(line)
        request_id = None
        try:
            obj = json.loads(line)
            if not isinstance(obj, dict):
                raise ValueError("a request frame must be a JSON object")
            request_id = obj.get("id")
            op = obj.get("op")
            if op == "stats":
                await self._stats_op(connection)
                return
            if op == "reload":
                await self._reload_op(connection, obj)
                return
            request = request_from_json(obj)
        except Exception as error:
            await self._send(connection, self._with_id(request_id, {
                "status": "error", "error": str(error) or type(error).__name__,
            }))
            return
        connection.buffer.append((request_id, request))

    async def _flush(self, connection: _Connection) -> None:
        """Admit this connection's buffered frames into the pending batch.

        Admission is decided synchronously frame by frame (no awaits
        between decisions), so shedding under a full ``max_pending`` batch
        is deterministic; shed frames are answered immediately with the
        service's own rejection envelope.
        """
        if not connection.buffer:
            return
        frames, connection.buffer = connection.buffer, []
        rejected: list[dict] = []
        admitted = 0
        for request_id, request in frames:
            if (
                self.max_pending is not None
                and len(self._pending) >= self.max_pending
            ):
                self.shed += 1
                rejected.append(self._with_id(request_id, dict(_REJECTED)))
                continue
            self._pending.append(_PendingEntry(
                self._seq, connection, request_id, request, self._clock()
            ))
            self._seq += 1
            connection.inflight += 1
            admitted += 1
        if admitted:
            self._wake.set()
        for payload in rejected:
            await self._send(connection, payload)

    async def _stats_op(self, connection: _Connection) -> None:
        """Flush, wait for this connection's admissions to answer, report."""
        await self._flush(connection)
        async with connection.gate:
            while connection.inflight > 0:
                await connection.gate.wait()
        await self._send(connection, {"stats": self.stats()})

    async def _reload_op(self, connection: _Connection, obj: dict) -> None:
        """``{"op": "reload", "archive": PATH}``: stage weights from disk.

        The ack carries the staged digest; it means "staged", not
        "swapped" -- the swap lands at the next batch boundary, which is
        exactly the in-flight-finishes-on-old-weights contract.
        """
        await self._flush(connection)
        try:
            path = obj.get("archive")
            if not path:
                raise ValueError("reload needs 'archive': path to a policy archive")
            from repro.analysis.parallel import load_archive, restore_policies

            digest = self.reload(restore_policies(load_archive(path)))
        except Exception as error:
            await self._send(connection, self._with_id(obj.get("id"), {
                "status": "error", "error": str(error) or type(error).__name__,
            }))
            return
        await self._send(connection, self._with_id(obj.get("id"), {"reloaded": digest}))

    # -- response plumbing -----------------------------------------------------

    @staticmethod
    def _with_id(request_id, payload: dict) -> dict:
        return payload if request_id is None else {"id": request_id, **payload}

    async def _send(self, connection: _Connection, payload: dict) -> None:
        if connection.closed:
            return
        try:
            connection.writer.write((json.dumps(payload) + "\n").encode())
            await connection.writer.drain()
        except (ConnectionError, RuntimeError):
            connection.closed = True

    async def _respond(self, connection: _Connection, payload: dict) -> None:
        await self._send(connection, payload)
        async with connection.gate:
            connection.inflight -= 1
            connection.gate.notify_all()

    @staticmethod
    async def _hang_up(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# -- thread harness ------------------------------------------------------------


@dataclass
class ServerHandle:
    """A running server on a background thread (tests, benches, examples)."""

    host: str
    port: int
    server: EvaluationServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop = field(repr=False)

    def stop(self) -> None:
        """Gracefully close the server and join its thread (idempotent)."""
        if not self.thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self.server.close(), self.loop).result(
            timeout=60
        )
        self.thread.join(timeout=60)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_thread(policies, **kwargs) -> ServerHandle:
    """Run an :class:`EvaluationServer` on a daemon thread; returns when the
    socket is bound.  Keyword arguments pass through to the server."""
    ready = threading.Event()
    box: dict = {}

    def _run() -> None:
        async def _main() -> None:
            server = EvaluationServer(policies, **kwargs)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            ready.set()
            await server.wait_closed()

        try:
            asyncio.run(_main())
        except BaseException as error:  # surface bind/start failures to the caller
            box.setdefault("error", error)
            ready.set()

    thread = threading.Thread(target=_run, name="repro-serving-tcp", daemon=True)
    thread.start()
    if not ready.wait(timeout=120):
        raise RuntimeError("evaluation server failed to start within 120 s")
    if "error" in box:
        raise RuntimeError("evaluation server failed to start") from box["error"]
    server = box["server"]
    return ServerHandle(server.host, server.port, server, thread, box["loop"])
