"""The long-lived evaluation service: continuous batching over warm engines.

Batch CLI runs (``repro-experiments tbl1``) plan every lane up front, roll
the whole fleet, and tear everything down.  A serving layer cannot: requests
arrive one at a time, and throughput depends on never letting the batched
inference (or the worker pool) go cold between them.  This module keeps both
engines warm:

* **In-process** (``workers <= 1``): one persistent
  :class:`~repro.core.fleet.FleetRunner` serves every drain through
  :meth:`~repro.core.fleet.FleetRunner.run_continuous` -- a finished lane's
  slot is refilled from the request queue at the next inference boundary
  instead of waiting for the fleet to drain, which is exactly the property
  Corki's trajectory-level execution exposes (inference happens at
  boundaries, so boundaries are where admission is free).
* **Multi-process** (``workers >= 2``): the service leases the warm
  spawn-context pool (:func:`repro.analysis.parallel.lease_pool` -- spawned
  once, policies shipped once) and dispatches every pending request's chunk
  asynchronously, collecting results as workers finish so a slow request
  never idles the rest of the pool.

Results flow through the content-addressed :class:`~repro.serving.cache.
ResultCache`: a repeated request (same weights, task, seed, lane, config)
is served from the cache without re-rolling, and because lane randomness is
keyed ``(seed, lane)`` the cached bytes equal a fresh roll's bytes exactly.

Determinism contract: for any mix of admission order, slot count, worker
count and cache temperature, a request's traces are byte-identical to the
same lane rolled by ``evaluate_system(..., workers=1)``.
``tests/test_serving.py`` asserts this cold and warm, in-process and
pooled.

Reliability contract (``tests/test_reliability.py``): a failure degrades a
*request*, never the process.  Requests carry an optional ``deadline_ms``
enforced at inference-boundary ticks (an expired request returns a
structured ``timeout`` result, it does not stall the batch); a bounded
admission queue sheds overload with structured ``rejected`` results; pooled
dispatch retries transient worker crashes with capped backoff and respawns
dead pools (:meth:`~repro.analysis.parallel.EvaluationPool.
run_chunks_reliably`); and when a pool exhausts its retry budget the drain
*degrades* to the in-process continuous-batching engine -- logged and
counted, never silent.  Whatever survives a fault is still byte-identical
to the fault-free run, because every recovery path re-rolls lanes under
their original ``(seed, lane)`` keys.
"""

from __future__ import annotations

import logging
import time
import weakref
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import VARIATIONS
from repro.core.fleet import FleetLane, FleetRunner
from repro.core.runner import MAX_EPISODE_FRAMES, EpisodeTrace
from repro.pipeline.estimate import PipelineEstimate, estimate_from_steps
from repro.reliability.faults import FaultPlan
from repro.reliability.health import HealthCounters, PoolUnhealthy
from repro.reliability.retry import RetryPolicy
from repro.serving.cache import ResultCache

__all__ = ["EpisodeRequest", "ServedResult", "EvaluationService", "estimate_for_request"]

logger = logging.getLogger("repro.serving")


@dataclass(frozen=True)
class EpisodeRequest:
    """One episode-evaluation request: instruction(s) + system + seed.

    ``instructions`` is the job -- one instruction for a single episode,
    several for a long-horizon chain.  ``(seed, lane)`` addresses the
    request's random streams exactly as a batch evaluation lane would be
    addressed (:func:`repro.analysis.evaluation.lane_generators`), so a
    service request can reproduce -- and cache-share with -- any lane of any
    batch run.  ``layout`` is ``"seen"`` or ``"unseen"``.

    ``deadline_ms`` bounds how long the request may wait + roll, measured
    from :meth:`EvaluationService.submit`; past it the service returns a
    structured ``timeout`` result instead of traces (``0`` means "expire
    immediately" -- useful for probing the timeout path).  Deadlines do not
    enter the cache key: an expired request served later would still roll
    the same bytes.

    ``priority`` orders *dispatch*, not results: within one drain, higher
    priorities enter the engines first (slot admission in-process, chunk
    build order pooled), so under contention they finish -- and a network
    front end answers them -- sooner.  Ties keep submission order; the
    default is ``0``; negative values yield.  Priority is scheduling
    metadata, like the deadline: it does not enter the cache key, because
    it cannot change a single byte of the result.
    """

    system: str
    instructions: tuple[str, ...]
    seed: int
    lane: int = 0
    layout: str = "seen"
    max_frames: int = MAX_EPISODE_FRAMES
    deadline_ms: float | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError(f"deadline_ms must be >= 0, got {self.deadline_ms}")
        if not self.instructions:
            raise ValueError("a request needs at least one instruction")
        if self.system != "roboflamingo" and self.system not in VARIATIONS:
            known = ", ".join(["roboflamingo", *VARIATIONS])
            raise ValueError(f"unknown system {self.system!r} (expected one of: {known})")
        if self.layout not in ("seen", "unseen"):
            raise ValueError(f"layout must be 'seen' or 'unseen', got {self.layout!r}")
        # Reject everything the rng keying cannot represent *here*, so one
        # malformed request yields a per-request error instead of blowing up
        # mid-drain (possibly inside a pool worker) and dropping the batch.
        if self.seed < 0 or self.lane < 0:
            raise ValueError(f"seed and lane must be >= 0, got {self.seed}/{self.lane}")
        if self.max_frames < 1:
            raise ValueError(f"max_frames must be >= 1, got {self.max_frames}")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ValueError(f"priority must be an int, got {self.priority!r}")


@dataclass
class ServedResult:
    """A request's outcome: traces on success, a structured failure otherwise.

    ``status`` is ``"ok"`` (traces present, possibly cache-served),
    ``"timeout"`` (the request's ``deadline_ms`` expired before completion)
    or ``"rejected"`` (shed by admission control); non-``ok`` results carry
    an ``error`` string and an empty trace list -- a request is *answered*
    in every case, never silently dropped.
    """

    request: EpisodeRequest
    traces: list[EpisodeTrace] = field(default_factory=list, repr=False)
    cached: bool = False
    estimate: PipelineEstimate | None = None
    status: str = "ok"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def successes(self) -> list[bool]:
        return [bool(trace.success) for trace in self.traces]


def estimate_for_request(
    request: EpisodeRequest, traces: list[EpisodeTrace]
) -> PipelineEstimate | None:
    """The latency/energy estimate of one served request.

    A pure function of the request identity and the traces' frame structure
    (jitter keyed ``(seed, lane)`` like every other lane stream), computed
    the same way on the fresh and the cached path -- which is why a cache
    hit's estimate is bitwise the fresh roll's.
    """
    steps = [step for trace in traces for step in trace.executed_steps]
    if not steps:
        return None
    return estimate_from_steps(
        request.system, steps, seed=request.seed, lane=request.lane
    )


def _resolve_layout(name: str):
    from repro.sim.world import SEEN_LAYOUT, UNSEEN_LAYOUT

    return SEEN_LAYOUT if name == "seen" else UNSEEN_LAYOUT


@dataclass
class _Admission:
    """One queued request plus its admission bookkeeping.

    ``admitted_at`` (service-clock seconds) anchors the request's
    ``deadline_ms``; ``shed=True`` marks a request the bounded queue turned
    away at submit time -- it still flows through :meth:`drain` so the
    caller receives its structured ``rejected`` result in request order.
    """

    request: EpisodeRequest
    admitted_at: float
    shed: bool = False


class EvaluationService:
    """Accept episode requests, serve them from warm engines and the cache.

    ::

        service = EvaluationService(policies, workers=2)
        service.submit(EpisodeRequest("corki-5", ("lift the red block",), seed=3))
        [result] = service.drain()          # rolls; byte-identical to batch
        [again] = service.serve([result.request])   # cache hit, no rolling

    ``submit`` only queues; ``drain`` serves everything queued and returns
    results in submission order.  ``serve`` is submit-all + drain.  The
    service is single-threaded by design -- continuous batching happens
    *inside* a drain (slot refill / async chunk collection), which keeps the
    determinism story auditable; a network front-end would own the socket
    loop and feed batches here (``python -m repro.serving`` does exactly
    that over stdin/stdout JSONL).

    ``cache=None`` disables caching (the bench harness measures pure roll
    throughput that way).  ``slots`` bounds in-flight lanes for the
    in-process path; ``fleet_size`` plays that role inside pool workers.

    Reliability knobs: ``max_queue`` bounds the admission queue (overflow is
    shed with structured ``rejected`` results); ``retry`` /
    ``chunk_timeout`` govern pooled-dispatch crash recovery; ``fault_plan``
    injects deterministic failures for chaos tests (it reaches the pool
    dispatch and the internally-constructed default cache); ``clock`` is
    the monotonic time source deadlines are measured on (injectable so
    timeout tests need not sleep).  Use the service as a context manager --
    or call :meth:`close` -- to return its pool lease; a ``weakref``
    finalizer (which also runs atexit) backstops leaks when a drain raises
    and the service is abandoned.
    """

    def __init__(
        self,
        policies,
        workers: int = 1,
        slots: int = 32,
        fleet_size: int = 32,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        max_queue: int | None = None,
        retry: RetryPolicy | None = None,
        chunk_timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.policies = policies
        self.workers = workers
        self.slots = slots
        self.fleet_size = fleet_size
        self.max_queue = max_queue
        self.retry = retry
        self.chunk_timeout = chunk_timeout
        self.fault_plan = fault_plan
        self._clock = clock
        self.health = HealthCounters()
        # use_cache=False turns caching off entirely; otherwise an in-memory
        # unbounded cache is the default and ``cache`` overrides it.  (An
        # explicit identity check: an *empty* ResultCache is len()-falsy.)
        self.cache = (
            (cache if cache is not None else ResultCache(fault_plan=fault_plan))
            if use_cache else None
        )
        self._queue: list[_Admission] = []
        self._runner = FleetRunner(
            baseline=policies.baseline, corki=policies.corki
        )
        self._pool = None
        self._finalizer = None
        self._closed = False
        if workers > 1:
            from repro.analysis.parallel import lease_pool, release_pool

            # Lease (and thereby spawn + warm) the pool up front, so the
            # first request pays serving cost only, not interpreter start-up.
            self._pool = lease_pool(policies, workers)
            # The finalizer runs when the service is garbage-collected *or*
            # at interpreter exit -- whichever comes first -- so an abandoned
            # service (a drain that raised, a test that forgot close()) can
            # never leak its lease past process lifetime.  close() calls the
            # same finalizer, making explicit and implicit release one path.
            self._finalizer = weakref.finalize(self, release_pool, policies, workers)
        self.requests_served = 0

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the pool lease and refuse further work (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pool = None
        if self._finalizer is not None:
            self._finalizer()

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("EvaluationService is closed")

    # -- request intake --------------------------------------------------------

    def submit(self, request: EpisodeRequest) -> bool:
        """Queue one request for the next :meth:`drain`.

        Returns ``False`` when the bounded admission queue is full: the
        request is *shed*, not dropped -- it still occupies its submission
        slot and :meth:`drain` answers it with a structured ``rejected``
        result, so response order always matches request order.
        """
        self._check_open()
        shed = (
            self.max_queue is not None
            and sum(not entry.shed for entry in self._queue) >= self.max_queue
        )
        if shed:
            self.health.rejections += 1
        self._queue.append(_Admission(request, self._clock(), shed=shed))
        return not shed

    def serve(self, requests) -> list[ServedResult]:
        """Submit every request, drain, return results in request order."""
        for request in requests:
            self.submit(request)
        return self.drain()

    def drain(self) -> list[ServedResult]:
        """Serve everything queued; results come back in submission order.

        Duplicate requests within one drain (same cache key) roll once:
        later copies are filled from the first roll's result and flagged
        ``cached`` -- they were served without rolling, which is what the
        flag reports.  With caching off every request rolls (the bench
        relies on that to measure pure serving throughput).

        Shed requests answer ``rejected``; requests whose ``deadline_ms``
        already expired answer ``timeout`` without touching an engine, and
        in-process lanes that expire *mid-roll* are evicted at the next
        inference boundary -- an expired request never stalls the batch.
        """
        self._check_open()
        admissions, self._queue = self._queue, []
        if not admissions:
            return []
        results: dict[int, ServedResult] = {}
        misses: list[tuple[int, _Admission, str | None]] = []
        primary_by_key: dict[str, int] = {}
        duplicates: list[tuple[int, _Admission, int]] = []
        for index, admission in enumerate(admissions):
            request = admission.request
            if admission.shed:
                results[index] = ServedResult(
                    request, status="rejected", error="admission queue full",
                )
                continue
            if self._expired(admission):
                self._timeout(index, admission, results)
                continue
            key = self._key(request)
            hit = None if key is None else self.cache.get(key)
            if hit is not None:
                results[index] = ServedResult(
                    request, hit, cached=True,
                    estimate=estimate_for_request(request, hit),
                )
            elif key is not None and key in primary_by_key:
                duplicates.append((index, admission, primary_by_key[key]))
            else:
                if key is not None:
                    primary_by_key[key] = index
                misses.append((index, admission, key))
        # Priority-aware dispatch: higher-priority misses enter the engines
        # first (continuous-batching slot admission in-process, chunk build
        # order pooled); ties keep submission order.  Results still return
        # in submission order -- priority moves work, not the response
        # contract -- and cache hits above never waited at all.
        misses.sort(key=lambda miss: (-miss[1].request.priority, miss[0]))
        if misses:
            if self.workers <= 1 or self._pool is None:
                self._roll_continuous(misses, results)
            else:
                self._roll_pooled(misses, results)
        for index, admission, primary in duplicates:
            outcome = results[primary]
            if outcome.ok:
                traces = list(outcome.traces)
                results[index] = ServedResult(
                    admission.request, traces, cached=True,
                    estimate=estimate_for_request(admission.request, traces),
                )
            else:
                # The primary never produced traces (its deadline expired),
                # so its duplicates share the failure -- answered, not rolled.
                results[index] = ServedResult(
                    admission.request, status=outcome.status, error=outcome.error,
                )
        self.requests_served += len(admissions)
        return [results[index] for index in range(len(admissions))]

    def stats(self) -> dict[str, int]:
        """Service + reliability counters plus the cache's.

        ``timeouts`` / ``rejections`` / ``degradations`` are the service's
        own; ``retries`` / ``respawns`` / ``faults_injected`` come from the
        leased pool (zeros in-process).  Cache counters ride along when
        caching is on.
        """
        cache_stats = self.cache.stats() if self.cache is not None else {}
        pool_health = self._pool.health if self._pool is not None else HealthCounters()
        return {
            "requests_served": self.requests_served,
            "workers": self.workers,
            "timeouts": self.health.timeouts,
            "rejections": self.health.rejections,
            "degradations": self.health.degradations,
            "retries": pool_health.retries,
            "respawns": pool_health.respawns,
            "faults_injected": pool_health.faults_injected,
            **cache_stats,
        }

    # -- deadlines -------------------------------------------------------------

    def _expired(self, admission: _Admission) -> bool:
        deadline = admission.request.deadline_ms
        if deadline is None:
            return False
        return (self._clock() - admission.admitted_at) * 1000.0 >= deadline

    def _timeout(self, index: int, admission: _Admission, results: dict) -> None:
        self.health.timeouts += 1
        results[index] = ServedResult(
            admission.request,
            status="timeout",
            error=f"deadline of {admission.request.deadline_ms:g} ms exceeded",
        )

    # -- rolling ---------------------------------------------------------------

    def _key(self, request: EpisodeRequest) -> str | None:
        if self.cache is None:
            return None
        return self.cache.lane_key(
            self.policies,
            request.system,
            _resolve_layout(request.layout),
            request.seed,
            request.lane,
            request.instructions,
            max_frames=request.max_frames,
        )

    def _lane_for(self, request: EpisodeRequest):
        """Build the (environment, FleetLane) admission for one request.

        Identical construction to :func:`repro.analysis.evaluation.
        roll_lane_chunk` for the lane at ``request.lane``; that construction
        *is* the byte-identity guarantee.
        """
        from repro.analysis.evaluation import lane_generators
        from repro.sim.env import TRACKING_30HZ, TRACKING_100HZ, ManipulationEnv
        from repro.sim.tasks import task_by_instruction

        variation = None if request.system == "roboflamingo" else VARIATIONS[request.system]
        env_rng, feedback_rng = lane_generators(request.seed, request.lane)
        env = ManipulationEnv(_resolve_layout(request.layout), env_rng)
        lane = FleetLane(
            tasks=[task_by_instruction(text) for text in request.instructions],
            variation=variation,
            rng=feedback_rng,
            actuation=TRACKING_30HZ if variation is None else TRACKING_100HZ,
            max_frames=request.max_frames,
        )
        return env, lane

    def _finish(self, index: int, request: EpisodeRequest, key: str | None,
                traces: list[EpisodeTrace], results: dict[int, ServedResult]) -> None:
        if key is not None:
            self.cache.put(key, traces)
        results[index] = ServedResult(
            request, traces, cached=False,
            estimate=estimate_for_request(request, traces),
        )

    def _roll_continuous(self, misses, results) -> None:
        """In-process path: continuous admission into the warm runner.

        Deadline enforcement happens at the two places the runner exposes a
        boundary: lazily at admission (a request that expired while earlier
        lanes rolled never builds its environment) and per tick via the
        runner's ``should_cancel`` hook, which evicts an expired lane and
        refills its slot -- the batch never waits for a doomed lane.
        """
        pending: dict[int, tuple[int, _Admission, str | None]] = {}

        def admissions():
            for index, admission, key in misses:
                if self._expired(admission):
                    self._timeout(index, admission, results)
                    continue
                env, lane = self._lane_for(admission.request)
                pending[id(lane)] = (index, admission, key)
                yield env, lane

        def on_complete(lane: FleetLane, traces: list[EpisodeTrace]) -> None:
            index, admission, key = pending.pop(id(lane))
            self._finish(index, admission.request, key, traces, results)

        should_cancel = None
        on_cancel = None
        if any(admission.request.deadline_ms is not None for _, admission, _ in misses):

            def should_cancel(lane: FleetLane) -> bool:
                entry = pending.get(id(lane))
                return entry is not None and self._expired(entry[1])

            def on_cancel(lane: FleetLane, traces: list[EpisodeTrace]) -> None:
                index, admission, _ = pending.pop(id(lane))
                self._timeout(index, admission, results)

        self._runner.run_continuous(
            admissions(), self.slots, on_complete,
            should_cancel=should_cancel, on_cancel=on_cancel,
        )

    def _roll_pooled(self, misses, results) -> None:
        """Multi-process path: every chunk in flight on the leased pool.

        Misses group by everything a :class:`~repro.analysis.parallel.
        LaneChunk` fixes per chunk (system, layout, seed, frame budget);
        each group shards across the workers by explicit lane indices, and
        *all* chunks from *all* groups dispatch asynchronously before any
        result is collected -- the pool's queue keeps every worker busy for
        the whole drain.  Dispatch runs under the pool's reliable path
        (per-chunk retry, backoff, respawn); if the pool still exhausts its
        retry budget the drain **degrades** to the in-process engine --
        logged and counted in ``stats()``, and byte-identical because both
        engines key lane randomness the same way.
        """
        from repro.analysis.parallel import LaneChunk, shard_lanes

        live: list[tuple[int, _Admission, str | None]] = []
        for miss in misses:
            index, admission, _ = miss
            if self._expired(admission):
                self._timeout(index, admission, results)
            else:
                live.append(miss)
        if not live:
            return

        groups: dict[tuple, list[tuple[int, _Admission, str | None]]] = {}
        for miss in live:
            request = miss[1].request
            group = (request.system, request.layout, request.seed, request.max_frames)
            groups.setdefault(group, []).append(miss)

        shards: list[list[tuple[int, _Admission, str | None]]] = []
        chunks: list[LaneChunk] = []
        for (system, layout_name, seed, max_frames), members in groups.items():
            for start, stop in shard_lanes(len(members), self.workers):
                shard = members[start:stop]
                shards.append(shard)
                chunks.append(LaneChunk(
                    system=system,
                    layout=_resolve_layout(layout_name),
                    seed=seed,
                    lane_start=0,
                    instructions=tuple(
                        entry[1].request.instructions for entry in shard
                    ),
                    fleet_size=self.fleet_size,
                    max_frames=max_frames,
                    lane_indices=tuple(entry[1].request.lane for entry in shard),
                ))
        try:
            chunk_results = self._pool.run_chunks_reliably(
                chunks,
                retry=self.retry,
                fault_plan=self.fault_plan,
                chunk_timeout=self.chunk_timeout,
            )
        except PoolUnhealthy as failure:
            self.health.degradations += 1
            logger.warning(
                "worker pool unhealthy (%s); degrading %d request(s) to "
                "in-process continuous batching", failure, len(live),
            )
            self._roll_continuous(live, results)
            return
        for shard, chunk_result in zip(shards, chunk_results):
            for (index, admission, key), traces in zip(shard, chunk_result):
                self._finish(index, admission.request, key, traces, results)
