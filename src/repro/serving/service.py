"""The long-lived evaluation service: continuous batching over warm engines.

Batch CLI runs (``repro-experiments tbl1``) plan every lane up front, roll
the whole fleet, and tear everything down.  A serving layer cannot: requests
arrive one at a time, and throughput depends on never letting the batched
inference (or the worker pool) go cold between them.  This module keeps both
engines warm:

* **In-process** (``workers <= 1``): one persistent
  :class:`~repro.core.fleet.FleetRunner` serves every drain through
  :meth:`~repro.core.fleet.FleetRunner.run_continuous` -- a finished lane's
  slot is refilled from the request queue at the next inference boundary
  instead of waiting for the fleet to drain, which is exactly the property
  Corki's trajectory-level execution exposes (inference happens at
  boundaries, so boundaries are where admission is free).
* **Multi-process** (``workers >= 2``): the service leases the warm
  spawn-context pool (:func:`repro.analysis.parallel.lease_pool` -- spawned
  once, policies shipped once) and dispatches every pending request's chunk
  asynchronously, collecting results as workers finish so a slow request
  never idles the rest of the pool.

Results flow through the content-addressed :class:`~repro.serving.cache.
ResultCache`: a repeated request (same weights, task, seed, lane, config)
is served from the cache without re-rolling, and because lane randomness is
keyed ``(seed, lane)`` the cached bytes equal a fresh roll's bytes exactly.

Determinism contract: for any mix of admission order, slot count, worker
count and cache temperature, a request's traces are byte-identical to the
same lane rolled by ``evaluate_system(..., workers=1)``.
``tests/test_serving.py`` asserts this cold and warm, in-process and
pooled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import VARIATIONS
from repro.core.fleet import FleetLane, FleetRunner
from repro.core.runner import MAX_EPISODE_FRAMES, EpisodeTrace
from repro.pipeline.estimate import PipelineEstimate, estimate_from_steps
from repro.serving.cache import ResultCache

__all__ = ["EpisodeRequest", "ServedResult", "EvaluationService", "estimate_for_request"]


@dataclass(frozen=True)
class EpisodeRequest:
    """One episode-evaluation request: instruction(s) + system + seed.

    ``instructions`` is the job -- one instruction for a single episode,
    several for a long-horizon chain.  ``(seed, lane)`` addresses the
    request's random streams exactly as a batch evaluation lane would be
    addressed (:func:`repro.analysis.evaluation.lane_generators`), so a
    service request can reproduce -- and cache-share with -- any lane of any
    batch run.  ``layout`` is ``"seen"`` or ``"unseen"``.
    """

    system: str
    instructions: tuple[str, ...]
    seed: int
    lane: int = 0
    layout: str = "seen"
    max_frames: int = MAX_EPISODE_FRAMES

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("a request needs at least one instruction")
        if self.system != "roboflamingo" and self.system not in VARIATIONS:
            known = ", ".join(["roboflamingo", *VARIATIONS])
            raise ValueError(f"unknown system {self.system!r} (expected one of: {known})")
        if self.layout not in ("seen", "unseen"):
            raise ValueError(f"layout must be 'seen' or 'unseen', got {self.layout!r}")
        # Reject everything the rng keying cannot represent *here*, so one
        # malformed request yields a per-request error instead of blowing up
        # mid-drain (possibly inside a pool worker) and dropping the batch.
        if self.seed < 0 or self.lane < 0:
            raise ValueError(f"seed and lane must be >= 0, got {self.seed}/{self.lane}")
        if self.max_frames < 1:
            raise ValueError(f"max_frames must be >= 1, got {self.max_frames}")


@dataclass
class ServedResult:
    """A request's traces plus whether the cache served them."""

    request: EpisodeRequest
    traces: list[EpisodeTrace] = field(repr=False)
    cached: bool = False
    estimate: PipelineEstimate | None = None

    @property
    def successes(self) -> list[bool]:
        return [bool(trace.success) for trace in self.traces]


def estimate_for_request(
    request: EpisodeRequest, traces: list[EpisodeTrace]
) -> PipelineEstimate | None:
    """The latency/energy estimate of one served request.

    A pure function of the request identity and the traces' frame structure
    (jitter keyed ``(seed, lane)`` like every other lane stream), computed
    the same way on the fresh and the cached path -- which is why a cache
    hit's estimate is bitwise the fresh roll's.
    """
    steps = [step for trace in traces for step in trace.executed_steps]
    if not steps:
        return None
    return estimate_from_steps(
        request.system, steps, seed=request.seed, lane=request.lane
    )


def _resolve_layout(name: str):
    from repro.sim.world import SEEN_LAYOUT, UNSEEN_LAYOUT

    return SEEN_LAYOUT if name == "seen" else UNSEEN_LAYOUT


class EvaluationService:
    """Accept episode requests, serve them from warm engines and the cache.

    ::

        service = EvaluationService(policies, workers=2)
        service.submit(EpisodeRequest("corki-5", ("lift the red block",), seed=3))
        [result] = service.drain()          # rolls; byte-identical to batch
        [again] = service.serve([result.request])   # cache hit, no rolling

    ``submit`` only queues; ``drain`` serves everything queued and returns
    results in submission order.  ``serve`` is submit-all + drain.  The
    service is single-threaded by design -- continuous batching happens
    *inside* a drain (slot refill / async chunk collection), which keeps the
    determinism story auditable; a network front-end would own the socket
    loop and feed batches here (``python -m repro.serving`` does exactly
    that over stdin/stdout JSONL).

    ``cache=None`` disables caching (the bench harness measures pure roll
    throughput that way).  ``slots`` bounds in-flight lanes for the
    in-process path; ``fleet_size`` plays that role inside pool workers.
    """

    def __init__(
        self,
        policies,
        workers: int = 1,
        slots: int = 32,
        fleet_size: int = 32,
        cache: ResultCache | None = None,
        use_cache: bool = True,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.policies = policies
        self.workers = workers
        self.slots = slots
        self.fleet_size = fleet_size
        # use_cache=False turns caching off entirely; otherwise an in-memory
        # unbounded cache is the default and ``cache`` overrides it.  (An
        # explicit identity check: an *empty* ResultCache is len()-falsy.)
        self.cache = (cache if cache is not None else ResultCache()) if use_cache else None
        self._queue: list[EpisodeRequest] = []
        self._runner = FleetRunner(
            baseline=policies.baseline, corki=policies.corki
        )
        self._pool = None
        if workers > 1:
            from repro.analysis.parallel import lease_pool

            # Lease (and thereby spawn + warm) the pool up front, so the
            # first request pays serving cost only, not interpreter start-up.
            self._pool = lease_pool(policies, workers)
        self.requests_served = 0

    # -- request intake --------------------------------------------------------

    def submit(self, request: EpisodeRequest) -> None:
        """Queue one request for the next :meth:`drain`."""
        self._queue.append(request)

    def serve(self, requests) -> list[ServedResult]:
        """Submit every request, drain, return results in request order."""
        for request in requests:
            self.submit(request)
        return self.drain()

    def drain(self) -> list[ServedResult]:
        """Serve everything queued; results come back in submission order.

        Duplicate requests within one drain (same cache key) roll once:
        later copies are filled from the first roll's result and flagged
        ``cached`` -- they were served without rolling, which is what the
        flag reports.  With caching off every request rolls (the bench
        relies on that to measure pure serving throughput).
        """
        requests, self._queue = self._queue, []
        if not requests:
            return []
        results: dict[int, ServedResult] = {}
        misses: list[tuple[int, EpisodeRequest, str | None]] = []
        primary_by_key: dict[str, int] = {}
        duplicates: list[tuple[int, EpisodeRequest, int]] = []
        for index, request in enumerate(requests):
            key = self._key(request)
            hit = None if key is None else self.cache.get(key)
            if hit is not None:
                results[index] = ServedResult(
                    request, hit, cached=True,
                    estimate=estimate_for_request(request, hit),
                )
            elif key is not None and key in primary_by_key:
                duplicates.append((index, request, primary_by_key[key]))
            else:
                if key is not None:
                    primary_by_key[key] = index
                misses.append((index, request, key))
        if misses:
            if self.workers <= 1:
                self._roll_continuous(misses, results)
            else:
                self._roll_pooled(misses, results)
        for index, request, primary in duplicates:
            traces = list(results[primary].traces)
            results[index] = ServedResult(
                request, traces, cached=True,
                estimate=estimate_for_request(request, traces),
            )
        self.requests_served += len(requests)
        return [results[index] for index in range(len(requests))]

    def stats(self) -> dict[str, int]:
        """Service counters plus the cache's (zeros when caching is off)."""
        cache_stats = self.cache.stats() if self.cache is not None else {}
        return {"requests_served": self.requests_served, "workers": self.workers, **cache_stats}

    # -- rolling ---------------------------------------------------------------

    def _key(self, request: EpisodeRequest) -> str | None:
        if self.cache is None:
            return None
        return self.cache.lane_key(
            self.policies,
            request.system,
            _resolve_layout(request.layout),
            request.seed,
            request.lane,
            request.instructions,
            max_frames=request.max_frames,
        )

    def _lane_for(self, request: EpisodeRequest):
        """Build the (environment, FleetLane) admission for one request.

        Identical construction to :func:`repro.analysis.evaluation.
        roll_lane_chunk` for the lane at ``request.lane``; that construction
        *is* the byte-identity guarantee.
        """
        from repro.analysis.evaluation import lane_generators
        from repro.sim.env import TRACKING_30HZ, TRACKING_100HZ, ManipulationEnv
        from repro.sim.tasks import task_by_instruction

        variation = None if request.system == "roboflamingo" else VARIATIONS[request.system]
        env_rng, feedback_rng = lane_generators(request.seed, request.lane)
        env = ManipulationEnv(_resolve_layout(request.layout), env_rng)
        lane = FleetLane(
            tasks=[task_by_instruction(text) for text in request.instructions],
            variation=variation,
            rng=feedback_rng,
            actuation=TRACKING_30HZ if variation is None else TRACKING_100HZ,
            max_frames=request.max_frames,
        )
        return env, lane

    def _finish(self, index: int, request: EpisodeRequest, key: str | None,
                traces: list[EpisodeTrace], results: dict[int, ServedResult]) -> None:
        if key is not None:
            self.cache.put(key, traces)
        results[index] = ServedResult(
            request, traces, cached=False,
            estimate=estimate_for_request(request, traces),
        )

    def _roll_continuous(self, misses, results) -> None:
        """In-process path: continuous admission into the warm runner."""
        pending: dict[int, tuple[int, EpisodeRequest, str | None]] = {}

        def admissions():
            for index, request, key in misses:
                env, lane = self._lane_for(request)
                pending[id(lane)] = (index, request, key)
                yield env, lane

        def on_complete(lane: FleetLane, traces: list[EpisodeTrace]) -> None:
            index, request, key = pending.pop(id(lane))
            self._finish(index, request, key, traces, results)

        self._runner.run_continuous(admissions(), self.slots, on_complete)

    def _roll_pooled(self, misses, results) -> None:
        """Multi-process path: every chunk in flight on the leased pool.

        Misses group by everything a :class:`~repro.analysis.parallel.
        LaneChunk` fixes per chunk (system, layout, seed, frame budget);
        each group shards across the workers by explicit lane indices, and
        *all* chunks from *all* groups dispatch asynchronously before any
        result is collected -- the pool's queue keeps every worker busy for
        the whole drain.
        """
        from repro.analysis.parallel import LaneChunk, shard_lanes

        groups: dict[tuple, list[tuple[int, EpisodeRequest, str | None]]] = {}
        for miss in misses:
            _, request, _ = miss
            group = (request.system, request.layout, request.seed, request.max_frames)
            groups.setdefault(group, []).append(miss)

        in_flight = []
        for (system, layout_name, seed, max_frames), members in groups.items():
            for start, stop in shard_lanes(len(members), self.workers):
                shard = members[start:stop]
                chunk = LaneChunk(
                    system=system,
                    layout=_resolve_layout(layout_name),
                    seed=seed,
                    lane_start=0,
                    instructions=tuple(request.instructions for _, request, _ in shard),
                    fleet_size=self.fleet_size,
                    max_frames=max_frames,
                    lane_indices=tuple(request.lane for _, request, _ in shard),
                )
                in_flight.append((shard, self._pool.submit_chunk(chunk)))
        for shard, handle in in_flight:
            for (index, request, key), traces in zip(shard, handle.get()):
                self._finish(index, request, key, traces, results)
