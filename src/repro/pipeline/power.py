"""End-to-end robot power accounting (paper Sec. 8, "Discussion").

The paper notes its energy savings cover only the computing system: "the
computing system inside the robot accounts for 40.6% of the total system
power consumption (excluding server power)".  This module models the robot's
full power budget -- motors plus onboard computing -- so the discussion-level
claim can be reproduced: large computing-side energy savings shrink once
motor power is included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants

__all__ = ["RobotPowerModel", "system_energy_per_frame"]

# The onboard computing share of robot power reported in the paper's
# discussion (motors and electronics make up the rest).
PAPER_COMPUTE_POWER_SHARE = 0.406


@dataclass(frozen=True)
class RobotPowerModel:
    """Steady-state power draw of the robot body.

    Defaults reproduce the paper's 40.6% computing share when the onboard
    computing is the baseline CPU: the i7-class onboard computer plus Wi-Fi
    module draw ~40 W, so motors and electronics draw the remaining ~58.5 W.
    """

    motor_power_w: float = 58.5
    compute_power_w: float = constants.CPU_POWER_W + constants.WIFI_POWER_W

    @property
    def total_power_w(self) -> float:
        return self.motor_power_w + self.compute_power_w

    @property
    def compute_share(self) -> float:
        """Fraction of robot power spent on computing (paper: 40.6%)."""
        return self.compute_power_w / self.total_power_w

    def with_accelerator(self) -> "RobotPowerModel":
        """The Corki configuration: FPGA replaces the CPU control path."""
        return RobotPowerModel(
            motor_power_w=self.motor_power_w,
            compute_power_w=constants.FPGA_POWER_W + constants.WIFI_POWER_W,
        )


def system_energy_per_frame(
    computing_energy_j: float,
    frame_wall_time_ms: float,
    power: RobotPowerModel | None = None,
) -> float:
    """Total robot energy for one frame: computing + motor draw over the frame.

    ``computing_energy_j`` comes from the pipeline trace; motors draw power
    for the frame's wall-clock duration regardless of where computation
    happens, which is why end-to-end savings are smaller than computing-only
    savings (the paper's discussion point).
    """
    power = power or RobotPowerModel()
    motor_energy = power.motor_power_w * frame_wall_time_ms / 1000.0
    return computing_energy_j + motor_energy
