"""System-level execution pipeline: latency and energy composition."""

from repro.pipeline.estimate import (
    DEFAULT_ESTIMATE_SEED,
    FleetEstimator,
    PipelineEstimate,
    estimate_from_steps,
    estimate_lanes,
    stages_for_system,
)
from repro.pipeline.executor import (
    PipelineLane,
    executed_steps_from_trace,
    lane_jitter_rng,
    simulate_baseline,
    simulate_corki,
    simulate_lanes,
    system_jitter_rng,
)
from repro.pipeline.power import RobotPowerModel, system_energy_per_frame
from repro.pipeline.stages import (
    CommunicationStage,
    ControlStage,
    InferenceStage,
    SystemStages,
)
from repro.pipeline.trace import FrameRecord, PipelineTrace, TraceArrays, TraceView

__all__ = [
    "CommunicationStage",
    "ControlStage",
    "DEFAULT_ESTIMATE_SEED",
    "FleetEstimator",
    "FrameRecord",
    "InferenceStage",
    "PipelineEstimate",
    "PipelineLane",
    "PipelineTrace",
    "RobotPowerModel",
    "SystemStages",
    "TraceArrays",
    "TraceView",
    "estimate_from_steps",
    "estimate_lanes",
    "executed_steps_from_trace",
    "lane_jitter_rng",
    "simulate_baseline",
    "simulate_corki",
    "simulate_lanes",
    "stages_for_system",
    "system_energy_per_frame",
    "system_jitter_rng",
]
