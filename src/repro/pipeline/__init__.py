"""System-level execution pipeline: latency and energy composition."""

from repro.pipeline.executor import (
    executed_steps_from_trace,
    simulate_baseline,
    simulate_corki,
)
from repro.pipeline.power import RobotPowerModel, system_energy_per_frame
from repro.pipeline.stages import (
    CommunicationStage,
    ControlStage,
    InferenceStage,
    SystemStages,
)
from repro.pipeline.trace import FrameRecord, PipelineTrace

__all__ = [
    "CommunicationStage",
    "ControlStage",
    "FrameRecord",
    "InferenceStage",
    "PipelineTrace",
    "RobotPowerModel",
    "SystemStages",
    "executed_steps_from_trace",
    "simulate_baseline",
    "simulate_corki",
    "system_energy_per_frame",
]
