"""Per-frame traces and their aggregate statistics.

The executor produces one :class:`FrameRecord` per camera frame; this module
aggregates them into the quantities the paper's figures report: mean frame
latency and energy (Fig. 13), per-stage breakdowns (Fig. 2), frame-by-frame
series and sorted long-tail curves (Fig. 14), and speedups between systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FrameRecord", "PipelineTrace"]


@dataclass(frozen=True)
class FrameRecord:
    """Latency/energy contribution of one camera frame, split by stage."""

    inference_ms: float
    control_ms: float
    communication_ms: float
    inference_j: float
    control_j: float
    communication_j: float

    @property
    def latency_ms(self) -> float:
        return self.inference_ms + self.control_ms + self.communication_ms

    @property
    def energy_j(self) -> float:
        return self.inference_j + self.control_j + self.communication_j


@dataclass
class PipelineTrace:
    """A sequence of frame records plus derived statistics."""

    name: str
    frames: list[FrameRecord]

    def latencies_ms(self) -> np.ndarray:
        return np.array([frame.latency_ms for frame in self.frames])

    def energies_j(self) -> np.ndarray:
        return np.array([frame.energy_j for frame in self.frames])

    @property
    def mean_latency_ms(self) -> float:
        return float(self.latencies_ms().mean())

    @property
    def mean_energy_j(self) -> float:
        return float(self.energies_j().mean())

    @property
    def frequency_hz(self) -> float:
        """Average frame rate the system sustains."""
        return 1000.0 / self.mean_latency_ms

    def latency_breakdown(self) -> dict[str, float]:
        """Mean per-stage latency shares (sums to 1.0)."""
        inference = float(np.mean([f.inference_ms for f in self.frames]))
        control = float(np.mean([f.control_ms for f in self.frames]))
        communication = float(np.mean([f.communication_ms for f in self.frames]))
        total = inference + control + communication
        return {
            "inference": inference / total,
            "control": control / total,
            "communication": communication / total,
        }

    def energy_breakdown(self) -> dict[str, float]:
        """Mean per-stage energy shares (sums to 1.0)."""
        inference = float(np.mean([f.inference_j for f in self.frames]))
        control = float(np.mean([f.control_j for f in self.frames]))
        communication = float(np.mean([f.communication_j for f in self.frames]))
        total = inference + control + communication
        return {
            "inference": inference / total,
            "control": control / total,
            "communication": communication / total,
        }

    def sorted_latencies_ms(self) -> np.ndarray:
        """Descending latency curve, the paper's Fig. 14c long-tail view."""
        return np.sort(self.latencies_ms())[::-1]

    @property
    def latency_variation(self) -> float:
        """Coefficient of variation of frame latency (long-tail severity)."""
        latencies = self.latencies_ms()
        return float(latencies.std() / latencies.mean())

    def speedup_vs(self, other: "PipelineTrace") -> float:
        """How much faster this system's mean frame latency is than ``other``'s."""
        return other.mean_latency_ms / self.mean_latency_ms

    def energy_reduction_vs(self, other: "PipelineTrace") -> float:
        """Energy ratio ``other / self`` (>1 means this system saves energy)."""
        return other.mean_energy_j / self.mean_energy_j
