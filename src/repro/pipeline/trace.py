"""Per-frame traces and their aggregate statistics.

The executor produces one :class:`FrameRecord` per camera frame; this module
aggregates them into the quantities the paper's figures report: mean frame
latency and energy (Fig. 13), per-stage breakdowns (Fig. 2), frame-by-frame
series and sorted long-tail curves (Fig. 14), and speedups between systems.

Two storage layouts share one statistics implementation
(:class:`TraceStatistics`):

* :class:`PipelineTrace` -- the scalar layout, a list of
  :class:`FrameRecord` objects, produced by the frame-by-frame executor
  functions and consumed by everything written before the fleet path.
* :class:`TraceArrays` -- the lane-batched layout, six stacked ``(lane,
  frame)`` arrays with per-lane frame counts, produced by
  :func:`repro.pipeline.executor.simulate_lanes`.  A :class:`TraceView` is
  one lane's window into the stacked store -- the same idiom as
  ``SceneArrays`` / ``SceneView`` in :mod:`repro.sim.objects` -- and
  computes every statistic from the stacked rows directly, without
  materialising records.

Because both layouts feed the *same* reductions over the *same* float64
values, a view's statistics are bitwise identical to the statistics of the
scalar trace built from the same frames -- the equivalence contract
``tests/test_batched_equivalence.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FrameRecord", "PipelineTrace", "TraceArrays", "TraceView"]

_STAGE_FIELDS = (
    "inference_ms",
    "control_ms",
    "communication_ms",
    "inference_j",
    "control_j",
    "communication_j",
)


@dataclass(frozen=True)
class FrameRecord:
    """Latency/energy contribution of one camera frame, split by stage."""

    inference_ms: float
    control_ms: float
    communication_ms: float
    inference_j: float
    control_j: float
    communication_j: float

    @property
    def latency_ms(self) -> float:
        return self.inference_ms + self.control_ms + self.communication_ms

    @property
    def energy_j(self) -> float:
        return self.inference_j + self.control_j + self.communication_j


class TraceStatistics:
    """Derived statistics over per-frame stage arrays.

    Subclasses provide :meth:`stage_arrays` returning the six per-frame
    float64 arrays in :data:`_STAGE_FIELDS` order; every reduction here runs
    on those arrays, so any two layouts holding the same values report the
    same statistics bit for bit.
    """

    def stage_arrays(self) -> tuple[np.ndarray, ...]:  # pragma: no cover - abstract
        raise NotImplementedError

    def latencies_ms(self) -> np.ndarray:
        inference, control, communication = self.stage_arrays()[:3]
        return inference + control + communication

    def energies_j(self) -> np.ndarray:
        inference, control, communication = self.stage_arrays()[3:]
        return inference + control + communication

    @property
    def mean_latency_ms(self) -> float:
        return float(self.latencies_ms().mean())

    @property
    def mean_energy_j(self) -> float:
        return float(self.energies_j().mean())

    @property
    def frequency_hz(self) -> float:
        """Average frame rate the system sustains."""
        return 1000.0 / self.mean_latency_ms

    def _breakdown(self, offset: int) -> dict[str, float]:
        arrays = self.stage_arrays()[offset : offset + 3]
        inference, control, communication = (float(np.mean(a)) for a in arrays)
        total = inference + control + communication
        return {
            "inference": inference / total,
            "control": control / total,
            "communication": communication / total,
        }

    def latency_breakdown(self) -> dict[str, float]:
        """Mean per-stage latency shares (sums to 1.0)."""
        return self._breakdown(0)

    def energy_breakdown(self) -> dict[str, float]:
        """Mean per-stage energy shares (sums to 1.0)."""
        return self._breakdown(3)

    def sorted_latencies_ms(self) -> np.ndarray:
        """Descending latency curve, the paper's Fig. 14c long-tail view."""
        return np.sort(self.latencies_ms())[::-1]

    @property
    def latency_variation(self) -> float:
        """Coefficient of variation of frame latency (long-tail severity)."""
        latencies = self.latencies_ms()
        return float(latencies.std() / latencies.mean())

    def speedup_vs(self, other: "TraceStatistics") -> float:
        """How much faster this system's mean frame latency is than ``other``'s."""
        return other.mean_latency_ms / self.mean_latency_ms

    def energy_reduction_vs(self, other: "TraceStatistics") -> float:
        """Energy ratio ``other / self`` (>1 means this system saves energy)."""
        return other.mean_energy_j / self.mean_energy_j


@dataclass
class PipelineTrace(TraceStatistics):
    """A sequence of frame records plus derived statistics."""

    name: str
    frames: list[FrameRecord]

    def stage_arrays(self) -> tuple[np.ndarray, ...]:
        return tuple(
            np.array([getattr(frame, field) for frame in self.frames])
            for field in _STAGE_FIELDS
        )


class TraceArrays:
    """Stacked per-frame stage values for a batch of pipeline lanes.

    ``counts[lane]`` frames of lane ``lane`` live in row ``lane`` of each
    stacked ``(lanes, max_frames)`` array; cells past a lane's count are
    zero padding that no view ever reads.  Lanes are addressed by index
    (:meth:`view`) or by name (:meth:`by_name`).
    """

    def __init__(self, names: list[str], counts: np.ndarray):
        self.names = list(names)
        self.counts = np.asarray(counts, dtype=int)
        if len(self.names) != len(self.counts):
            raise ValueError("one frame count per lane name is required")
        if len(self.counts) and self.counts.min() < 1:
            raise ValueError("every lane needs at least one frame")
        width = int(self.counts.max()) if len(self.counts) else 0
        for field in _STAGE_FIELDS:
            setattr(self, field, np.zeros((len(self.names), width)))

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self):
        return (self.view(lane) for lane in range(len(self)))

    def view(self, lane: int) -> "TraceView":
        """Lane ``lane``'s window into the stacked store."""
        return TraceView(self, lane)

    def by_name(self, name: str) -> "TraceView":
        """The first lane named ``name``."""
        return self.view(self.names.index(name))

    def stage_rows(self, lane: int) -> tuple[np.ndarray, ...]:
        """The six per-frame arrays of one lane (views into stacked storage)."""
        count = self.counts[lane]
        return tuple(
            getattr(self, field)[lane, :count] for field in _STAGE_FIELDS
        )


class TraceView(TraceStatistics):
    """One lane of a :class:`TraceArrays`, statistics included.

    Reads go straight to the stacked arrays; :meth:`records` materialises
    scalar :class:`FrameRecord` objects (and :meth:`to_trace` a full
    :class:`PipelineTrace`) for callers that need the list layout.
    """

    __slots__ = ("_arrays", "_lane")

    def __init__(self, arrays: TraceArrays, lane: int):
        self._arrays = arrays
        self._lane = lane

    @property
    def name(self) -> str:
        return self._arrays.names[self._lane]

    @property
    def frame_count(self) -> int:
        return int(self._arrays.counts[self._lane])

    def stage_arrays(self) -> tuple[np.ndarray, ...]:
        return self._arrays.stage_rows(self._lane)

    def records(self) -> list[FrameRecord]:
        """Scalar frame records of this lane, in frame order."""
        return [
            FrameRecord(*(float(column[k]) for column in self.stage_arrays()))
            for k in range(self.frame_count)
        ]

    def to_trace(self) -> PipelineTrace:
        return PipelineTrace(self.name, self.records())
