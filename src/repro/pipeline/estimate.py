"""Per-lane latency/energy estimates on the fleet path.

The figure scripts evaluate the paper's latency/energy model
(:func:`repro.pipeline.executor.simulate_baseline` /
:func:`~repro.pipeline.executor.simulate_corki`) for a handful of hand-built
frame schedules.  This module attaches the same model to *measured*
executions: given the per-frame structure an episode actually produced
(frame count for the baseline, executed-trajectory lengths for Corki), it
evaluates the batched :func:`~repro.pipeline.executor.simulate_lanes`
kernel and condenses each lane into a :class:`PipelineEstimate` -- the
``estimate`` block that fleet evaluations and serving responses report.

Determinism contract: jitter for lane ``i`` always comes from
:func:`~repro.pipeline.executor.lane_jitter_rng` keyed by ``(seed, i)``,
so an estimate is a pure function of ``(system, structure, seed, lane)``
-- never of fleet size or of which other lanes were evaluated.  That is
what makes a cache hit's estimate bitwise identical to the fresh roll it
replaces (``tests/test_serving.py``) and the batched figure paths byte
identical to their scalar references (``tests/test_batched_equivalence.py``).

:class:`FleetEstimator` is the :class:`repro.core.fleet.FleetRunner` hook:
each fleet tick feeds it the lanes that advanced one camera frame, it
accumulates every lane's frame structure (trajectory boundaries included),
and :meth:`FleetEstimator.estimates` costs all lanes in one
``simulate_lanes`` call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.executor import PipelineLane, lane_jitter_rng, simulate_lanes
from repro.pipeline.stages import SystemStages
from repro.pipeline.trace import TraceView

__all__ = [
    "DEFAULT_ESTIMATE_SEED",
    "FleetEstimator",
    "PipelineEstimate",
    "estimate_from_steps",
    "estimate_lanes",
    "stages_for_system",
]

DEFAULT_ESTIMATE_SEED = 17
"""Jitter seed shared by every estimate producer (evaluation and serving)."""


def stages_for_system(system: str) -> SystemStages:
    """The stage model a system name implies.

    ``corki-sw`` is the paper's software ablation -- trajectory-level
    execution with the controller left on the CPU (``control="cpu"``,
    matching ``VARIATIONS["corki-sw"]``); every other ``corki-*`` uses the
    FPGA controller; ``roboflamingo`` is the frame-by-frame baseline.
    """
    if system == "roboflamingo":
        return SystemStages.baseline()
    if system == "corki-sw":
        return SystemStages.corki(control="cpu")
    if system.startswith("corki"):
        return SystemStages.corki()
    raise ValueError(f"unknown system {system!r}")


@dataclass(frozen=True)
class PipelineEstimate:
    """Latency/energy summary of one lane's execution under a system model."""

    system: str
    frames: int
    mean_latency_ms: float
    mean_energy_j: float

    @property
    def frequency_hz(self) -> float:
        return 1000.0 / self.mean_latency_ms

    @property
    def total_energy_j(self) -> float:
        return self.frames * self.mean_energy_j

    def to_json(self) -> dict:
        """JSON-ready mapping (the serving response's ``estimate`` block)."""
        return {
            "system": self.system,
            "frames": self.frames,
            "mean_latency_ms": self.mean_latency_ms,
            "mean_energy_j": self.mean_energy_j,
        }

    @classmethod
    def from_view(cls, view: TraceView) -> "PipelineEstimate":
        return cls(
            system=view.name,
            frames=view.frame_count,
            mean_latency_ms=view.mean_latency_ms,
            mean_energy_j=view.mean_energy_j,
        )


def _lane_for(
    system: str,
    executed_steps: list[int],
    seed: int,
    lane: int,
) -> PipelineLane:
    """One lane specification from a measured execution structure."""
    stages = stages_for_system(system)
    rng = lane_jitter_rng(seed, lane)
    if system == "roboflamingo":
        # The baseline executes one step per frame; its structure is just
        # the frame count.
        return PipelineLane(system, frames=sum(executed_steps), rng=rng, stages=stages)
    return PipelineLane(
        system, executed_steps=tuple(executed_steps), rng=rng, stages=stages
    )


def estimate_lanes(
    system: str,
    lane_steps: list[list[int]],
    seed: int = DEFAULT_ESTIMATE_SEED,
    lane_indices: list[int] | None = None,
) -> list[PipelineEstimate]:
    """Cost many lanes' executions in one batched kernel call.

    ``lane_steps[k]`` is lane ``k``'s executed-steps record
    (``EpisodeTrace.executed_steps``, concatenated across an episode chain);
    ``lane_indices`` pins each lane's jitter-stream key when the lanes are
    a slice of a larger fleet (defaults to ``0..N-1``).
    """
    if lane_indices is None:
        lane_indices = list(range(len(lane_steps)))
    if len(lane_indices) != len(lane_steps):
        raise ValueError("one lane index per steps record is required")
    lanes = [
        _lane_for(system, steps, seed, index)
        for steps, index in zip(lane_steps, lane_indices)
    ]
    arrays = simulate_lanes(lanes)
    return [PipelineEstimate.from_view(view) for view in arrays]


def estimate_from_steps(
    system: str,
    executed_steps: list[int],
    seed: int = DEFAULT_ESTIMATE_SEED,
    lane: int = 0,
) -> PipelineEstimate:
    """Estimate one lane -- the N=1 case of :func:`estimate_lanes`."""
    return estimate_lanes(system, [list(executed_steps)], seed, [lane])[0]


class _LaneLog:
    """Frame structure one fleet lane accumulated so far."""

    __slots__ = ("system", "steps", "open_steps")

    def __init__(self, system: str):
        self.system = system
        self.steps: list[int] = []
        self.open_steps = 0

    def advance(self, closed: bool) -> None:
        self.open_steps += 1
        if closed:
            self.steps.append(self.open_steps)
            self.open_steps = 0


class FleetEstimator:
    """Accumulate per-lane latency/energy structure as a fleet ticks.

    Pass one to :class:`repro.core.fleet.FleetRunner`; after every tick the
    runner hands over the lanes that advanced a camera frame.  Baseline
    lanes close a "trajectory" every frame; Corki lanes close when their
    executed trajectory ends (including mid-trajectory success and episode
    chaining).  :meth:`estimates` then prices all lanes through one
    :func:`~repro.pipeline.executor.simulate_lanes` call, keyed per lane
    index so the numbers are fleet-size invariant.
    """

    def __init__(self, seed: int = DEFAULT_ESTIMATE_SEED):
        self.seed = seed
        self._logs: dict[int, _LaneLog] = {}

    @staticmethod
    def _system_of(state) -> str:
        variation = state.lane.variation
        return "roboflamingo" if variation is None else variation.name

    def observe(self, states: list) -> None:
        """Record one executed camera frame for every lane in ``states``."""
        for state in states:
            log = self._logs.get(state.index)
            if log is None:
                log = self._logs[state.index] = _LaneLog(self._system_of(state))
            if state.lane.variation is None:
                log.advance(closed=True)
            else:
                log.advance(closed=state.trajectory is None or state.done)

    def estimates(self) -> dict[int, PipelineEstimate]:
        """Per-lane-index estimates, all lanes costed in one batched call.

        Lanes that never closed a trajectory (or never ticked) are absent.
        """
        items = [
            (index, log)
            for index, log in sorted(self._logs.items())
            if log.steps
        ]
        if not items:
            return {}
        estimates: dict[int, PipelineEstimate] = {}
        by_system: dict[str, list[tuple[int, _LaneLog]]] = {}
        for index, log in items:
            by_system.setdefault(log.system, []).append((index, log))
        for system, group in by_system.items():
            indices = [index for index, _ in group]
            results = estimate_lanes(
                system, [log.steps for _, log in group], self.seed, indices
            )
            estimates.update(zip(indices, results))
        return dict(sorted(estimates.items()))
