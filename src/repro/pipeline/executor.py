"""Discrete-event composition of the two execution pipelines (paper Fig. 1).

**Baseline** (Fig. 1a): every frame serialises communication, inference and
control, so per-frame latency is the sum of all three stages.

**Corki** (Fig. 1b): inference runs once per executed trajectory; while the
robot executes, newly captured frames stream back to the server *under* the
execution time, so communication contributes energy but no latency.  The
frame that ends a trajectory carries the next inference's latency; every
frame carries one control computation on the configured substrate.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.pipeline.stages import SystemStages
from repro.pipeline.trace import FrameRecord, PipelineTrace

__all__ = ["simulate_baseline", "simulate_corki", "executed_steps_from_trace"]


def _jitter(rng: np.random.Generator | None, value: float) -> float:
    if rng is None:
        return value
    return value * float(1.0 + constants.STAGE_JITTER * rng.standard_normal())


def simulate_baseline(
    frames: int,
    stages: SystemStages | None = None,
    rng: np.random.Generator | None = None,
    name: str = "roboflamingo",
) -> PipelineTrace:
    """Frame-by-frame sequential pipeline: every stage on every frame."""
    stages = stages or SystemStages.baseline()
    records = []
    for _ in range(frames):
        inference_ms = _jitter(rng, stages.inference.latency_ms)
        control_ms = _jitter(rng, stages.control.latency_ms)
        communication_ms = _jitter(rng, stages.communication.latency_ms)
        records.append(
            FrameRecord(
                inference_ms=inference_ms,
                control_ms=control_ms,
                communication_ms=communication_ms,
                inference_j=inference_ms / 1000.0 * stages.inference.power_w,
                control_j=control_ms / 1000.0 * stages.control.power_w,
                communication_j=communication_ms / 1000.0 * stages.communication.power_w,
            )
        )
    return PipelineTrace(name, records)


def simulate_corki(
    executed_steps: list[int],
    stages: SystemStages | None = None,
    rng: np.random.Generator | None = None,
    name: str = "corki",
) -> PipelineTrace:
    """Trajectory-level pipeline with communication hidden under execution.

    ``executed_steps`` lists, per inference, how many trajectory steps were
    executed before re-planning -- exactly the semantics of
    :attr:`repro.core.runner.EpisodeTrace.executed_steps` (one entry per
    inference, always ``[1, 1, ...]`` for the baseline), whether the trace
    came from a single-episode runner or a
    :class:`repro.core.fleet.FleetRunner` lane.  The first frame of each
    trajectory pays the inference latency; communication of the frames
    captured during execution hides under the robot's physical execution
    time (``steps`` x 33.3 ms) and only the remainder, if any, stays exposed
    on the boundary frame.  Hidden communication still costs energy on the
    frame that captured it.
    """
    stages = stages or SystemStages.corki()
    records = []
    for steps in executed_steps:
        if steps < 1:
            raise ValueError("every trajectory must execute at least one step")
        execution_window_ms = steps * constants.FRAME_DT_MS
        exposed_comm_ms = max(0.0, stages.communication.latency_ms - execution_window_ms)
        for step in range(steps):
            inference_ms = _jitter(rng, stages.inference.latency_ms) if step == 0 else 0.0
            control_ms = _jitter(rng, stages.control.latency_ms)
            hidden_comm_ms = _jitter(rng, stages.communication.latency_ms)
            records.append(
                FrameRecord(
                    inference_ms=inference_ms,
                    control_ms=control_ms,
                    communication_ms=exposed_comm_ms if step == 0 else 0.0,
                    inference_j=inference_ms / 1000.0 * stages.inference.power_w,
                    control_j=control_ms / 1000.0 * stages.control.power_w,
                    communication_j=hidden_comm_ms / 1000.0 * stages.communication.power_w,
                )
            )
    return PipelineTrace(name, records)


def executed_steps_from_trace(trace) -> list[int]:
    """Extract the executed-steps sequence from an accuracy-run episode trace.

    Accepts any object with an ``executed_steps`` attribute -- in practice a
    :class:`repro.core.runner.EpisodeTrace`; kept duck-typed so the pipeline
    package does not import the core package.
    """
    steps = list(trace.executed_steps)
    if not steps:
        raise ValueError("episode trace carries no executed trajectories")
    return steps
