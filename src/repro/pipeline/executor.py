"""Discrete-event composition of the two execution pipelines (paper Fig. 1).

**Baseline** (Fig. 1a): every frame serialises communication, inference and
control, so per-frame latency is the sum of all three stages.

**Corki** (Fig. 1b): inference runs once per executed trajectory; while the
robot executes, newly captured frames stream back to the server *under* the
execution time, so communication contributes energy but no latency.  The
frame that ends a trajectory carries the next inference's latency; every
frame carries one control computation on the configured substrate.

Two execution granularities produce the same frame records:

* :func:`simulate_baseline` / :func:`simulate_corki` -- the scalar
  references, one Python-level loop iteration per frame; and
* :func:`simulate_lanes` -- the lane-batched kernel, which evaluates a
  whole batch of :class:`PipelineLane` specifications as ``(lane, frame)``
  array arithmetic into a stacked :class:`~repro.pipeline.trace.TraceArrays`.

The batched kernel is **bitwise equal** to the scalar references per lane:
each lane's jitter values come from one vectorised draw on that lane's own
generator (the same PCG64 stream produces identical values chunked or one
at a time, and draws happen in the scalar functions' stage order), and the
stage arithmetic applies the identical float64 operations element-wise.
Jitter generators are keyed per lane (:func:`lane_jitter_rng`) or per
system name (:func:`system_jitter_rng`), never threaded sequentially
through a batch, so a lane's bytes are invariant to which other lanes are
simulated beside it -- the same fleet-size-invariance contract
``step_lanes`` established for physics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.pipeline.stages import SystemStages
from repro.pipeline.trace import FrameRecord, PipelineTrace, TraceArrays

__all__ = [
    "PipelineLane",
    "lane_jitter_rng",
    "system_jitter_rng",
    "simulate_baseline",
    "simulate_corki",
    "simulate_lanes",
    "executed_steps_from_trace",
]


def _jitter(rng: np.random.Generator | None, value: float) -> float:
    if rng is None:
        return value
    return value * float(1.0 + constants.STAGE_JITTER * rng.standard_normal())


def simulate_baseline(
    frames: int,
    stages: SystemStages | None = None,
    rng: np.random.Generator | None = None,
    name: str = "roboflamingo",
) -> PipelineTrace:
    """Frame-by-frame sequential pipeline: every stage on every frame."""
    stages = stages or SystemStages.baseline()
    records = []
    for _ in range(frames):
        inference_ms = _jitter(rng, stages.inference.latency_ms)
        control_ms = _jitter(rng, stages.control.latency_ms)
        communication_ms = _jitter(rng, stages.communication.latency_ms)
        records.append(
            FrameRecord(
                inference_ms=inference_ms,
                control_ms=control_ms,
                communication_ms=communication_ms,
                inference_j=inference_ms / 1000.0 * stages.inference.power_w,
                control_j=control_ms / 1000.0 * stages.control.power_w,
                communication_j=communication_ms / 1000.0 * stages.communication.power_w,
            )
        )
    return PipelineTrace(name, records)


def simulate_corki(
    executed_steps: list[int],
    stages: SystemStages | None = None,
    rng: np.random.Generator | None = None,
    name: str = "corki",
) -> PipelineTrace:
    """Trajectory-level pipeline with communication hidden under execution.

    ``executed_steps`` lists, per inference, how many trajectory steps were
    executed before re-planning -- exactly the semantics of
    :attr:`repro.core.runner.EpisodeTrace.executed_steps` (one entry per
    inference, always ``[1, 1, ...]`` for the baseline), whether the trace
    came from a single-episode runner or a
    :class:`repro.core.fleet.FleetRunner` lane.  The first frame of each
    trajectory pays the inference latency; communication of the frames
    captured during execution hides under the robot's physical execution
    time (``steps`` x 33.3 ms) and only the remainder, if any, stays exposed
    on the boundary frame.  Hidden communication still costs energy on the
    frame that captured it.
    """
    stages = stages or SystemStages.corki()
    records = []
    for steps in executed_steps:
        if steps < 1:
            raise ValueError("every trajectory must execute at least one step")
        execution_window_ms = steps * constants.FRAME_DT_MS
        exposed_comm_ms = max(0.0, stages.communication.latency_ms - execution_window_ms)
        for step in range(steps):
            inference_ms = _jitter(rng, stages.inference.latency_ms) if step == 0 else 0.0
            control_ms = _jitter(rng, stages.control.latency_ms)
            hidden_comm_ms = _jitter(rng, stages.communication.latency_ms)
            records.append(
                FrameRecord(
                    inference_ms=inference_ms,
                    control_ms=control_ms,
                    communication_ms=exposed_comm_ms if step == 0 else 0.0,
                    inference_j=inference_ms / 1000.0 * stages.inference.power_w,
                    control_j=control_ms / 1000.0 * stages.control.power_w,
                    communication_j=hidden_comm_ms / 1000.0 * stages.communication.power_w,
                )
            )
    return PipelineTrace(name, records)


def lane_jitter_rng(seed: int, lane_index: int) -> np.random.Generator:
    """The stage-jitter generator of one pipeline lane.

    Keyed ``[seed, 3, lane]`` -- stream id 3 keeps lane jitter disjoint from
    the env (``[seed, 1, lane]``) and feedback (``[seed, 2, lane]``) streams
    of :func:`repro.analysis.evaluation.lane_generators`, and the per-lane
    keying makes a lane's jitter a pure function of ``(seed, lane)``: never
    of fleet size, simulation order or which systems share the batch.
    """
    return np.random.default_rng([seed, 3, lane_index])


def system_jitter_rng(seed: int, name: str) -> np.random.Generator:
    """The stage-jitter generator of one named system trace.

    Keyed ``[seed, 4, *name-bytes]`` (stream id 4 keeps name-keyed streams
    disjoint from the integer-keyed lane streams), so every system of a
    figure draws from its own stream and adding or removing a system leaves
    every other system's numbers untouched.
    """
    return np.random.default_rng([seed, 4, *name.encode()])


@dataclass(frozen=True)
class PipelineLane:
    """Specification of one lane of :func:`simulate_lanes`.

    Exactly one of ``frames`` (a baseline lane: every stage on every frame)
    and ``executed_steps`` (a Corki lane: the per-inference execution
    lengths) must be given.  ``rng`` is the lane's private jitter generator
    (``None`` disables jitter); ``stages`` defaults to the execution model's
    standard configuration.
    """

    name: str
    frames: int | None = None
    executed_steps: tuple[int, ...] | None = None
    stages: SystemStages | None = None
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if (self.frames is None) == (self.executed_steps is None):
            raise ValueError("a lane needs exactly one of frames / executed_steps")
        if self.frames is not None and self.frames < 1:
            raise ValueError("a baseline lane needs at least one frame")
        if self.executed_steps is not None:
            if not self.executed_steps:
                raise ValueError("a Corki lane needs at least one trajectory")
            if min(self.executed_steps) < 1:
                raise ValueError("every trajectory must execute at least one step")

    @property
    def frame_count(self) -> int:
        if self.frames is not None:
            return self.frames
        assert self.executed_steps is not None
        return int(sum(self.executed_steps))

    def resolved_stages(self) -> SystemStages:
        if self.stages is not None:
            return self.stages
        return SystemStages.baseline() if self.frames is not None else SystemStages.corki()


def _jitter_factors(
    rng: np.random.Generator | None, draws: int
) -> np.ndarray:
    """Per-draw multiplicative jitter factors, in the scalar draw order.

    One chunked ``standard_normal`` call consumes the generator's stream
    exactly as ``draws`` sequential scalar draws would, so factor ``k`` here
    is bitwise equal to the ``k``-th ``_jitter`` factor of the scalar
    executors.  ``rng=None`` yields unit factors (no jitter), matching the
    scalar no-rng path bit for bit (``value * 1.0 == value``).
    """
    if rng is None:
        return np.ones(draws)
    return 1.0 + constants.STAGE_JITTER * rng.standard_normal(draws)


def _fill_baseline_lane(out: TraceArrays, lane_index: int, lane: PipelineLane) -> None:
    stages = lane.resolved_stages()
    n = lane.frame_count
    # Scalar draw order per frame: inference, control, communication --
    # row-major (frame, stage) factors reproduce it exactly.
    factors = _jitter_factors(lane.rng, 3 * n).reshape(n, 3)
    inference = stages.inference.latency_ms * factors[:, 0]
    control = stages.control.latency_ms * factors[:, 1]
    communication = stages.communication.latency_ms * factors[:, 2]
    out.inference_ms[lane_index, :n] = inference
    out.control_ms[lane_index, :n] = control
    out.communication_ms[lane_index, :n] = communication
    out.inference_j[lane_index, :n] = inference / 1000.0 * stages.inference.power_w
    out.control_j[lane_index, :n] = control / 1000.0 * stages.control.power_w
    out.communication_j[lane_index, :n] = (
        communication / 1000.0 * stages.communication.power_w
    )


def _fill_corki_lane(out: TraceArrays, lane_index: int, lane: PipelineLane) -> None:
    stages = lane.resolved_stages()
    steps = np.asarray(lane.executed_steps, dtype=int)
    n = int(steps.sum())
    starts = np.concatenate([[0], np.cumsum(steps)[:-1]])
    boundary = np.zeros(n, dtype=bool)
    boundary[starts] = True

    # Scalar draw order: boundary frames consume (inference, control,
    # hidden-communication), interior frames (control, hidden-communication).
    # One flat draw scattered by per-frame offsets reproduces that order.
    per_frame = np.where(boundary, 3, 2)
    offsets = np.concatenate([[0], np.cumsum(per_frame)[:-1]])
    factors = _jitter_factors(lane.rng, int(per_frame.sum()))
    shift = boundary.astype(int)
    control = stages.control.latency_ms * factors[offsets + shift]
    hidden_comm = stages.communication.latency_ms * factors[offsets + 1 + shift]
    inference = np.zeros(n)
    inference[starts] = stages.inference.latency_ms * factors[offsets[starts]]

    # Only the communication that does not fit under the execution window
    # stays exposed as latency, on the boundary frame; hidden communication
    # still costs energy on the frame that captured it.
    execution_window_ms = steps * constants.FRAME_DT_MS
    exposed_comm = np.maximum(0.0, stages.communication.latency_ms - execution_window_ms)
    communication = np.zeros(n)
    communication[starts] = exposed_comm

    out.inference_ms[lane_index, :n] = inference
    out.control_ms[lane_index, :n] = control
    out.communication_ms[lane_index, :n] = communication
    out.inference_j[lane_index, :n] = inference / 1000.0 * stages.inference.power_w
    out.control_j[lane_index, :n] = control / 1000.0 * stages.control.power_w
    out.communication_j[lane_index, :n] = (
        hidden_comm / 1000.0 * stages.communication.power_w
    )


# repro: allow[BATCH-REF] reason=scalar twins are simulate_baseline/simulate_corki (per-lane-kind names); the differential harness pins both
def simulate_lanes(lanes: list[PipelineLane]) -> TraceArrays:
    """Evaluate a batch of pipeline lanes as stacked ``(lane, frame)`` arrays.

    Lane ``i`` of the returned :class:`~repro.pipeline.trace.TraceArrays` is
    bitwise equal to the scalar reference for the same specification --
    ``simulate_baseline(frames, stages, rng, name)`` for a ``frames`` lane,
    ``simulate_corki(executed_steps, stages, rng, name)`` for an
    ``executed_steps`` lane -- provided the lane's ``rng`` starts from the
    same state.  Jitter is drawn per lane in lane order, each lane from its
    own generator, so results are invariant to batch composition.
    """
    arrays = TraceArrays(
        [lane.name for lane in lanes],
        np.array([lane.frame_count for lane in lanes], dtype=int),
    )
    for index, lane in enumerate(lanes):
        if lane.frames is not None:
            _fill_baseline_lane(arrays, index, lane)
        else:
            _fill_corki_lane(arrays, index, lane)
    return arrays


def executed_steps_from_trace(trace) -> list[int]:
    """Extract the executed-steps sequence from an accuracy-run episode trace.

    Accepts any object with an ``executed_steps`` attribute -- in practice a
    :class:`repro.core.runner.EpisodeTrace`; kept duck-typed so the pipeline
    package does not import the core package.
    """
    steps = list(trace.executed_steps)
    if not steps:
        raise ValueError("episode trace carries no executed trajectories")
    return steps
