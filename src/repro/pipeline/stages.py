"""Stage models of the embodied-AI system pipeline.

Three stages exist in both execution models (paper Fig. 1): LLM inference on
the server, robot control on the robot's processor (CPU or the Corki
accelerator), and image communication between them.  Each stage knows its
latency and the power it burns while active.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants

__all__ = ["InferenceStage", "ControlStage", "CommunicationStage", "SystemStages"]


@dataclass(frozen=True)
class InferenceStage:
    """VLM inference on the server.

    ``scale`` is the normalised inference latency of Tbl. 3 (GPU choice) or
    Tbl. 4 (data representation), multiplied together by callers that vary
    both.
    """

    scale: float = 1.0
    base_ms: float = constants.INFERENCE_MS
    power_w: float = constants.GPU_POWER_W

    @property
    def latency_ms(self) -> float:
        return self.base_ms * self.scale

    def energy_j(self) -> float:
        return self.latency_ms / 1000.0 * self.power_w


@dataclass(frozen=True)
class ControlStage:
    """One control computation on the chosen substrate."""

    substrate: str = "fpga"

    @property
    def latency_ms(self) -> float:
        if self.substrate == "cpu":
            return constants.CONTROL_CPU_MS
        if self.substrate == "fpga":
            return constants.CONTROL_FPGA_MS
        raise ValueError(f"unknown control substrate {self.substrate!r}")

    @property
    def power_w(self) -> float:
        return constants.CPU_POWER_W if self.substrate == "cpu" else constants.FPGA_POWER_W

    def energy_j(self) -> float:
        return self.latency_ms / 1000.0 * self.power_w


@dataclass(frozen=True)
class CommunicationStage:
    """Wi-Fi transfer of one camera frame between robot and server."""

    latency_ms: float = constants.COMMUNICATION_MS
    power_w: float = constants.WIFI_POWER_W

    def energy_j(self) -> float:
        return self.latency_ms / 1000.0 * self.power_w


@dataclass(frozen=True)
class SystemStages:
    """The full stage configuration of one evaluated system."""

    inference: InferenceStage
    control: ControlStage
    communication: CommunicationStage

    @classmethod
    def baseline(cls, inference_scale: float = 1.0) -> "SystemStages":
        """RoboFlamingo's configuration: server GPU + robot CPU + Wi-Fi."""
        return cls(InferenceStage(inference_scale), ControlStage("cpu"), CommunicationStage())

    @classmethod
    def corki(cls, inference_scale: float = 1.0, control: str = "fpga") -> "SystemStages":
        """Corki's configuration; ``control='cpu'`` models Corki-SW."""
        return cls(InferenceStage(inference_scale), ControlStage(control), CommunicationStage())
