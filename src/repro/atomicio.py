"""Atomic file persistence: temp file in the target directory + os.replace.

This is the one place in the tree allowed to open a file for writing
without pairing it with ``os.replace`` itself (the ATOMIC-WRITE contract,
docs/contracts.md): every other module persists through these helpers, so
a crash mid-write can never leave a torn file at a final path -- the
failure mode PR 7's result cache originally had to detect and evict at
read time.  The temp file is created in the destination directory so the
final rename never crosses a filesystem boundary.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import IO, Callable

import numpy as np

__all__ = [
    "atomic_save",
    "atomic_savez",
    "atomic_write_bytes",
    "atomic_write_text",
]


def _write_via_temp(path: str | Path, write: Callable[[IO[bytes]], None]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path."""
    return _write_via_temp(path, lambda handle: handle.write(data))


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically; returns the final path."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_save(path: str | Path, array: np.ndarray) -> Path:
    """``np.save`` to ``path`` atomically.

    ``path`` must carry its ``.npy`` suffix explicitly: writing through a
    handle bypasses numpy's suffix-appending, which is exactly what keeps
    the final name equal to the name the caller will later ``np.load``.
    """
    return _write_via_temp(path, lambda handle: np.save(handle, array))


def atomic_savez(path: str | Path, **arrays: np.ndarray) -> Path:
    """``np.savez`` to ``path`` atomically (``path`` must end in ``.npz``)."""
    return _write_via_temp(path, lambda handle: np.savez(handle, **arrays))
