"""Functional + cycle-level model of the Corki control accelerator."""

from repro.accelerator.accelerator import (
    CPU_CONTROL_LATENCY_MS,
    FPGA_CONTROL_LATENCY_MS,
    CorkiAccelerator,
    TickResult,
)
from repro.accelerator.approx import (
    DESIGN_THRESHOLD,
    FULL_MOTION_SCORE,
    AceUnit,
    JointImpactModel,
    jacobian_joint_sensitivity,
    mass_matrix_joint_sensitivity,
)
from repro.accelerator.datapath import ALL_UNITS, CLOCK_MHZ, CUSTOM_UNITS, DATAFLOW_UNITS, UnitSpec
from repro.accelerator.fifo import BufferOverflow, BufferUnderflow, Fifo, LineBuffer, Scratchpad
from repro.accelerator.lanes import AcceleratorLanes, LaneTickResult
from repro.accelerator.microcontroller import Instruction, MicroController, Opcode, TrajectoryRun
from repro.accelerator.resources import ZC706, ResourceReport, resource_report
from repro.accelerator.scheduler import (
    ScheduleReport,
    ablation,
    baseline_cycles,
    baseline_cycles_lanes,
    pipelined_cycles,
    pipelined_cycles_lanes,
    reuse_cycles,
    reuse_cycles_lanes,
)

__all__ = [
    "ALL_UNITS",
    "AcceleratorLanes",
    "AceUnit",
    "BufferOverflow",
    "BufferUnderflow",
    "CLOCK_MHZ",
    "CPU_CONTROL_LATENCY_MS",
    "CUSTOM_UNITS",
    "CorkiAccelerator",
    "DATAFLOW_UNITS",
    "DESIGN_THRESHOLD",
    "FPGA_CONTROL_LATENCY_MS",
    "FULL_MOTION_SCORE",
    "Fifo",
    "Instruction",
    "JointImpactModel",
    "LaneTickResult",
    "LineBuffer",
    "MicroController",
    "Opcode",
    "ResourceReport",
    "ScheduleReport",
    "Scratchpad",
    "TickResult",
    "TrajectoryRun",
    "UnitSpec",
    "ZC706",
    "ablation",
    "baseline_cycles",
    "baseline_cycles_lanes",
    "jacobian_joint_sensitivity",
    "mass_matrix_joint_sensitivity",
    "pipelined_cycles",
    "pipelined_cycles_lanes",
    "resource_report",
    "reuse_cycles",
    "reuse_cycles_lanes",
]
