"""Latency schedules: baseline, data reuse, and reuse + link pipelining.

This reproduces the paper's architecture ablation (Sec. 4.2): starting from
a naive implementation where each of the five key computing blocks (Fig. 6)
independently recomputes its dependency chain, data reuse centralises the
shared per-link quantities (-54.0% in the paper), and pipelining the
per-link units on top overlaps links in flight (-86.0% total).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.datapath import ALL_UNITS, CLOCK_MHZ, DATAFLOW_UNITS

__all__ = [
    "ScheduleReport",
    "baseline_cycles",
    "baseline_cycles_lanes",
    "reuse_cycles",
    "reuse_cycles_lanes",
    "pipelined_cycles",
    "pipelined_cycles_lanes",
    "ablation",
]

_UNIT = {unit.name: unit for unit in ALL_UNITS}

# Which chains each key computing block (paper Fig. 6/7) needs when nothing
# is shared.  FK needs poses; the Jacobian block recomputes poses; the
# task-space mass matrix needs poses, the Jacobian and the CRBA/inversion
# circuit; the task-space bias force needs the Jacobian, the mass matrix
# (for Lambda), a full RNEA pass for h, and a second velocity/acceleration
# sweep for Jdot*qd; the Jacobian-transpose path recomputes the Jacobian and
# feeds the torque circuit.
_BASELINE_BLOCK_CHAINS: dict[str, tuple[str, ...]] = {
    "forward-kinematics": ("pose",),
    "jacobian": ("pose", "jacobian"),
    "mass-matrix-block": ("pose", "jacobian", "mass-matrix"),
    "bias-force-block": (
        "pose", "jacobian", "velocity", "acceleration", "force", "torque",
        "mass-matrix", "bias-force",
        # the Jdot*qd sweep
        "pose", "velocity", "acceleration",
    ),
    "jacobian-transpose": ("pose", "jacobian", "joint-torque"),
}

# With data reuse every per-link chain is computed exactly once and shared.
_REUSED_CHAIN = ("pose", "jacobian", "velocity", "acceleration", "force", "torque")
_REUSED_CUSTOM = ("mass-matrix", "bias-force", "joint-torque")


@dataclass(frozen=True)
class ScheduleReport:
    """Cycle counts and derived statistics for one schedule."""

    name: str
    cycles: int

    @property
    def microseconds(self) -> float:
        return self.cycles / CLOCK_MHZ

    def reduction_vs(self, other: "ScheduleReport") -> float:
        """Fractional latency reduction relative to ``other``."""
        return 1.0 - self.cycles / other.cycles


def baseline_cycles(links: int) -> ScheduleReport:
    """No reuse, no pipelining: every block walks its own chain, sequentially."""
    total = 0
    for chain in _BASELINE_BLOCK_CHAINS.values():
        for unit_name in chain:
            total += _UNIT[unit_name].cycles(links)
    return ScheduleReport("baseline", total)


def reuse_cycles(links: int) -> ScheduleReport:
    """Shared per-link quantities computed once; units still run sequentially."""
    total = 0
    for unit_name in _REUSED_CHAIN:
        total += _UNIT[unit_name].cycles(links)
    for unit_name in _REUSED_CUSTOM:
        total += _UNIT[unit_name].cycles(links)
    return ScheduleReport("data-reuse", total)


def pipelined_cycles(links: int) -> ScheduleReport:
    """Reuse plus link-level pipelining of the dataflow half.

    Different links occupy different dataflow stages simultaneously ("while
    computing link 1's force we can compute link 2's acceleration and link
    3's velocity"), so the dataflow latency collapses to the fill time plus
    ``links`` initiations of the slowest stage.  The customized circuits
    consume the dataflow results and overlap partially: the mass-matrix unit
    starts once poses stream in, so only its drain tail adds latency; the
    bias-force and torque units are serialised behind it.
    """
    dataflow_fill = sum(unit.pipeline_depth for unit in DATAFLOW_UNITS)
    slowest = max(unit.initiation_interval for unit in DATAFLOW_UNITS)
    dataflow = dataflow_fill + slowest * links

    mass, bias, torque = (_UNIT[name] for name in _REUSED_CUSTOM)
    # Overlap: the mass-matrix unit consumes poses as they stream out of the
    # dataflow, so only its drain tail stays exposed; the bias-force unit
    # likewise starts on the first forces and exposes roughly half its
    # standalone latency.  The joint-torque unit closes the cycle serially.
    custom = mass.cycles(links) // 3 + bias.cycles(links) // 2 + torque.cycles(links)
    return ScheduleReport("reuse+pipeline", dataflow + custom)


def baseline_cycles_lanes(links: np.ndarray) -> np.ndarray:
    """:func:`baseline_cycles` for per-lane link counts; one array op per unit."""
    links = np.asarray(links, dtype=np.int64)
    total = np.zeros_like(links)
    for chain in _BASELINE_BLOCK_CHAINS.values():
        for unit_name in chain:
            total = total + _UNIT[unit_name].cycles_lanes(links)
    return total


def reuse_cycles_lanes(links: np.ndarray) -> np.ndarray:
    """:func:`reuse_cycles` for per-lane link counts."""
    links = np.asarray(links, dtype=np.int64)
    total = np.zeros_like(links)
    for unit_name in _REUSED_CHAIN + _REUSED_CUSTOM:
        total = total + _UNIT[unit_name].cycles_lanes(links)
    return total


def pipelined_cycles_lanes(links: np.ndarray) -> np.ndarray:
    """:func:`pipelined_cycles` for per-lane link counts.

    Same fill/initiation/drain composition as the scalar schedule; all
    arithmetic is integral, so each lane's count equals the scalar call's.
    """
    links = np.asarray(links, dtype=np.int64)
    dataflow_fill = sum(unit.pipeline_depth for unit in DATAFLOW_UNITS)
    slowest = max(unit.initiation_interval for unit in DATAFLOW_UNITS)
    dataflow = dataflow_fill + slowest * links

    mass, bias, torque = (_UNIT[name] for name in _REUSED_CUSTOM)
    custom = (
        mass.cycles_lanes(links) // 3
        + bias.cycles_lanes(links) // 2
        + torque.cycles_lanes(links)
    )
    return dataflow + custom


def ablation(links: int = 7) -> dict[str, ScheduleReport]:
    """All three schedules for an ``links``-link arm (paper uses the 7-DoF Panda)."""
    return {
        report.name: report
        for report in (baseline_cycles(links), reuse_cycles(links), pipelined_cycles(links))
    }
