"""On-chip buffer models: FIFOs, the line buffer, and the scratchpad.

Paper Sec. 4.2 (memory optimisation): the first four dataflow stages are
decoupled by FIFOs because producer and consumer rates match; a line buffer
absorbs the rate mismatch between the force and torque units; remaining
intermediates live in a small scratchpad.  These models track occupancy and
high-water marks so tests can assert the no-DRAM-traffic property and the
resource model can size BRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Fifo", "LineBuffer", "Scratchpad", "BufferOverflow", "BufferUnderflow"]


class BufferOverflow(RuntimeError):
    """Raised when a push exceeds a buffer's capacity."""


class BufferUnderflow(RuntimeError):
    """Raised when a pop finds the buffer empty."""


@dataclass
class Fifo:
    """A fixed-capacity first-in first-out queue of fixed-size words."""

    name: str
    capacity: int
    word_bytes: int = 8  # one double-precision spatial-vector lane
    _items: list = field(default_factory=list, repr=False)
    high_water: int = 0

    def push(self, item) -> None:
        if len(self._items) >= self.capacity:
            raise BufferOverflow(f"FIFO {self.name} overflow at capacity {self.capacity}")
        self._items.append(item)
        self.high_water = max(self.high_water, len(self._items))

    def pop(self):
        if not self._items:
            raise BufferUnderflow(f"FIFO {self.name} underflow")
        return self._items.pop(0)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def bytes(self) -> int:
        return self.capacity * self.word_bytes


@dataclass
class LineBuffer:
    """Random-access line buffer between the force and torque units.

    The torque unit walks links tip-to-base while the force unit produces
    them base-to-tip, so a full line of per-link forces must be buffered --
    this is the rate/order mismatch the paper calls out.
    """

    name: str
    lines: int
    line_words: int
    word_bytes: int = 8
    _storage: dict = field(default_factory=dict, repr=False)
    high_water: int = 0

    def write(self, index: int, value) -> None:
        if not 0 <= index < self.lines:
            raise BufferOverflow(f"line buffer {self.name} index {index} out of range")
        self._storage[index] = value
        self.high_water = max(self.high_water, len(self._storage))

    def read(self, index: int):
        if index not in self._storage:
            raise BufferUnderflow(f"line buffer {self.name} read of unwritten line {index}")
        return self._storage[index]

    def clear(self) -> None:
        self._storage.clear()

    @property
    def bytes(self) -> int:
        return self.lines * self.line_words * self.word_bytes


@dataclass
class Scratchpad:
    """Key-addressed scratchpad for matrices that persist across cycles.

    Holds the Jacobian, its dedicated transpose copy (the paper allocates a
    separate memory to avoid access conflicts), the mass matrix and the bias
    force between control cycles -- including the stale copies the ACE unit
    reuses in approximate mode.
    """

    name: str
    capacity_bytes: int
    word_bytes: int = 8
    _entries: dict = field(default_factory=dict, repr=False)

    def store(self, key: str, words: int, value) -> None:
        new_total = self.used_bytes - self._entry_bytes(key) + words * self.word_bytes
        if new_total > self.capacity_bytes:
            raise BufferOverflow(
                f"scratchpad {self.name}: {new_total} bytes exceeds {self.capacity_bytes}"
            )
        self._entries[key] = (words, value)

    def load(self, key: str):
        if key not in self._entries:
            raise BufferUnderflow(f"scratchpad {self.name}: missing entry {key!r}")
        return self._entries[key][1]

    def _entry_bytes(self, key: str) -> int:
        return self._entries[key][0] * self.word_bytes if key in self._entries else 0

    @property
    def used_bytes(self) -> int:
        return sum(words * self.word_bytes for words, _ in self._entries.values())
