"""Lane-batched accelerator timing model: one fleet, one tick, one call.

:class:`AcceleratorLanes` drives N :class:`CorkiAccelerator` instances in
lockstep.  Every per-lane piece of architectural state -- the ACE unit, the
scratchpad, the FIFO/line-buffer occupancy checks, the cycle log -- still
lives on the individual accelerators, so after a batched tick each lane's
observable state is bitwise what the scalar :meth:`CorkiAccelerator.control_tick`
would have produced.  The heavy matrix refreshes, however, run once per
refresh subset through the lane kernels in :mod:`repro.robot.batched`
(stacked ``(N, 6, 6)`` spatial algebra), and the torque law runs once for the
whole fleet through
:meth:`repro.robot.control.TaskSpaceComputedTorqueController.torque_lanes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.accelerator.accelerator import CorkiAccelerator
from repro.accelerator.datapath import CLOCK_MHZ
from repro.robot.batched import (
    bias_forces_lanes,
    geometric_jacobian_lanes,
    jacobian_dot_qd_lanes,
    mass_matrix_lanes,
    task_space_bias_force_lanes,
    task_space_mass_matrix_lanes,
)

__all__ = ["LaneTickResult", "AcceleratorLanes"]


@dataclass
class LaneTickResult:
    """Outcome of one batched control cycle across the fleet."""

    torques: np.ndarray  # (lanes, dof)
    cycles: np.ndarray  # (lanes,) integer exposed-cycle counts
    updated: list[dict[str, bool]]  # per-lane ACE decisions

    @property
    def microseconds(self) -> np.ndarray:
        return self.cycles / CLOCK_MHZ


class AcceleratorLanes:
    """Tick a fleet of accelerators through the batched kernels.

    All lanes must share one robot model and identical control gains --
    that is what makes a single stacked kernel call valid for the whole
    fleet.  Lanes whose ACE units decide differently are simply gathered
    into per-group refresh subsets; a subset of size one degenerates to the
    scalar computation (the batched kernels are exact for any N).
    """

    def __init__(self, accelerators: Sequence[CorkiAccelerator]):
        accelerators = list(accelerators)
        if not accelerators:
            raise ValueError("AcceleratorLanes needs at least one accelerator")
        model = accelerators[0].model
        gains = accelerators[0].controller.gains
        for accelerator in accelerators[1:]:
            if accelerator.model is not model:
                raise ValueError("all lanes must share one robot model")
            other = accelerator.controller.gains
            if (
                not np.array_equal(other.kp, gains.kp)
                or not np.array_equal(other.kv, gains.kv)
                or other.nullspace_damping != gains.nullspace_damping
            ):
                raise ValueError("all lanes must share identical control gains")
        self.model = model
        self.accelerators = accelerators

    def __len__(self) -> int:
        return len(self.accelerators)

    def control_tick_lanes(
        self,
        reference_poses: np.ndarray,
        reference_velocities: np.ndarray,
        reference_accelerations: np.ndarray,
        q: np.ndarray,
        qd: np.ndarray,
    ) -> LaneTickResult:
        """One hardware control cycle for every lane at once.

        Inputs carry a leading lane axis.  Per lane this performs exactly
        the scalar tick: ACE decision, conditional jacobian/mass/bias
        refresh against the lane's scratchpad (including the stale-jacobian
        coupling the scalar tick has), the TS-CTC torque law, buffer
        exercise, and the exposed-cycle accounting.
        """
        q = np.asarray(q, dtype=float)
        qd = np.asarray(qd, dtype=float)
        lanes = len(self.accelerators)
        updated = [
            accelerator.ace.decide(q[lane])
            for lane, accelerator in enumerate(self.accelerators)
        ]

        rows = [lane for lane in range(lanes) if updated[lane]["jacobian"]]
        if rows:
            fresh = geometric_jacobian_lanes(self.model, q[rows])
            for i, lane in enumerate(rows):
                scratchpad = self.accelerators[lane]._scratchpad
                scratchpad.store("jacobian", 42, fresh[i])
                scratchpad.store("jacobian-T", 42, scratchpad.load("jacobian").T)
        jacobian = np.stack(
            [accelerator._scratchpad.load("jacobian") for accelerator in self.accelerators]
        )

        rows = [lane for lane in range(lanes) if updated[lane]["mass"]]
        if rows:
            mass = mass_matrix_lanes(self.model, q[rows])
            # The scalar tick pairs the fresh mass matrix with the *currently
            # loaded* (possibly stale) jacobian; mirror that coupling.
            lambda_fresh = task_space_mass_matrix_lanes(mass, jacobian[rows])
            for i, lane in enumerate(rows):
                scratchpad = self.accelerators[lane]._scratchpad
                scratchpad.store("mass", 49, mass[i])
                scratchpad.store("lambda", 36, lambda_fresh[i])
        lambda_x = np.stack(
            [accelerator._scratchpad.load("lambda") for accelerator in self.accelerators]
        )

        rows = [lane for lane in range(lanes) if updated[lane]["bias"]]
        if rows:
            mass = np.stack(
                [self.accelerators[lane]._scratchpad.load("mass") for lane in rows]
            )
            h = bias_forces_lanes(self.model, q[rows], qd[rows])
            jdot_qd = jacobian_dot_qd_lanes(self.model, q[rows], qd[rows])
            h_x_fresh = task_space_bias_force_lanes(
                mass, jacobian[rows], h, jdot_qd, lambda_x[rows]
            )
            for i, lane in enumerate(rows):
                self.accelerators[lane]._scratchpad.store("h_x", 6, h_x_fresh[i])
        h_x = np.stack(
            [accelerator._scratchpad.load("h_x") for accelerator in self.accelerators]
        )

        quantities = {
            "jacobian": jacobian,
            "mass_matrix": np.stack(
                [accelerator._scratchpad.load("mass") for accelerator in self.accelerators]
            ),
            "lambda_x": lambda_x,
            "h_x": h_x,
        }
        torques = self.accelerators[0].controller.torque_lanes(
            reference_poses,
            reference_velocities,
            reference_accelerations,
            q,
            qd,
            quantities=quantities,
        )

        cycles = np.zeros(lanes, dtype=np.int64)
        for lane, accelerator in enumerate(self.accelerators):
            accelerator._exercise_buffers()
            accelerator._last_qd = qd[lane]
            count = accelerator._exposed["base"]
            for group in ("jacobian", "mass", "bias"):
                if updated[lane][group]:
                    count += accelerator._exposed[group]
            accelerator.cycle_log.append(count)
            cycles[lane] = count
        return LaneTickResult(torques=torques, cycles=cycles, updated=updated)
