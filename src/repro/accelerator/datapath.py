"""Datapath units of the Corki accelerator and their cycle model.

Paper Fig. 8: the accelerator has a *dataflow* half -- pose, velocity,
acceleration and force units chained by FIFOs, plus a torque unit behind a
line buffer -- and a *customized circuit* half for the task-space mass
matrix, task-space bias force and joint torque computations.

The cycle model is derived from operation counts of the actual algorithms
(spatial-algebra RNEA/CRBA, the same math :mod:`repro.robot.dynamics` runs):
each unit processes one link per initiation interval, with the interval set
by the unit's multiply-accumulate width.  The schedule variants in
:mod:`repro.accelerator.scheduler` compose these units with and without
data reuse and pipelining, reproducing the paper's ablation
(-54.0% from reuse, -86.0% total with pipelining).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UnitSpec", "DATAFLOW_UNITS", "CUSTOM_UNITS", "ALL_UNITS", "CLOCK_MHZ"]

CLOCK_MHZ = 143.0
"""Accelerator clock; the ZC706 designs the paper cites close near 143 MHz."""


@dataclass(frozen=True)
class UnitSpec:
    """One hardware unit.

    ``flops_per_link``: multiply+add operations the unit performs per robot
    link (or per control cycle for the customized circuits, with
    ``per_link=False``).
    ``mac_width``: parallel multiply-accumulate lanes; one MAC retires two
    flops per cycle.
    ``pipeline_depth``: register stages from input to first output.
    ``dsp_per_mac`` and the LUT/FF figures feed the resource model.
    """

    name: str
    flops_per_link: int
    mac_width: int
    pipeline_depth: int
    per_link: bool = True
    dsp_per_mac: int = 1  # single-precision fused MAC maps onto one DSP48 slice
    lut: int = 2600
    ff: int = 2100

    @property
    def initiation_interval(self) -> int:
        """Cycles between accepting consecutive links."""
        return max(1, -(-self.flops_per_link // (2 * self.mac_width)))

    def cycles(self, links: int) -> int:
        """Latency to stream ``links`` items through this unit alone."""
        count = links if self.per_link else 1
        return self.pipeline_depth + self.initiation_interval * count

    def cycles_lanes(self, links: np.ndarray) -> np.ndarray:
        """:meth:`cycles` for a whole fleet at once: per-lane link counts in,
        per-lane cycle counts out.  Integer arithmetic, so exactly equal to
        mapping :meth:`cycles` over the lanes."""
        links = np.asarray(links, dtype=np.int64)
        count = links if self.per_link else np.ones_like(links)
        return self.pipeline_depth + self.initiation_interval * count

    @property
    def dsp(self) -> int:
        return self.mac_width * self.dsp_per_mac


# Dataflow half (paper Fig. 8, blue).  Operation counts follow the
# spatial-algebra recursions in repro.robot.dynamics:
#   pose:     MDH transform build + 3x3 compose            ~66 flops
#   jacobian: z x (p_ee - p_i) column build                ~18 flops
#   velocity: Xup @ v_parent + S*qd                        ~78 flops
#   accel:    Xup @ a_parent + crm(v) @ S*qd + S*qdd       ~144 flops
#   force:    I @ a + crf(v) @ (I @ v)                     ~216 flops
#   torque:   S^T f + Xup^T f accumulation                 ~84 flops
DATAFLOW_UNITS = (
    UnitSpec("pose", flops_per_link=66, mac_width=6, pipeline_depth=4),
    UnitSpec("jacobian", flops_per_link=18, mac_width=6, pipeline_depth=3, lut=1400, ff=1100),
    UnitSpec("velocity", flops_per_link=78, mac_width=6, pipeline_depth=4),
    UnitSpec("acceleration", flops_per_link=144, mac_width=12, pipeline_depth=5),
    UnitSpec("force", flops_per_link=216, mac_width=16, pipeline_depth=5),
    UnitSpec("torque", flops_per_link=84, mac_width=6, pipeline_depth=4),
)

# Customized-circuit half (paper Fig. 8, yellow).  These run once per control
# cycle on whole matrices:
#   mass matrix:  CRBA composites + J M^-1 J^T + 6x6 inverse  ~4200 flops
#   bias force:   J M^-1 h and Lambda (J M^-1 h - Jdot qd)    ~1100 flops
#   joint torque: J^T F, PD terms, clamping                   ~420 flops
CUSTOM_UNITS = (
    UnitSpec(
        "mass-matrix", flops_per_link=4200, mac_width=24, pipeline_depth=12,
        per_link=False, lut=6800, ff=5200,
    ),
    UnitSpec(
        "bias-force", flops_per_link=1100, mac_width=16, pipeline_depth=8,
        per_link=False, lut=4200, ff=3300,
    ),
    UnitSpec(
        "joint-torque", flops_per_link=420, mac_width=12, pipeline_depth=6,
        per_link=False, lut=3000, ff=2400,
    ),
)

ALL_UNITS = DATAFLOW_UNITS + CUSTOM_UNITS
