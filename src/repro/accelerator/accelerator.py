"""The Corki accelerator: functional TS-CTC with cycle-accurate timing.

One :meth:`CorkiAccelerator.control_tick` is one hardware control cycle
(paper Fig. 8): the ACE unit decides which matrices to refresh, the datapath
computes exactly the same math as
:func:`repro.robot.dynamics.operational_space_quantities` for the refreshed
groups while stale groups are served from the scratchpad, and the joint
torque unit closes the loop.  With the approximation threshold at zero the
accelerator's torques are bit-identical to the software controller -- the
functional-equivalence property the test suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.approx import DESIGN_THRESHOLD, AceUnit, JointImpactModel
from repro.accelerator.datapath import CLOCK_MHZ, CUSTOM_UNITS, DATAFLOW_UNITS
from repro.accelerator.fifo import Fifo, LineBuffer, Scratchpad
from repro.robot.control import ControlGains, TaskSpaceComputedTorqueController, TaskSpaceReference
from repro.robot.dynamics import (
    bias_forces,
    mass_matrix,
    task_space_bias_force,
    task_space_mass_matrix,
)
from repro.robot.jacobian import geometric_jacobian, jacobian_dot_qd
from repro.robot.model import RobotModel

__all__ = ["TickResult", "CorkiAccelerator", "CPU_CONTROL_LATENCY_MS", "FPGA_CONTROL_LATENCY_MS"]

# Paper-measured control-iteration latencies used by the system pipeline
# model: 24.7 ms per frame on the robot's i7-6770HQ, and a 29.0x acceleration
# on the ZC706 ("Corki hardware successfully accelerates the control process
# by up to 29.0x").
CPU_CONTROL_LATENCY_MS = 24.7
FPGA_CONTROL_LATENCY_MS = CPU_CONTROL_LATENCY_MS / 29.0

_UNIT = {unit.name: unit for unit in DATAFLOW_UNITS + CUSTOM_UNITS}


def _exposed_cycles(links: int) -> dict[str, int]:
    """Exposed-latency decomposition of one pipelined control tick.

    ``base`` is always spent (fresh forward kinematics for the error terms
    plus the joint-torque circuit); the other entries are the extra exposed
    cycles when the corresponding matrix group is refreshed.
    """
    pose = _UNIT["pose"]
    jac = _UNIT["jacobian"]
    vel, acc, force, torque = (
        _UNIT["velocity"], _UNIT["acceleration"], _UNIT["force"], _UNIT["torque"],
    )
    mass, bias, jtorque = (_UNIT["mass-matrix"], _UNIT["bias-force"], _UNIT["joint-torque"])

    base_fill = pose.pipeline_depth + jac.pipeline_depth
    base = base_fill + pose.initiation_interval * links + jtorque.cycles(links)
    jacobian_extra = jac.pipeline_depth  # the column builder rides the pose stream
    mass_extra = mass.cycles(links) // 3  # exposed drain tail
    bias_fill = vel.pipeline_depth + acc.pipeline_depth + force.pipeline_depth + torque.pipeline_depth
    slow_bump = max(
        0,
        max(u.initiation_interval for u in (vel, acc, force, torque))
        - pose.initiation_interval,
    )
    bias_extra = bias_fill + slow_bump * links + bias.cycles(links) // 2
    return {
        "base": base,
        "jacobian": jacobian_extra,
        "mass": mass_extra,
        "bias": bias_extra,
    }


@dataclass
class TickResult:
    """Outcome of one accelerator control cycle."""

    torque: np.ndarray
    cycles: int
    updated: dict[str, bool]

    @property
    def microseconds(self) -> float:
        return self.cycles / CLOCK_MHZ


class CorkiAccelerator:
    """Functional + timing model of the control accelerator.

    Args:
        model: The robot the accelerator is synthesised for (link count
            parameterises the datapath).
        gains: Task-space PD gains; defaults match the software controller.
        threshold: ACE approximation threshold in [0, 1]; 0 disables
            approximation entirely.
        impact: Joint impact factors; derived from the robot model when not
            supplied.
    """

    def __init__(
        self,
        model: RobotModel,
        gains: ControlGains | None = None,
        threshold: float = DESIGN_THRESHOLD,
        impact: JointImpactModel | None = None,
    ):
        self.model = model
        self.controller = TaskSpaceComputedTorqueController(model, gains)
        self.ace = AceUnit(impact or JointImpactModel.from_model(model), threshold)
        self._exposed = _exposed_cycles(model.dof)
        self._scratchpad = Scratchpad("matrices", capacity_bytes=16384)
        self._fifos = [
            Fifo("pose-velocity", capacity=model.dof),
            Fifo("velocity-acceleration", capacity=model.dof),
            Fifo("acceleration-force", capacity=model.dof),
        ]
        self._line_buffer = LineBuffer("force-torque", lines=model.dof, line_words=6)
        self._last_qd: np.ndarray | None = None
        self.cycle_log: list[int] = []

    # -- control ------------------------------------------------------------

    def control_tick(
        self, reference: TaskSpaceReference, q: np.ndarray, qd: np.ndarray
    ) -> TickResult:
        """One hardware control cycle: sensors + reference -> joint torques."""
        q = np.asarray(q, dtype=float)
        qd = np.asarray(qd, dtype=float)
        updated = self.ace.decide(q)

        if updated["jacobian"]:
            self._scratchpad.store("jacobian", 42, geometric_jacobian(self.model, q))
            # The paper keeps a dedicated transposed copy to avoid conflicts.
            self._scratchpad.store("jacobian-T", 42, self._scratchpad.load("jacobian").T)
        jacobian = self._scratchpad.load("jacobian")

        if updated["mass"]:
            m = mass_matrix(self.model, q)
            self._scratchpad.store("mass", 49, m)
            self._scratchpad.store("lambda", 36, task_space_mass_matrix(m, jacobian))
        lambda_x = self._scratchpad.load("lambda")

        if updated["bias"]:
            m = self._scratchpad.load("mass")
            h = bias_forces(self.model, q, qd)
            jdot_qd = jacobian_dot_qd(self.model, q, qd)
            self._scratchpad.store(
                "h_x", 6, task_space_bias_force(m, jacobian, h, jdot_qd, lambda_x)
            )
        h_x = self._scratchpad.load("h_x")

        quantities = {
            "jacobian": jacobian,
            "mass_matrix": self._scratchpad.load("mass"),
            "lambda_x": lambda_x,
            "h_x": h_x,
        }
        torque = self.controller.torque(reference, q, qd, quantities=quantities)
        self._exercise_buffers()
        self._last_qd = qd

        cycles = self._exposed["base"]
        for group in ("jacobian", "mass", "bias"):
            if updated[group]:
                cycles += self._exposed[group]
        self.cycle_log.append(cycles)
        return TickResult(torque=torque, cycles=cycles, updated=updated)

    def _exercise_buffers(self) -> None:
        """Stream one link set through the FIFOs / line buffer models.

        Keeps the occupancy invariants (no overflow, producer/consumer
        balance) continuously checked during functional simulation.
        """
        for link in range(self.model.dof):
            for fifo in self._fifos:
                fifo.push(link)
            self._line_buffer.write(link, link)
        for link in range(self.model.dof):
            for fifo in self._fifos:
                fifo.pop()
            self._line_buffer.read(link)
        self._line_buffer.clear()

    # -- reporting -----------------------------------------------------------

    @property
    def skip_rate(self) -> float:
        """Fraction of matrix updates avoided since the last reset."""
        return self.ace.skip_rate

    def full_tick_cycles(self) -> int:
        """Cycles of a tick that refreshes every matrix group."""
        return sum(self._exposed.values())

    def min_tick_cycles(self) -> int:
        """Cycles of a tick that reuses every matrix group."""
        return self._exposed["base"]

    def reset(self) -> None:
        self.ace.reset()
        self._last_qd = None
        self.cycle_log.clear()
