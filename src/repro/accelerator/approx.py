"""Application-specific approximate computing -- the ACE unit (paper Sec. 4.3).

Robotic control runs at high frequency while each control signal changes
little between ticks.  The ACE unit exploits this: per control tick it
scores how much each joint has moved since a matrix (Jacobian, task-space
mass matrix, task-space bias force) was last computed, weighted by that
joint's *impact factor*, and only recomputes the matrix when the score
crosses a threshold.  Impact factors come from the same sensitivity analysis
as the paper's Fig. 9: middle joints (2-4) reshape the arm and carry large
factors; the end joints (1, 7) barely matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.robot.dynamics import mass_matrix
from repro.robot.jacobian import geometric_jacobian
from repro.robot.model import RobotModel

__all__ = [
    "mass_matrix_joint_sensitivity",
    "jacobian_joint_sensitivity",
    "JointImpactModel",
    "AceUnit",
    "DESIGN_THRESHOLD",
    "FULL_MOTION_SCORE",
]

DESIGN_THRESHOLD = 0.40
"""The paper's chosen operating point ("we opt for the threshold of 40%")."""

FULL_MOTION_SCORE = 0.017
"""Impact-weighted joint motion (radians) treated as a 100% threshold.

Calibrated so that the design threshold skips slightly over half of the
matrix updates on nominal 100 Hz tracking of CALVIN-speed trajectories
(paper: "over 51% of matrix updates can be avoided").
"""


def mass_matrix_joint_sensitivity(
    model: RobotModel,
    angles: tuple[float, ...] = (np.deg2rad(6), np.deg2rad(17), np.deg2rad(29)),
    q0: np.ndarray | None = None,
) -> dict[float, np.ndarray]:
    """Fig. 9's experiment: mass-matrix change when single joints rotate.

    For each rotation angle, returns the per-joint maximum absolute change of
    any mass-matrix element relative to the reference configuration
    (default: the model's home configuration).
    """
    q0 = model.q_home.copy() if q0 is None else np.asarray(q0, dtype=float)
    reference = mass_matrix(model, q0)
    results: dict[float, np.ndarray] = {}
    for angle in angles:
        deltas = np.zeros(model.dof)
        for joint in range(model.dof):
            q = q0.copy()
            q[joint] += angle
            q = model.clamp_configuration(q)
            deltas[joint] = float(np.abs(mass_matrix(model, q) - reference).max())
        results[float(angle)] = deltas
    return results


def jacobian_joint_sensitivity(
    model: RobotModel, angle: float = np.deg2rad(6), q0: np.ndarray | None = None
) -> np.ndarray:
    """Per-joint maximum absolute Jacobian change for a small rotation."""
    q0 = model.q_home.copy() if q0 is None else np.asarray(q0, dtype=float)
    reference = geometric_jacobian(model, q0)
    deltas = np.zeros(model.dof)
    for joint in range(model.dof):
        q = q0.copy()
        q[joint] += angle
        q = model.clamp_configuration(q)
        deltas[joint] = float(np.abs(geometric_jacobian(model, q) - reference).max())
    return deltas


@dataclass(frozen=True)
class JointImpactModel:
    """Normalised per-joint impact factors for each approximable matrix.

    Each vector sums to one, so the ACE score is an impact-weighted mean of
    per-joint angular displacement (radians).
    """

    jacobian: np.ndarray
    mass: np.ndarray
    bias: np.ndarray

    @classmethod
    def from_model(cls, model: RobotModel, probe_angle: float = np.deg2rad(6)) -> "JointImpactModel":
        """Derive impact factors from the robot's actual sensitivities."""
        mass_delta = mass_matrix_joint_sensitivity(model, angles=(probe_angle,))[
            float(probe_angle)
        ]
        jac_delta = jacobian_joint_sensitivity(model, probe_angle)

        def normalise(vector: np.ndarray) -> np.ndarray:
            vector = np.maximum(vector, 1e-9)
            return vector / vector.sum()

        mass_impact = normalise(mass_delta)
        jac_impact = normalise(jac_delta)
        # Bias forces blend configuration (mass-like) and velocity terms; the
        # configuration part dominates sensitivity, so reuse its profile.
        bias_impact = normalise(0.5 * mass_impact + 0.5 * jac_impact)
        return cls(jacobian=jac_impact, mass=mass_impact, bias=bias_impact)


@dataclass
class AceUnit:
    """The Approximate Computing Enable unit of paper Fig. 8.

    Tracks, per approximable matrix, the joint configuration at which the
    matrix was last recomputed; :meth:`decide` returns which matrices must be
    refreshed for the new configuration.  The decision costs a handful of
    multiply-adds (paper: <100 FLOPs) and never blocks the datapath.
    """

    impact: JointImpactModel
    threshold: float = DESIGN_THRESHOLD
    _last: dict = field(default_factory=dict)
    updates: dict = field(default_factory=lambda: {"jacobian": 0, "mass": 0, "bias": 0})
    ticks: int = 0

    def reset(self) -> None:
        self._last.clear()
        self.updates = {"jacobian": 0, "mass": 0, "bias": 0}
        self.ticks = 0

    def _score(self, matrix: str, q: np.ndarray) -> float:
        if matrix not in self._last:
            return np.inf
        weights = getattr(self.impact, matrix)
        return float(weights @ np.abs(q - self._last[matrix]))

    def decide(self, q: np.ndarray) -> dict[str, bool]:
        """Which of jacobian / mass / bias to recompute at configuration ``q``."""
        q = np.asarray(q, dtype=float)
        cutoff = self.threshold * FULL_MOTION_SCORE
        decision = {}
        for matrix in ("jacobian", "mass", "bias"):
            update = self._score(matrix, q) >= cutoff
            decision[matrix] = update
            if update:
                self._last[matrix] = q.copy()
                self.updates[matrix] += 1
        self.ticks += 1
        return decision

    @property
    def skip_rate(self) -> float:
        """Fraction of matrix updates avoided so far (paper reports >51%)."""
        if self.ticks == 0:
            return 0.0
        possible = 3 * self.ticks
        return 1.0 - sum(self.updates.values()) / possible
