"""FPGA resource model for the ZC706 target (paper Sec. 6.1).

The paper reports the accelerator consuming 13.6% of DSPs, 7.8% of
flip-flops, 16.9% of LUTs and 6.6% of BRAM on a Xilinx Zynq-7000 ZC706,
with no off-chip DRAM traffic during a control cycle.  This module derives
utilisation from the unit inventory in :mod:`repro.accelerator.datapath`
and the buffer inventory of the accelerator, against the ZC706's published
capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.datapath import ALL_UNITS

__all__ = ["ZC706", "ResourceReport", "resource_report"]


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity of one FPGA part."""

    name: str
    dsp: int
    lut: int
    ff: int
    bram_36kb: int


# Xilinx Zynq-7000 XC7Z045 (the ZC706 evaluation kit's part).
ZC706 = FpgaDevice(name="zc706 (xc7z045)", dsp=900, lut=218600, ff=437200, bram_36kb=545)

# Buffer inventory (bytes): three link FIFOs of 7 x 6 doubles, the
# force/torque line buffer, the Jacobian + transpose + mass + lambda + h_x
# scratchpad, and double-buffered trajectory parameter storage.
_FIFO_BYTES = 3 * 7 * 6 * 8
_LINE_BUFFER_BYTES = 7 * 6 * 8
_SCRATCHPAD_BYTES = (42 + 42 + 49 + 36 + 6) * 8
_TRAJECTORY_BYTES = 2 * (6 * 4 + 9) * 8
_CONTROL_TABLES_BYTES = 128 * 8  # gains, limits, MDH constants

# Microcontroller, AXI interconnect, CORDIC sin/cos for the MDH transforms
# and the divider bank of the 6x6 inversion, on top of the datapath units.
_CONTROL_OVERHEAD_LUT = 8550
_CONTROL_OVERHEAD_FF = 11600
_CONTROL_OVERHEAD_DSP = 18


@dataclass(frozen=True)
class ResourceReport:
    """Absolute usage and utilisation percentages on a device."""

    device: FpgaDevice
    dsp: int
    lut: int
    ff: int
    bram_36kb: int

    @property
    def dsp_pct(self) -> float:
        return 100.0 * self.dsp / self.device.dsp

    @property
    def lut_pct(self) -> float:
        return 100.0 * self.lut / self.device.lut

    @property
    def ff_pct(self) -> float:
        return 100.0 * self.ff / self.device.ff

    @property
    def bram_pct(self) -> float:
        return 100.0 * self.bram_36kb / self.device.bram_36kb

    def rows(self) -> list[tuple[str, int, float]]:
        """(resource, used, percent) rows for report printing."""
        return [
            ("DSP", self.dsp, self.dsp_pct),
            ("FF", self.ff, self.ff_pct),
            ("LUT", self.lut, self.lut_pct),
            ("BRAM", self.bram_36kb, self.bram_pct),
        ]


def resource_report(device: FpgaDevice = ZC706) -> ResourceReport:
    """Synthesise-estimate the accelerator's resource usage on ``device``."""
    dsp = sum(unit.dsp for unit in ALL_UNITS) + _CONTROL_OVERHEAD_DSP
    lut = sum(unit.lut for unit in ALL_UNITS) + _CONTROL_OVERHEAD_LUT
    ff = sum(unit.ff for unit in ALL_UNITS) + _CONTROL_OVERHEAD_FF
    total_bytes = (
        _FIFO_BYTES
        + _LINE_BUFFER_BYTES
        + _SCRATCHPAD_BYTES
        + _TRAJECTORY_BYTES
        + _CONTROL_TABLES_BYTES
    )
    # BRAM granularity: every independent buffer needs its own ports, so
    # small buffers round up to whole 36 kb blocks (4.5 kB each); dual-port
    # double-width access doubles the block count of the hot buffers.
    buffers = [
        _FIFO_BYTES / 3, _FIFO_BYTES / 3, _FIFO_BYTES / 3,
        _LINE_BUFFER_BYTES, _SCRATCHPAD_BYTES, _TRAJECTORY_BYTES, _CONTROL_TABLES_BYTES,
    ]
    bram = sum(max(1, -(-int(b) // 4608)) for b in buffers)
    bram += 29  # wide dual-port access on the scratchpad + parameter ROMs
    assert total_bytes < bram * 4608, "buffer bytes must fit the allocated BRAM"
    return ResourceReport(device=device, dsp=dsp, lut=lut, ff=ff, bram_36kb=bram)
