"""The micro-controller that sequences the accelerator (paper Fig. 8).

"A simple micro-controller manages the control flow of the accelerator":
it receives trajectory parameters from the server, loops over control ticks
at the configured rate, samples the cubic at each tick, launches the
datapath, and retires torques to the motor drivers.  This module models that
sequencer as a small instruction set with cycle accounting, so the control
overhead (dominated by the datapath, not the sequencing) can be asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.accelerator.accelerator import CorkiAccelerator, TickResult
from repro.core.trajectory import CubicTrajectory
from repro.robot.control import TaskSpaceReference

__all__ = ["Opcode", "Instruction", "MicroController", "TrajectoryRun"]


class Opcode(Enum):
    """Sequencer operations, each with a fixed cycle cost."""

    LOAD_TRAJECTORY = "load_trajectory"  # latch coefficients from the NIC buffer
    SAMPLE_REFERENCE = "sample_reference"  # evaluate the cubic at tick time
    READ_SENSORS = "read_sensors"  # latch joint encoders / velocity estimates
    LAUNCH_DATAPATH = "launch_datapath"  # start a control tick
    RETIRE_TORQUE = "retire_torque"  # hand torques to the motor drivers
    BRANCH_NOT_DONE = "branch_not_done"  # loop until the trajectory window ends


_OPCODE_CYCLES = {
    Opcode.LOAD_TRAJECTORY: 16,  # 33 words over a 2-word/cycle bus
    Opcode.SAMPLE_REFERENCE: 12,  # Horner evaluation of 6 cubics + derivatives
    Opcode.READ_SENSORS: 4,
    Opcode.LAUNCH_DATAPATH: 2,
    Opcode.RETIRE_TORQUE: 4,
    Opcode.BRANCH_NOT_DONE: 1,
}


@dataclass(frozen=True)
class Instruction:
    """One retired sequencer instruction with its cycle cost."""

    opcode: Opcode
    cycles: int


@dataclass
class TrajectoryRun:
    """Result of executing one trajectory window on the accelerator."""

    torques: list[np.ndarray]
    tick_results: list[TickResult]
    instructions: list[Instruction] = field(repr=False, default_factory=list)

    @property
    def sequencer_cycles(self) -> int:
        return sum(instruction.cycles for instruction in self.instructions)

    @property
    def datapath_cycles(self) -> int:
        return sum(result.cycles for result in self.tick_results)

    @property
    def sequencer_overhead(self) -> float:
        """Sequencing cycles as a fraction of total accelerator cycles."""
        total = self.sequencer_cycles + self.datapath_cycles
        return self.sequencer_cycles / total if total else 0.0


class MicroController:
    """Sequences control ticks for one trajectory window.

    ``control_hz`` is the tick rate (the paper targets 100 Hz); sensors are
    provided by a callback so the sequencer works against both the dynamics
    tier and recorded joint-state traces.
    """

    def __init__(self, accelerator: CorkiAccelerator, control_hz: float = 100.0):
        self.accelerator = accelerator
        self.control_hz = control_hz

    def execute(
        self,
        trajectory: CubicTrajectory,
        read_sensors,
        steps: int | None = None,
    ) -> TrajectoryRun:
        """Run the trajectory's (possibly truncated) window of control ticks.

        ``read_sensors(t)`` returns ``(q, qd)`` at trajectory time ``t``;
        ``steps`` truncates execution to the first waypoints (early
        termination / Corki-T), defaulting to the full window.
        """
        steps = trajectory.steps if steps is None else steps
        if not 1 <= steps <= trajectory.steps:
            raise ValueError(f"steps must be in [1, {trajectory.steps}]")
        window_seconds = steps * trajectory.step_dt
        tick_count = max(1, int(round(window_seconds * self.control_hz)))

        instructions = [self._retire(Opcode.LOAD_TRAJECTORY)]
        torques: list[np.ndarray] = []
        results: list[TickResult] = []
        for tick in range(tick_count):
            t = tick / self.control_hz
            instructions.append(self._retire(Opcode.SAMPLE_REFERENCE))
            reference = TaskSpaceReference(
                trajectory.pose(t), trajectory.velocity(t), trajectory.acceleration(t)
            )
            instructions.append(self._retire(Opcode.READ_SENSORS))
            q, qd = read_sensors(t)
            instructions.append(self._retire(Opcode.LAUNCH_DATAPATH))
            result = self.accelerator.control_tick(reference, q, qd)
            results.append(result)
            torques.append(result.torque)
            instructions.append(self._retire(Opcode.RETIRE_TORQUE))
            instructions.append(self._retire(Opcode.BRANCH_NOT_DONE))
        return TrajectoryRun(torques=torques, tick_results=results, instructions=instructions)

    @staticmethod
    def _retire(opcode: Opcode) -> Instruction:
        return Instruction(opcode=opcode, cycles=_OPCODE_CYCLES[opcode])
