"""Reproduction of DaDu-Corki (ISCA 2025).

Corki is an algorithm-architecture co-design for embodied-AI robotic
manipulation: the policy predicts near-future *trajectories* instead of
per-frame actions, a dedicated accelerator turns trajectories into
task-space computed-torque control signals, and the system pipeline overlaps
communication with execution.

Subpackages:
    core:        the Corki algorithm framework (trajectories, waypoints,
                 adaptive length, policies, episode runner).
    nn:          numpy autograd and the compact vision-language model stack.
    robot:       Franka Panda kinematics/dynamics and the TS-CTC controller.
    sim:         the CALVIN-like manipulation benchmark environment.
    accelerator: functional + cycle-level model of the Corki hardware.
    pipeline:    discrete-event latency/energy model of the full system.
    analysis:    metrics, evaluation drivers and report formatting.
    experiments: one driver per paper table/figure.
    serving:     the evaluation service -- continuous-batching request
                 admission and the content-addressed result cache.
"""

__version__ = "1.0.0"
