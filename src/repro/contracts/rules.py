"""The determinism-contract rules.

Each rule is one class with an ``id``, a one-line ``title``, the
historical bug that motivates it (``rationale``), and a ``check`` that
pattern-matches one module's AST and yields diagnostics.  Rules are pure:
they read the :class:`~repro.contracts.engine.ModuleInfo` /
:class:`~repro.contracts.engine.Project` the engine built and never touch
the filesystem.  ``docs/contracts.md`` is the prose twin of this file --
add a rule there when adding one here.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.contracts.engine import (
    Diagnostic,
    ModuleInfo,
    Project,
    ancestors,
    enclosing_function,
    qualified_name,
)

__all__ = ["RULES", "Rule", "rule_ids"]


class Rule:
    """Base class: subclasses set ``id``/``title``/``rationale`` and
    implement ``check``."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: dotted module names (exact or prefix) the rule never applies to.
    exempt: tuple[str, ...] = ()

    def applies(self, info: ModuleInfo) -> bool:
        for name in self.exempt:
            if info.module == name or info.module.startswith(name + "."):
                return False
        return not info.module.endswith(".__main__") or "__main__" not in self.exempt

    def check(self, info: ModuleInfo, project: Project) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, info: ModuleInfo, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=info.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


def _contains_binop(node: ast.expr) -> bool:
    return any(isinstance(child, ast.BinOp) for child in ast.walk(node))


def _in_main_guard(node: ast.AST) -> bool:
    """Whether ``node`` sits under ``if __name__ == "__main__":`` -- the
    script-entry idiom, where a process exit is the module's own business."""
    for parent in ancestors(node):
        if isinstance(parent, ast.If):
            test = parent.test
            if (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == "__name__"
            ):
                return True
    return False


def _in_loop_or_comprehension(node: ast.AST) -> bool:
    for parent in ancestors(node):
        if isinstance(parent, (ast.For, ast.While, ast.ListComp, ast.SetComp,
                               ast.DictComp, ast.GeneratorExp)):
            return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


class RngKeyedRule(Rule):
    """RNG-KEYED: every ``default_rng`` takes a multi-element key list."""

    id = "RNG-KEYED"
    title = "RNG streams must be keyed list seeds, never scalar or derived"
    rationale = (
        "PR 4: lane generators keyed [seed + 1, lane] / [seed + 2, lane] made "
        "seed S's feedback streams bit-identical to seed S + 1's env streams. "
        "Scalar seeds and seed arithmetic create exactly this collision shape; "
        "key streams as [seed, domain, identity] like lane_generators."
    )

    _GLOBAL_NUMPY = {
        "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "normal", "uniform",
        "standard_normal", "get_state", "set_state", "RandomState",
    }
    _GLOBAL_STDLIB = {
        "seed", "random", "randint", "randrange", "uniform", "choice",
        "choices", "shuffle", "sample", "gauss", "getrandbits", "betavariate",
        "expovariate", "normalvariate", "vonmisesvariate",
    }

    def check(self, info: ModuleInfo, project: Project) -> Iterator[Diagnostic]:
        if not self.applies(info):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, info)
            if name is None:
                continue
            if name == "numpy.random.default_rng":
                yield from self._check_default_rng(info, node)
            elif name.startswith("numpy.random."):
                attr = name.rsplit(".", 1)[1]
                if attr in self._GLOBAL_NUMPY:
                    yield self.diagnostic(
                        info, node,
                        f"global numpy.random.{attr} call shares one hidden "
                        "stream across every caller -- draw from an explicit "
                        "keyed default_rng([seed, domain, ...]) generator",
                    )
            elif name.startswith("random.") and name.count(".") == 1:
                attr = name.rsplit(".", 1)[1]
                if attr in self._GLOBAL_STDLIB:
                    yield self.diagnostic(
                        info, node,
                        f"stdlib random.{attr} uses the global Mersenne "
                        "state -- use a keyed numpy default_rng stream",
                    )

    def _check_default_rng(
        self, info: ModuleInfo, node: ast.Call
    ) -> Iterator[Diagnostic]:
        if not node.args and not node.keywords:
            yield self.diagnostic(
                info, node,
                "default_rng() with no seed draws OS entropy -- results are "
                "unreproducible; key the stream as [seed, domain, identity]",
            )
            return
        if not node.args:
            return  # keyword form is not used in this tree; let it pass
        seed = node.args[0]
        if isinstance(seed, (ast.List, ast.Tuple)):
            if len(seed.elts) < 2:
                yield self.diagnostic(
                    info, node,
                    "single-element seed key is equivalent to a scalar seed "
                    "-- key streams as [seed, domain, identity]",
                )
            elif any(_contains_binop(element) for element in seed.elts):
                yield self.diagnostic(
                    info, node,
                    "seed arithmetic inside a key collides neighbouring "
                    "streams (the PR 4 [seed + 1, lane] bug) -- make each "
                    "component an independent key element instead",
                )
            return
        if _contains_binop(seed):
            yield self.diagnostic(
                info, node,
                "derived scalar seed (arithmetic on a base seed) collides "
                "with neighbouring streams -- key as [base, index] instead",
            )
            return
        message = (
            "scalar-seeded default_rng; lane-scoped code must key streams "
            "as [seed, domain, identity] (see lane_generators)"
        )
        if _in_loop_or_comprehension(node):
            message = (
                "scalar-seeded default_rng inside a loop/comprehension "
                "enumerates a stream family -- key it as [seed, index] "
                "(see lane_generators)"
            )
        yield self.diagnostic(info, node, message)


class NoWallclockRule(Rule):
    """NO-WALLCLOCK: no direct clock reads outside approved seams."""

    id = "NO-WALLCLOCK"
    title = "no wall-clock reads outside injectable-clock seams"
    rationale = (
        "PR 7: request deadlines are measured on an injectable clock "
        "(EvaluationService(clock=...)) so timeout behaviour is testable and "
        "deterministic.  A direct time.time()/perf_counter() read in the "
        "evaluation path silently re-couples results to the host clock.  "
        "Passing a clock *function* (clock=time.monotonic) is the approved "
        "seam and is not flagged -- only inline calls are."
    )
    exempt = ("repro.cli", "repro.analysis.fleet_bench", "__main__")

    _CLOCK_CALLS = {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns", "time.strftime",
        "time.localtime", "time.gmtime", "time.ctime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }

    def check(self, info: ModuleInfo, project: Project) -> Iterator[Diagnostic]:
        if not self.applies(info):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, info)
            if name in self._CLOCK_CALLS:
                yield self.diagnostic(
                    info, node,
                    f"direct {name}() read couples behaviour to the host "
                    "clock -- accept an injectable clock callable (see "
                    "repro.serving.service.EvaluationService) or move the "
                    "timing into a benchmark/CLI module",
                )


class BatchRefRule(Rule):
    """BATCH-REF: every public ``*_lanes`` kernel has a scalar reference."""

    id = "BATCH-REF"
    title = "every public *_lanes kernel needs a scalar reference twin"
    rationale = (
        "PR 6: every batched kernel is held bitwise-equal to a frozen scalar "
        "reference by tests/test_batched_equivalence.py.  A *_lanes function "
        "without a scalar twin has nothing to be checked against, so its "
        "divergences ship silently.  The twin may be <base>, <base>_reference "
        "or the singular/plural variant, in the same module, a direct "
        "import/importer, or a sibling module of the same subpackage."
    )

    def check(self, info: ModuleInfo, project: Project) -> Iterator[Diagnostic]:
        if not self.applies(info):
            return
        neighborhood = None
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = node.name
            if name.startswith("_") or not name.endswith("_lanes"):
                continue
            base = name[: -len("_lanes")]
            if not base:
                continue
            if neighborhood is None:
                neighborhood = project.neighborhood(info.module) or [info]
            candidates = {base, f"{base}_reference"}
            if base.endswith("ies"):
                candidates.add(base[:-3] + "y")
            if base.endswith("s"):
                candidates.add(base[:-1])
            else:
                candidates.add(base + "s")
            if any(project.defines(neighborhood, c) for c in candidates):
                continue
            yield self.diagnostic(
                info, node,
                f"batched kernel {name} has no scalar reference "
                f"({' / '.join(sorted(candidates))}) in its module, import "
                "neighborhood or subpackage -- add the frozen scalar twin "
                "the differential harness can pin it against",
            )


class AtomicWriteRule(Rule):
    """ATOMIC-WRITE: persisted files are written temp-file + os.replace."""

    id = "ATOMIC-WRITE"
    title = "file writes must be atomic (temp file + os.replace)"
    rationale = (
        "PR 7: ResultCache.put once wrote npz payloads directly to their "
        "final path; a crash mid-write left a torn entry every later read "
        "had to detect and evict.  Write through repro.atomicio (or an "
        "explicit mkstemp + os.replace in the same function) so a partially "
        "written file can never sit at a final path."
    )
    exempt = ("repro.atomicio",)

    _NUMPY_WRITERS = {"numpy.save", "numpy.savez", "numpy.savez_compressed"}

    def check(self, info: ModuleInfo, project: Project) -> Iterator[Diagnostic]:
        if not self.applies(info):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, info)
            flagged: str | None = None
            if name == "open" and self._write_mode(node):
                flagged = "open(..., 'w')"
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                "write_text", "write_bytes"
            ):
                flagged = f".{node.func.attr}()"
            elif name in self._NUMPY_WRITERS and node.args:
                if self._targets_buffer(node.args[0], node):
                    continue
                flagged = name
            if flagged is None:
                continue
            if self._function_is_atomic(node):
                continue
            yield self.diagnostic(
                info, node,
                f"{flagged} writes to a final path; a crash mid-write leaves "
                "a torn file -- route it through repro.atomicio or pair it "
                "with os.replace in this function",
            )

    @staticmethod
    def _write_mode(node: ast.Call) -> bool:
        mode = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return False
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return any(flag in mode.value for flag in "wax")
        return False

    def _targets_buffer(self, target: ast.expr, node: ast.Call) -> bool:
        """True when the write target is an in-memory BytesIO local."""
        if not isinstance(target, ast.Name):
            return False
        function = enclosing_function(node)
        if function is None:
            return False
        for stmt in ast.walk(function):
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)
                and any(
                    isinstance(t, ast.Name) and t.id == target.id
                    for t in stmt.targets
                )
            ):
                callee = stmt.value.func
                attr = callee.attr if isinstance(callee, ast.Attribute) else (
                    callee.id if isinstance(callee, ast.Name) else ""
                )
                if attr in ("BytesIO", "StringIO"):
                    return True
        return False

    @staticmethod
    def _function_is_atomic(node: ast.Call) -> bool:
        """The enclosing function finishes the write with os.replace or
        delegates to an atomic_* helper."""
        function = enclosing_function(node)
        if function is None:
            return False
        for stmt in ast.walk(function):
            if not isinstance(stmt, ast.Call):
                continue
            callee = stmt.func
            if isinstance(callee, ast.Attribute):
                if callee.attr == "replace" or callee.attr.startswith("atomic_"):
                    return True
            elif isinstance(callee, ast.Name) and callee.id.startswith("atomic_"):
                return True
        return False


class NoUnorderedIterRule(Rule):
    """NO-UNORDERED-ITER: never iterate sets or directory listings raw."""

    id = "NO-UNORDERED-ITER"
    title = "no iteration over unordered containers without sorted()"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomisation of the value types; directory listings depend on the "
        "filesystem.  Feeding either into RNG draws, trace arrays or cache "
        "keys makes byte-identity run-order dependent.  Wrap the iterable "
        "in sorted(...) to pin the order."
    )

    _UNORDERED_CALLS = {"set", "frozenset"}
    _LISTING_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
    _LISTING_METHODS = {"iterdir", "glob", "rglob"}

    def check(self, info: ModuleInfo, project: Project) -> Iterator[Diagnostic]:
        if not self.applies(info):
            return
        for node in ast.walk(info.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                candidate = self._unwrap(candidate)
                label = self._unordered_label(candidate, info)
                if label is not None:
                    yield self.diagnostic(
                        info, candidate,
                        f"iterating {label} visits elements in an undefined "
                        "order -- wrap it in sorted(...) so downstream RNG "
                        "draws, traces and cache keys cannot depend on "
                        "insertion or filesystem order",
                    )

    @staticmethod
    def _unwrap(node: ast.expr) -> ast.expr:
        """Look through enumerate()/list()/tuple() shells (they preserve
        whatever order the inner iterable yields)."""
        while (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("enumerate", "list", "tuple", "reversed")
            and node.args
        ):
            node = node.args[0]
        return node

    def _unordered_label(self, node: ast.expr, info: ModuleInfo) -> str | None:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            name = qualified_name(node.func, info)
            if name in self._UNORDERED_CALLS:
                return f"{name}(...)"
            if name in self._LISTING_CALLS:
                return f"{name}(...) (filesystem order)"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._LISTING_METHODS
            ):
                return f".{node.func.attr}(...) (filesystem order)"
        return None


class NoHardExitRule(Rule):
    """NO-HARD-EXIT: process exits belong to the fault injector and mains."""

    id = "NO-HARD-EXIT"
    title = "no os._exit/sys.exit outside reliability.faults and CLI mains"
    rationale = (
        "PR 7: os._exit(17) in reliability/faults.py is the one sanctioned "
        "hard death -- it *simulates* a worker crash so recovery is "
        "testable.  Anywhere else, a hard exit skips cleanup (pool leases, "
        "atexit guards, temp files) and turns a recoverable error into a "
        "hung parent; raise an exception and let the owner decide."
    )
    exempt = ("repro.reliability.faults", "repro.cli", "__main__")

    def check(self, info: ModuleInfo, project: Project) -> Iterator[Diagnostic]:
        if not self.applies(info):
            return
        for node in ast.walk(info.tree):
            if _in_main_guard(node):
                continue  # script-entry blocks exit on purpose
            if isinstance(node, ast.Call):
                name = qualified_name(node.func, info)
                if name in ("os._exit", "sys.exit"):
                    yield self.diagnostic(
                        info, node,
                        f"{name}() kills the process past every cleanup "
                        "seam -- raise instead; hard exits belong to "
                        "repro.reliability.faults and __main__ modules",
                    )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                name = qualified_name(target, info) if isinstance(
                    target, (ast.Name, ast.Attribute)
                ) else None
                if name == "SystemExit":
                    yield self.diagnostic(
                        info, node,
                        "raise SystemExit outside a __main__ module hides a "
                        "process exit in library code -- raise a domain "
                        "exception instead",
                    )


RULES: tuple[Rule, ...] = (
    RngKeyedRule(),
    NoWallclockRule(),
    BatchRefRule(),
    AtomicWriteRule(),
    NoUnorderedIterRule(),
    NoHardExitRule(),
)


def rule_ids() -> list[str]:
    return [rule.id for rule in RULES]
