"""``python -m repro.contracts``: lint the tree, print diagnostics, exit.

Exit status is 1 when any violation (including ``BAD-WAIVER`` /
``STALE-WAIVER`` meta-diagnostics) survives, 0 on a clean tree.  The
summary line always prints the waiver census so the size of the exception
inventory is visible in every log.  ``--external`` folds ruff and mypy in
when they are installed (``repro-experiments lint`` passes it).
"""

from __future__ import annotations

import argparse

from repro.contracts.engine import default_tree, lint_paths


def main(argv: list[str] | None = None, prog: str = "python -m repro.contracts") -> int:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="reprolint: check the determinism contracts "
        "(docs/contracts.md) over a source tree.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--external", action="store_true",
        help="also run ruff and mypy when installed (skipped with a notice "
        "otherwise)",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program passes (LANE-SHAPE, RNG-PROVENANCE, "
        "LAYER-SAFE, SPAWN-SAFE)",
    )
    parser.add_argument(
        "--deep-only", action="store_true",
        help="run only the whole-program passes (the support-tree profile: "
        "benchmarks/, examples/ and tests/ helpers share the cross-file "
        "invariants but not the per-file conventions)",
    )
    parser.add_argument(
        "--census", metavar="PATH",
        help="write the waiver census as JSON to PATH (machine-readable "
        "twin of the summary line; CI diffs it against the committed "
        "baseline)",
    )
    args = parser.parse_args(argv)

    paths = [str(p) for p in (args.paths or [default_tree()])]
    result = lint_paths(
        paths,
        deep=args.deep or args.deep_only,
        shallow=not args.deep_only,
    )
    for diagnostic in result.violations:
        print(diagnostic.format())
    waived = result.waived_by_rule()
    census = (
        " (" + ", ".join(f"{rule}={count}" for rule, count in waived.items()) + ")"
        if waived
        else ""
    )
    print(
        f"reprolint: {result.files} files, {len(result.violations)} "
        f"violation(s), {len(result.waived)} waived{census}"
    )
    status = 0 if result.ok else 1
    if args.census:
        from repro.contracts.census import write_census

        write_census(result, args.census)
        print(f"reprolint: waiver census written to {args.census}")
    if args.external:
        from repro.contracts.static import run_external

        status = max(status, run_external(paths))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
