"""Rule engine: module parsing, waiver pragmas, and diagnostic plumbing.

The engine owns everything rule-independent: turning files into
:class:`ModuleInfo` (source + AST with parent links + import/alias tables +
parsed waivers), assembling them into a :class:`Project` (the import graph
:class:`~repro.contracts.rules.BatchRefRule` walks), applying inline
waivers to raw diagnostics, and auditing the waivers themselves.  Rules
(:mod:`repro.contracts.rules`) only pattern-match ASTs and yield
:class:`Diagnostic` objects; they never read files or format output.

Waiver pragma grammar (one comment, on the offending line or the line
directly above it)::

    # repro: allow[RULE-ID] reason=why this one is intentional
    # repro: allow[RULE-A, RULE-B] reason=one reason may cover several rules

The reason is mandatory (``BAD-WAIVER`` otherwise) and a waiver that
suppresses nothing is reported as ``STALE-WAIVER`` -- both carry the same
non-zero exit as a real violation, so the waiver inventory stays exactly
as large as the set of living exceptions.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "BAD_WAIVER",
    "STALE_WAIVER",
    "Diagnostic",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Waiver",
    "default_tree",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "qualified_name",
]

# Meta-diagnostic ids emitted by the engine itself (not by any rule).
BAD_WAIVER = "BAD-WAIVER"
STALE_WAIVER = "STALE-WAIVER"

_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_\-\s,]+)\]\s*"
    r"(?:reason=(?P<reason>.*))?$"
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a file and line."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Waiver:
    """One parsed ``# repro: allow[...]`` pragma."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False

    def covers(self, diagnostic: Diagnostic) -> bool:
        """A waiver covers its own line (trailing comment) and the line
        below it (comment-above style)."""
        return diagnostic.rule in self.rules and diagnostic.line in (
            self.line,
            self.line + 1,
        )


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one source file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    waivers: list[Waiver] = field(default_factory=list)
    #: local name -> dotted origin for every import binding, e.g.
    #: ``{"np": "numpy", "default_rng": "numpy.random.default_rng"}``.
    aliases: dict[str, str] = field(default_factory=dict)
    #: dotted module names this module imports (absolute imports only).
    imports: set[str] = field(default_factory=set)
    #: every function/method name defined anywhere in the module.
    functions: set[str] = field(default_factory=set)

    @property
    def subpackage(self) -> str:
        """The immediate parent package (``repro.robot`` for
        ``repro.robot.batched``)."""
        return self.module.rpartition(".")[0]


class Project:
    """A set of modules plus the import graph between them.

    ``neighborhood(module)`` is the module itself, its direct imports and
    its direct importers, plus every sibling in its immediate subpackage --
    the search space :class:`~repro.contracts.rules.BatchRefRule` uses to
    locate a batched kernel's scalar reference (scalar entry points often
    live in the module that *imports* the kernels, e.g.
    ``repro.robot.dynamics`` importing ``repro.robot.batched``).
    """

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = {info.module: info for info in modules}
        self._importers: dict[str, set[str]] = {}
        for info in modules:
            for imported in info.imports:
                self._importers.setdefault(imported, set()).add(info.module)

    def neighborhood(self, module: str) -> list[ModuleInfo]:
        info = self.modules.get(module)
        if info is None:
            return []
        names = {module}
        names.update(name for name in info.imports if name in self.modules)
        names.update(self._importers.get(module, ()))
        if info.subpackage:
            prefix = info.subpackage + "."
            names.update(
                name for name in self.modules if name.startswith(prefix)
            )
        return [self.modules[name] for name in sorted(names)]

    def defines(self, modules: list[ModuleInfo], symbol: str) -> bool:
        return any(symbol in info.functions for info in modules)


@dataclass
class LintResult:
    """The outcome of one lint run."""

    violations: list[Diagnostic]
    waived: list[tuple[Diagnostic, Waiver]]
    files: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def waived_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diagnostic, _ in self.waived:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return dict(sorted(counts.items()))


def _attach_parents(tree: ast.Module) -> None:
    """Give every node a ``_repro_parent`` link (rules walk ancestors to
    detect loop/comprehension scope and the enclosing function)."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def ancestors(node: ast.AST):
    """Yield the parent chain of ``node`` (nearest first)."""
    current = getattr(node, "_repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_repro_parent", None)


def enclosing_function(node: ast.AST) -> ast.AST | None:
    for parent in ancestors(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent
    return None


def qualified_name(node: ast.expr, info: ModuleInfo) -> str | None:
    """Resolve a call target to a dotted name through the import table.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng`` when
    the module did ``import numpy as np``; a bare ``default_rng`` resolves
    through ``from numpy.random import default_rng``.  Returns ``None`` for
    targets that are not simple attribute chains (subscripts, calls, ...).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = info.aliases.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _comment_tokens(source: str):
    """(line, col, text) of every comment, via the tokenizer -- so waiver
    pragmas inside string literals and docstrings (e.g. documentation
    examples) are never mistaken for live waivers."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except tokenize.TokenError:  # unterminated constructs: ast.parse raised first
        return


def _parse_waivers(source: str, path: str) -> tuple[list[Waiver], list[Diagnostic]]:
    waivers: list[Waiver] = []
    problems: list[Diagnostic] = []
    for lineno, col_offset, comment in _comment_tokens(source):
        match = _WAIVER_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        col = col_offset + match.start() + 1
        if not rules:
            problems.append(
                Diagnostic(path, lineno, col, BAD_WAIVER, "waiver names no rule ids")
            )
            continue
        if not reason:
            problems.append(
                Diagnostic(
                    path,
                    lineno,
                    col,
                    BAD_WAIVER,
                    "waiver has no reason= -- the reason is mandatory "
                    f"(rules: {', '.join(rules)})",
                )
            )
            continue
        waivers.append(Waiver(line=lineno, rules=rules, reason=reason))
    return waivers, problems


def _collect_bindings(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                info.aliases[local] = origin
                info.imports.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports are not used in this tree
            info.imports.add(node.module)
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions.add(node.name)


def _module_name_for(path: Path) -> str:
    """Dotted module name, anchored at the ``repro`` package when the path
    lives under one; the bare stem otherwise (fixture files)."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_module(
    path: str | Path, module_name: str | None = None, source: str | None = None
) -> tuple[ModuleInfo, list[Diagnostic]]:
    """Parse one file into a :class:`ModuleInfo` plus waiver problems."""
    path = Path(path)
    text = path.read_text(encoding="utf-8") if source is None else source
    tree = ast.parse(text, filename=str(path))
    _attach_parents(tree)
    info = ModuleInfo(
        path=str(path),
        module=module_name or _module_name_for(path),
        source=text,
        tree=tree,
    )
    _collect_bindings(info)
    info.waivers, problems = _parse_waivers(text, str(path))
    return info, problems


def default_tree() -> Path:
    """The tree ``python -m repro.contracts`` lints by default: the
    installed ``repro`` package itself."""
    return Path(__file__).resolve().parents[1]


def _run(
    modules: list[ModuleInfo],
    waiver_problems: list[Diagnostic],
    deep: bool = False,
    shallow: bool = True,
) -> LintResult:
    from repro.contracts.rules import RULES

    project = Project(modules)
    by_path = {info.path: info for info in modules}
    violations: list[Diagnostic] = list(waiver_problems)
    waived: list[tuple[Diagnostic, Waiver]] = []

    def settle(diagnostic: Diagnostic) -> None:
        owner = by_path.get(diagnostic.path)
        for waiver in owner.waivers if owner is not None else ():
            if waiver.covers(diagnostic):
                waiver.used = True
                waived.append((diagnostic, waiver))
                return
        violations.append(diagnostic)

    if shallow:
        for info in modules:
            for rule in RULES:
                for diagnostic in rule.check(info, project):
                    settle(diagnostic)
    if deep:
        from repro.contracts.deep import DEEP_RULES

        for rule in DEEP_RULES:
            for diagnostic in rule.check_project(project):
                settle(diagnostic)

    # A waiver naming only deep rules is live even when the deep passes did
    # not run (the shallow gate must not call the deep inventory stale).
    from repro.contracts.deep import deep_rule_ids

    deep_ids = set(deep_rule_ids())
    for info in modules:
        for waiver in info.waivers:
            if waiver.used:
                continue
            if not deep and set(waiver.rules) & deep_ids:
                continue
            if not shallow and not (set(waiver.rules) & deep_ids):
                continue
            violations.append(
                Diagnostic(
                    info.path,
                    waiver.line,
                    1,
                    STALE_WAIVER,
                    "waiver suppresses nothing -- remove it "
                    f"(rules: {', '.join(waiver.rules)})",
                )
            )
    violations.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return LintResult(violations=violations, waived=waived, files=len(modules))


def _walk_dir(root: Path) -> list[Path]:
    """Every ``*.py`` under ``root`` except the deliberately-broken lint
    fixture corpus (``tests/data``)."""
    files = []
    for file in sorted(root.rglob("*.py")):
        parts = file.parts
        if "data" in parts and "tests" in parts[: parts.index("data")]:
            continue
        files.append(file)
    return files


def lint_paths(
    paths: list[str | Path], deep: bool = False, shallow: bool = True
) -> LintResult:
    """Lint an explicit list of files and/or directories."""
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(_walk_dir(entry))
        else:
            files.append(entry)
    modules: list[ModuleInfo] = []
    problems: list[Diagnostic] = []
    for file in files:
        info, file_problems = load_module(file)
        modules.append(info)
        problems.extend(file_problems)
    return _run(modules, problems, deep=deep, shallow=shallow)


def lint_tree(
    root: str | Path | None = None, deep: bool = False, shallow: bool = True
) -> LintResult:
    """Lint a package tree (default: the live ``repro`` package)."""
    return lint_paths(
        [root if root is not None else default_tree()], deep=deep, shallow=shallow
    )


def lint_source(
    source: str,
    path: str = "<string>",
    module_name: str | None = None,
    deep: bool = False,
    shallow: bool = True,
) -> LintResult:
    """Lint one in-memory source blob (the fixture-corpus entry point)."""
    info, problems = load_module(Path(path), module_name=module_name, source=source)
    return _run([info], problems, deep=deep, shallow=shallow)
