"""The waiver census as a machine-readable artifact.

The summary line of every lint run prints the waiver counts; this module
writes the same census as stable JSON (``artifacts/lint-census.json`` in
CI).  The committed file is the baseline: the static-analysis job
regenerates it and fails on any drift, so a diff that grows the waiver
inventory must visibly touch the census file to land.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.atomicio import atomic_write_text
from repro.contracts.engine import LintResult

__all__ = ["census_payload", "write_census"]


def _relative(path: str, root: Path) -> str:
    """``root``-relative path when the file sits under it, POSIX-style so
    the artifact is identical across platforms."""
    resolved = Path(path).resolve()
    try:
        return resolved.relative_to(root).as_posix()
    except ValueError:
        return resolved.as_posix()


def census_payload(result: LintResult, root: Path | None = None) -> dict:
    root = (root or Path.cwd()).resolve()
    by_file: dict[str, int] = {}
    reasons: dict[str, list[str]] = {}
    for diagnostic, waiver in result.waived:
        key = _relative(diagnostic.path, root)
        by_file[key] = by_file.get(key, 0) + 1
        reasons.setdefault(key, [])
        if waiver.reason not in reasons[key]:
            reasons[key].append(waiver.reason)
    return {
        "files": result.files,
        "violations": len(result.violations),
        "waived_total": len(result.waived),
        "waived_by_rule": result.waived_by_rule(),
        "waived_by_file": dict(sorted(by_file.items())),
        "reasons_by_file": {key: sorted(values) for key, values in sorted(reasons.items())},
    }


def write_census(
    result: LintResult, path: str | Path, root: Path | None = None
) -> None:
    payload = census_payload(result, root=root)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(Path(path), json.dumps(payload, indent=2, sort_keys=True) + "\n")
