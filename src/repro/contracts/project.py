"""The whole-program model shared by the deep passes.

The per-file engine already builds a :class:`~repro.contracts.engine.Project`
(modules + import edges).  The deep passes (:mod:`repro.contracts.deep`) need
more: which dotted name a call target resolves to *across* modules, where a
given function or method is called from, and which module-level names are
compile-time integer constants.  This module derives all of that from the
``Project`` once and hands the passes one :class:`ProjectIndex`.

Everything here is resolution machinery, not policy -- no rule logic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.contracts.engine import (
    ModuleInfo,
    Project,
    enclosing_function,
    qualified_name,
)

__all__ = ["CallSite", "FunctionDecl", "ProjectIndex", "build_index"]


@dataclass
class FunctionDecl:
    """One function or method definition, with enough signature structure to
    bind call-site arguments to parameters."""

    info: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: ``module.func`` for functions, ``module.Class.func`` for methods.
    qname: str
    is_method: bool

    @property
    def name(self) -> str:
        return self.node.name

    def parameters(self) -> list[str]:
        """Positional parameter names, ``self`` stripped for methods."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.is_method and names:
            names = names[1:]
        return names

    @property
    def vararg(self) -> str | None:
        return self.node.args.vararg.arg if self.node.args.vararg else None


@dataclass
class CallSite:
    """One resolved call of a :class:`FunctionDecl`."""

    info: ModuleInfo
    node: ast.Call
    decl: FunctionDecl

    def bound_positional(self) -> tuple[list[ast.expr], list[ast.expr]]:
        """Split the call's positional arguments into (fixed, overflow):
        ``fixed`` lines up with the declaration's named positional parameters
        and ``overflow`` is whatever lands in its ``*args``."""
        names = self.decl.parameters()
        args = list(self.node.args)
        return args[: len(names)], args[len(names):]


@dataclass
class ProjectIndex:
    """Project-wide resolution tables for the deep passes."""

    project: Project
    #: every function/method declaration, keyed by qualified name.
    functions: dict[str, FunctionDecl] = field(default_factory=dict)
    #: bare function/method name -> declarations sharing it.
    by_name: dict[str, list[FunctionDecl]] = field(default_factory=dict)
    #: declaration qname -> resolved call sites anywhere in the project.
    call_sites: dict[str, list[CallSite]] = field(default_factory=dict)
    #: module name -> {name: int} for module-level integer constants.
    constants: dict[str, dict[str, int]] = field(default_factory=dict)

    def constant_value(self, name: ast.Name, info: ModuleInfo) -> int | None:
        """The compile-time integer a name resolves to, following one
        ``from module import NAME`` hop, or ``None``."""
        local = self.constants.get(info.module, {})
        if name.id in local:
            return local[name.id]
        origin = info.aliases.get(name.id)
        if origin and "." in origin:
            module, _, symbol = origin.rpartition(".")
            return self.constants.get(module, {}).get(symbol)
        return None

    def declaration_of(self, node: ast.AST) -> FunctionDecl | None:
        """The declaration whose body contains ``node``."""
        function = enclosing_function(node)
        if function is None:
            return None
        for decl in self.functions.values():
            if decl.node is function:
                return decl
        return None


def _declarations(info: ModuleInfo) -> list[FunctionDecl]:
    decls = []
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decls.append(FunctionDecl(info, node, f"{info.module}.{node.name}", False))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    decls.append(
                        FunctionDecl(
                            info, item, f"{info.module}.{node.name}.{item.name}", True
                        )
                    )
    return decls


def _module_constants(info: ModuleInfo) -> dict[str, int]:
    values: dict[str, int] = {}
    for node in info.tree.body:
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Constant):
            continue
        if not isinstance(node.value.value, int) or isinstance(node.value.value, bool):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                values[target.id] = node.value.value
    return values


def _resolve_call(
    node: ast.Call, info: ModuleInfo, index: ProjectIndex
) -> FunctionDecl | None:
    func = node.func
    if isinstance(func, ast.Name):
        origin = info.aliases.get(func.id, func.id)
        qname = origin if "." in origin else f"{info.module}.{origin}"
        return index.functions.get(qname)
    if isinstance(func, ast.Attribute):
        dotted = qualified_name(func, info)
        if dotted and dotted in index.functions:
            return index.functions[dotted]
        # ``self._roll(...)`` / ``plan.chunk_directive(...)``: the receiver
        # type is unknown, so bind by method name when it is unambiguous
        # across the whole project.
        candidates = [
            d for d in index.by_name.get(func.attr, []) if d.is_method
        ]
        if len(candidates) == 1:
            return candidates[0]
    return None


def build_index(project: Project) -> ProjectIndex:
    index = ProjectIndex(project)
    modules = list(project.modules.values())
    for info in modules:
        for decl in _declarations(info):
            index.functions[decl.qname] = decl
            index.by_name.setdefault(decl.name, []).append(decl)
        index.constants[info.module] = _module_constants(info)
    for info in modules:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            decl = _resolve_call(node, info, index)
            if decl is not None:
                index.call_sites.setdefault(decl.qname, []).append(
                    CallSite(info, node, decl)
                )
    return index
