"""Optional external analyzers: ruff and mypy, gated on availability.

The container this repo grows in does not ship ruff or mypy and cannot
install them, so ``repro-experiments lint`` treats both as *optional
amplifiers*: when importable they run (configured by ``pyproject.toml``)
and their exit status folds into the lint gate; when absent they are
skipped with a printed notice and only reprolint gates.  CI installs both,
so the full static-analysis surface is enforced on every push even when a
developer machine lacks the tools.

The mypy pass is a **ratchet**: ``tool.repro.mypy-ratchet.max-errors`` in
``pyproject.toml`` records the committed error budget, and the pass fails
only when the live count *rises* above it.  Annotation debt can be paid
down incrementally (the pass prints a nudge to tighten the budget when
the count drops) but never silently re-accumulated.
"""

from __future__ import annotations

import importlib.util
import re
import subprocess
import sys
from pathlib import Path

__all__ = [
    "available",
    "mypy_error_budget",
    "run_external",
    "run_mypy",
    "run_ruff",
]

_MYPY_ERRORS_RE = re.compile(r"Found (\d+) errors?")


def available(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def run_ruff(paths: list[str]) -> int | None:
    """``ruff check`` over ``paths``; ``None`` when ruff is not installed."""
    if not available("ruff"):
        print("[static] ruff not installed; skipping style pass")
        return None
    print("[static] ruff check", *paths)
    return subprocess.call([sys.executable, "-m", "ruff", "check", *paths])


def mypy_error_budget(start: Path | None = None) -> int:
    """The committed mypy error budget: ``tool.repro.mypy-ratchet.max-errors``
    from the nearest ``pyproject.toml`` at or above ``start`` (default: the
    working directory).  0 when no budget is recorded."""
    try:
        import tomllib
    except ImportError:  # Python 3.10: no budget file parsing, strict gate
        return 0
    origin = (start or Path.cwd()).resolve()
    for root in (origin, *origin.parents):
        candidate = root / "pyproject.toml"
        if not candidate.is_file():
            continue
        with candidate.open("rb") as handle:
            data = tomllib.load(handle)
        section = data.get("tool", {}).get("repro", {}).get("mypy-ratchet", {})
        return int(section.get("max-errors", 0))
    return 0


def run_mypy(paths: list[str]) -> int | None:
    """``mypy`` over ``paths`` (or the ``pyproject.toml`` file set when
    empty), gated by the committed ratchet; ``None`` when mypy is not
    installed."""
    if not available("mypy"):
        print("[static] mypy not installed; skipping type pass")
        return None
    budget = mypy_error_budget()
    print("[static] mypy", *paths, f"(ratchet: {budget} error(s) allowed)")
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", *paths], capture_output=True, text=True
    )
    output = completed.stdout + completed.stderr
    if output:
        print(output, end="" if output.endswith("\n") else "\n")
    match = _MYPY_ERRORS_RE.search(output)
    if match is None and completed.returncode != 0:
        return completed.returncode  # crash / config error: fail loudly
    errors = int(match.group(1)) if match else 0
    if errors > budget:
        print(
            f"[static] mypy ratchet FAILED: {errors} error(s) > {budget} "
            "allowed -- fix the new errors (or, for pre-existing debt being "
            "surfaced by a config change, raise "
            "tool.repro.mypy-ratchet.max-errors with a reviewed diff)"
        )
        return 1
    if errors < budget:
        print(
            f"[static] mypy ratchet: {errors} error(s) < {budget} allowed -- "
            f"tighten max-errors to {errors} so the progress sticks"
        )
    return 0


def run_external(paths: list[str]) -> int:
    """Run every available external analyzer; 0 iff none that ran failed."""
    status = 0
    for runner in (run_ruff, run_mypy):
        code = runner(paths)
        if code:  # None (skipped) and 0 (clean) both leave the gate alone
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.contracts.static``: run the external analyzers.

    ``--mypy`` / ``--ruff`` select a single pass (CI uses ``--mypy`` so the
    ratchet gates the type step); with neither flag both run.  Positional
    paths are forwarded; with none, ruff gets the current directory and
    mypy follows ``pyproject.toml``'s ``files``.
    """
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.contracts.static")
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--ruff", action="store_true", help="run only ruff")
    parser.add_argument("--mypy", action="store_true", help="run only mypy")
    args = parser.parse_args(argv)

    run_both = args.ruff == args.mypy  # neither or both selected
    status = 0
    if args.ruff or run_both:
        code = run_ruff(args.paths or ["."])
        status = max(status, 1 if code else 0)
    if args.mypy or run_both:
        code = run_mypy(args.paths)
        status = max(status, 1 if code else 0)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
