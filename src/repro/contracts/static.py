"""Optional external analyzers: ruff and mypy, gated on availability.

The container this repo grows in does not ship ruff or mypy and cannot
install them, so ``repro-experiments lint`` treats both as *optional
amplifiers*: when importable they run (configured by ``pyproject.toml``)
and their exit status folds into the lint gate; when absent they are
skipped with a printed notice and only reprolint gates.  CI installs both,
so the full static-analysis surface is enforced on every push even when a
developer machine lacks the tools.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys

__all__ = ["available", "run_external", "run_mypy", "run_ruff"]


def available(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def run_ruff(paths: list[str]) -> int | None:
    """``ruff check`` over ``paths``; ``None`` when ruff is not installed."""
    if not available("ruff"):
        print("[static] ruff not installed; skipping style pass")
        return None
    print("[static] ruff check", *paths)
    return subprocess.call([sys.executable, "-m", "ruff", "check", *paths])


def run_mypy(paths: list[str]) -> int | None:
    """``mypy`` over ``paths``; ``None`` when mypy is not installed."""
    if not available("mypy"):
        print("[static] mypy not installed; skipping type pass")
        return None
    print("[static] mypy", *paths)
    return subprocess.call([sys.executable, "-m", "mypy", *paths])


def run_external(paths: list[str]) -> int:
    """Run every available external analyzer; 0 iff none that ran failed."""
    status = 0
    for runner in (run_ruff, run_mypy):
        code = runner(paths)
        if code:  # None (skipped) and 0 (clean) both leave the gate alone
            status = 1
    return status
