"""reprolint: the determinism contract, machine-checked at parse time.

Every byte-identity guarantee this reproduction makes is a *convention*:
keyed RNG streams (``default_rng([seed, domain, lane])``, never scalar
seeds or seed arithmetic), injectable clocks instead of wall-clock reads,
a frozen scalar reference per batched ``*_lanes`` kernel, temp-file +
``os.replace`` persistence, no iteration over unordered containers on
paths that feed RNG draws or cache keys, and no hard process exits outside
the fault injector.  Historically each of those conventions was enforced
only at runtime, after a violation had already shipped (the PR 4
``[seed + 1, lane]`` stream collision, the PR 7 torn cache write).  This
package enforces them at parse time with an AST-based rule engine.

Usage::

    python -m repro.contracts              # lint src/repro, exit 1 on violations
    python -m repro.contracts path.py ...  # lint specific files
    repro-experiments lint                 # same tree + ruff/mypy when installed

Intentional exceptions are waived inline, never silently::

    rng = np.random.default_rng(seed)  # repro: allow[RNG-KEYED] reason=training master stream

The reason is mandatory; a reasonless waiver and a waiver that no longer
suppresses anything are themselves diagnostics (``BAD-WAIVER`` /
``STALE-WAIVER``), so the waiver inventory cannot rot.  ``docs/contracts.md``
codifies each rule, the historical bug motivating it, and how to waive.
"""

from repro.contracts.engine import (
    Diagnostic,
    LintResult,
    ModuleInfo,
    Project,
    Waiver,
    default_tree,
    lint_paths,
    lint_source,
    lint_tree,
)
from repro.contracts.rules import RULES, Rule, rule_ids

__all__ = [
    "Diagnostic",
    "LintResult",
    "ModuleInfo",
    "Project",
    "RULES",
    "Rule",
    "Waiver",
    "default_tree",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "rule_ids",
]
