"""Whole-program passes: lane-shape inference, RNG-key provenance, layering.

The shallow rules (:mod:`repro.contracts.rules`) pattern-match one module at
a time.  The three bug classes that actually shipped were cross-file
properties, so these passes analyze the whole :class:`~repro.contracts.engine.
Project` at once (sharing the resolution tables of
:mod:`repro.contracts.project`):

``LANE-SHAPE``
    Abstract interpretation over numpy expressions in every public
    ``*_lanes`` kernel.  The abstract domain tracks whether a value carries
    the leading lane axis (``LANE``), definitely does not (``NOLANE``), is
    the lane count itself (``LANECOUNT``), or is unknown; violations are
    axis-dropping reductions (``lane_array.sum()`` with no axis, or
    ``axis=0``), boolean-mask subscript reads (which compress and reorder
    lanes), and lane-axis moves (``.T`` / ``transpose`` / ``swapaxes``
    touching axis 0).  Only definite ``LANE`` values flag, so ``UNKNOWN``
    never produces a false positive.

``RNG-PROVENANCE``
    Interprocedural comparison of every keyed ``default_rng([...])``
    construction site.  Key elements abstract to integer constants,
    opaque variables, and ``*``-splats; parameters are substituted from
    resolved call sites (one hop), so ``FaultPlan._roll``'s ``domain``
    argument resolves to its per-call-site ``_DOMAIN_*`` constant.  Two
    distinct streams whose symbolic keys can unify -- no fixed position
    holds two different constants and the lengths are compatible -- are a
    collision: the PR 4 ``[seed + 1, lane]`` bug class, proven impossible
    rather than grepped for.

``LAYER-SAFE``
    The declared module-dependency DAG enforced against the real import
    graph: foundation (atomicio/constants/contracts) < domain models
    (nn/sim/robot/pipeline/reliability) < core < accelerator < analysis <
    serving < experiments < cli.  Imports may only point downward;
    same-layer imports must stay inside one subpackage.

``SPAWN-SAFE``
    Everything dispatched through an ``EvaluationPool``-style worker pool
    must be picklable by construction under the spawn context: worker
    callables must be module-level functions (never lambdas, nested
    closures or bound methods) and no lambda may ride along in a dispatch
    payload.

All four emit :class:`~repro.contracts.engine.Diagnostic` objects through
the normal engine plumbing, so ``# repro: allow[RULE] reason=...`` waivers
apply exactly as they do for the shallow rules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.contracts.engine import (
    Diagnostic,
    ModuleInfo,
    Project,
    qualified_name,
)
from repro.contracts.project import (
    FunctionDecl,
    ProjectIndex,
    build_index,
)

__all__ = ["DEEP_RULES", "DeepRule", "deep_rule_ids"]


class DeepRule:
    """Base class for whole-program passes."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, info: ModuleInfo, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=info.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


# ---------------------------------------------------------------------------
# LANE-SHAPE


LANE = "lane"
LANE_BOOL = "lane_bool"  # boolean mask over the lane axis
NOLANE = "nolane"
UNKNOWN = "unknown"
LANECOUNT = "lanecount"  # the integer number of lanes
RANGELANE = "rangelane"  # range(lanecount)
SHAPE_LANE = "shape_lane"  # the .shape tuple of a LANE array

_REDUCTIONS = {
    "sum", "mean", "prod", "product", "min", "max", "amin", "amax", "median",
    "std", "var", "average", "ptp", "nansum", "nanmean", "nanmin", "nanmax",
}
_METHOD_REDUCTIONS = {"sum", "mean", "prod", "min", "max", "std", "var", "ptp"}
_ELEMENTWISE = {
    "where", "clip", "abs", "absolute", "sqrt", "exp", "log", "log1p", "sign",
    "minimum", "maximum", "copysign", "power", "mod", "floor", "ceil",
    "round", "nan_to_num", "tanh", "cos", "sin", "arctan2", "hypot", "square",
    "negative", "add", "subtract", "multiply", "divide", "true_divide",
    "matmul", "cross",
}
_BOOL_ELEMENTWISE = {"isfinite", "isnan", "isclose", "logical_and",
                     "logical_or", "logical_not", "logical_xor"}
_PRESERVING_METHODS = {"astype", "copy", "clip", "round"}


def _combine(*kinds: str) -> str:
    if any(k in (LANE, LANE_BOOL) for k in kinds):
        return LANE
    if any(k == UNKNOWN for k in kinds):
        return UNKNOWN
    return NOLANE


def _annotation_kind(ann: ast.expr | None, info: ModuleInfo) -> str:
    if ann is None:
        return UNKNOWN
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return LANE if "ndarray" in ann.value else UNKNOWN
    if isinstance(ann, (ast.Name, ast.Attribute)):
        dotted = qualified_name(ann, info)
        if dotted == "numpy.ndarray":
            return LANE
        if dotted in ("int", "float", "bool", "str"):
            return NOLANE
    return UNKNOWN


class _LaneInterpreter:
    """One pass over one kernel body, in statement order (no fixpoint: the
    kernels are straight-line numpy code and a single pass is what a reader
    simulates too)."""

    def __init__(self, rule: "LaneShapeRule", info: ModuleInfo):
        self.rule = rule
        self.info = info
        self.env: dict[str, str] = {}
        self.findings: list[Diagnostic] = []

    def flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.diagnostic(self.info, node, message))

    # -- statements --------------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            self.assign(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            kind = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                ann = _annotation_kind(node.annotation, self.info)
                self.env[node.target.id] = ann if ann != UNKNOWN else kind
        elif isinstance(node, ast.AugAssign):
            kind = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                current = self.env.get(node.target.id, UNKNOWN)
                self.env[node.target.id] = _combine(current, kind)
            else:
                self.eval_store_target(node.target)
        elif isinstance(node, (ast.Expr, ast.Return)):
            if node.value is not None:
                self.eval(node.value)
        elif isinstance(node, ast.If):
            self.eval(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.For):
            self.bind_loop_target(node.target, self.eval(node.iter))
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.While):
            self.eval(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.With):
            for item in node.items:
                self.eval(item.context_expr)
            self.run(node.body)
        elif isinstance(node, ast.Try):
            self.run(node.body)
            for handler in node.handlers:
                self.run(handler.body)
            self.run(node.orelse)
            self.run(node.finalbody)
        elif isinstance(node, ast.Match):
            self.eval(node.subject)
            for case in node.cases:
                self.run(case.body)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for value in (getattr(node, "exc", None), getattr(node, "test", None),
                          getattr(node, "msg", None)):
                if value is not None:
                    self.eval(value)
        # nested defs / classes / pass / break / continue: nothing to track

    def assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        kind = self.eval(value)
        for target in targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = kind
            elif isinstance(target, ast.Tuple):
                self.bind_tuple_target(target, value, kind)
            else:
                self.eval_store_target(target)

    def bind_tuple_target(
        self, target: ast.Tuple, value: ast.expr, kind: str
    ) -> None:
        names = [t.id for t in target.elts if isinstance(t, ast.Name)]
        if kind == SHAPE_LANE:
            # lanes, n = q.shape -- the leading dimension is the lane count
            for position, t in enumerate(target.elts):
                if isinstance(t, ast.Name):
                    self.env[t.id] = LANECOUNT if position == 0 else NOLANE
            return
        if kind == LANE:
            # tuple-unpack of a *_lanes kernel result: each part is stacked
            for name in names:
                self.env[name] = LANE
            return
        if isinstance(value, ast.Tuple) and len(value.elts) == len(target.elts):
            for t, v in zip(target.elts, value.elts):
                if isinstance(t, ast.Name):
                    self.env[t.id] = self.eval(v)
            return
        for name in names:
            self.env[name] = UNKNOWN

    def bind_loop_target(self, target: ast.expr, iter_kind: str) -> None:
        if isinstance(target, ast.Name):
            # iterating a lane-stacked array yields per-lane rows; iterating
            # range(lanes) yields plain integers -- neither carries the axis
            self.env[target.id] = (
                NOLANE if iter_kind in (LANE, LANE_BOOL, RANGELANE) else UNKNOWN
            )
        elif isinstance(target, ast.Tuple):
            for t in target.elts:
                self.bind_loop_target(t, UNKNOWN)

    def eval_store_target(self, target: ast.expr) -> None:
        """Mask *writes* (``out[~moving] = 0.0``) are lane-aligned and fine;
        only evaluate the pieces for nested findings."""
        if isinstance(target, ast.Subscript):
            self.eval(target.value)
            if not self._is_mask_expr(target.slice):
                self.eval(target.slice)
        elif isinstance(target, ast.Attribute):
            self.eval(target.value)

    def _is_mask_expr(self, node: ast.expr) -> bool:
        return self.eval(node) == LANE_BOOL

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            return NOLANE
        if isinstance(node, ast.NamedExpr):
            kind = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = kind
            return kind
        if isinstance(node, ast.BinOp):
            left, right = self.eval(node.left), self.eval(node.right)
            if (
                isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.BitXor))
                and LANE_BOOL in (left, right)
            ):
                return LANE_BOOL
            return _combine(left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand)
            if isinstance(node.op, ast.Invert) and operand == LANE_BOOL:
                return LANE_BOOL
            return _combine(operand)
        if isinstance(node, ast.BoolOp):
            kinds = [self.eval(v) for v in node.values]
            return LANE_BOOL if LANE_BOOL in kinds else _combine(*kinds)
        if isinstance(node, ast.Compare):
            kinds = [self.eval(node.left)] + [self.eval(c) for c in node.comparators]
            return LANE_BOOL if _combine(*kinds) == LANE else NOLANE
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return _combine(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Call):
            return self.call(node)
        if isinstance(node, ast.Attribute):
            return self.attribute(node)
        if isinstance(node, ast.Subscript):
            return self.subscript(node)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for element in node.elts:
                self.eval(element)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self.eval(value)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self.comprehension(node)
            return UNKNOWN
        if isinstance(node, ast.DictComp):
            saved = dict(self.env)
            for gen in node.generators:
                self.bind_loop_target(gen.target, self.eval(gen.iter))
            self.eval(node.key)
            self.eval(node.value)
            self.env = saved
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.eval(value.value)
            return NOLANE
        if isinstance(node, ast.Lambda):
            return UNKNOWN
        return UNKNOWN

    def comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.GeneratorExp
    ) -> str:
        """Evaluate a comprehension for findings; returns the *element*
        kind (the caller decides what stacking does with it)."""
        saved = dict(self.env)
        iter_kind = UNKNOWN
        for position, gen in enumerate(node.generators):
            kind = self.eval(gen.iter)
            if position == 0:
                iter_kind = kind
            self.bind_loop_target(gen.target, kind)
            for condition in gen.ifs:
                self.eval(condition)
        self.eval(node.elt)
        self.env = saved
        return iter_kind

    def attribute(self, node: ast.Attribute) -> str:
        receiver = self.eval(node.value)
        if node.attr == "shape":
            return SHAPE_LANE if receiver in (LANE, LANE_BOOL) else NOLANE
        if node.attr == "T" and receiver in (LANE, LANE_BOOL):
            self.flag(
                node,
                ".T moves the lane axis off position 0 -- keep lanes leading "
                "(transpose only the trailing axes: np.transpose(x, (0, 2, 1)))",
            )
            return UNKNOWN
        if node.attr in ("ndim", "dtype", "size"):
            return NOLANE
        return UNKNOWN

    def subscript(self, node: ast.Subscript) -> str:
        receiver = self.eval(node.value)
        if receiver == SHAPE_LANE:
            index = node.slice
            if isinstance(index, ast.Constant) and index.value == 0:
                return LANECOUNT
            return NOLANE
        first = node.slice.elts[0] if isinstance(node.slice, ast.Tuple) else node.slice
        if receiver in (LANE, LANE_BOOL):
            if isinstance(node.slice, ast.Tuple):
                for rest in node.slice.elts[1:]:
                    if not isinstance(rest, ast.Slice):
                        self.eval(rest)
            if isinstance(first, ast.Slice):
                return receiver  # q[:, i] keeps every lane in place
            if isinstance(first, ast.Constant):
                return NOLANE  # one lane (or None-expansion): axis is gone
            kind = self.eval(first)
            if kind == LANE_BOOL:
                self.flag(
                    node,
                    "boolean-mask subscript read compresses and reorders the "
                    "lane axis -- keep results lane-aligned (np.where / "
                    "masked writes) or gather through explicit indices",
                )
                return UNKNOWN
            if kind == NOLANE:
                return NOLANE  # integer index inside a per-lane loop
            return UNKNOWN
        self.eval(node.slice)
        return NOLANE if receiver == NOLANE else UNKNOWN

    # -- calls -------------------------------------------------------------

    def call(self, node: ast.Call) -> str:
        dotted = qualified_name(node.func, self.info)
        arg_kinds = [self.eval(a) for a in node.args]
        for keyword in node.keywords:
            self.eval(keyword.value)

        if dotted == "len":
            return LANECOUNT if arg_kinds and arg_kinds[0] in (LANE, LANE_BOOL) else NOLANE
        if dotted == "range":
            return RANGELANE if LANECOUNT in arg_kinds else NOLANE
        if dotted in ("float", "int", "bool", "abs", "sorted", "zip", "enumerate",
                      "sum", "min", "max"):
            # builtin sum/min/max over generator inputs of scalars, never
            # over a lane-stacked ndarray in this tree
            return NOLANE

        if dotted and dotted.startswith("numpy."):
            return self.numpy_call(node, dotted, arg_kinds)

        name = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else node.func.id if isinstance(node.func, ast.Name) else ""
        )
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value)
            if receiver in (LANE, LANE_BOOL):
                return self.lane_method(node, name, receiver)
        if name.endswith("_lanes"):
            return LANE  # another batched kernel: lanes in, lanes out
        return UNKNOWN

    def numpy_call(self, node: ast.Call, dotted: str, arg_kinds: list[str]) -> str:
        name = dotted[len("numpy."):]
        first = arg_kinds[0] if arg_kinds else UNKNOWN

        if name in ("zeros", "ones", "empty", "full"):
            return LANE if self.shape_leads_with_lanecount(node.args[0]) else (
                NOLANE if node.args and first != UNKNOWN else UNKNOWN
            )
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            return LANE if first in (LANE, LANE_BOOL) else first
        if name == "tile":
            return LANE if len(node.args) > 1 and self.shape_leads_with_lanecount(node.args[1]) else UNKNOWN
        if name == "broadcast_to":
            return LANE if len(node.args) > 1 and self.shape_leads_with_lanecount(node.args[1]) else UNKNOWN
        if name == "repeat":
            repeats = self.eval(node.args[1]) if len(node.args) > 1 else UNKNOWN
            axis = self.literal_axis(node)
            return LANE if repeats == LANECOUNT and axis == 0 else UNKNOWN
        if name in ("eye", "arange", "linspace", "identity"):
            return NOLANE
        if name in ("array", "asarray", "ascontiguousarray"):
            if node.args and isinstance(node.args[0], (ast.ListComp, ast.GeneratorExp)):
                element = self.comprehension(node.args[0])
                return LANE if element in (LANE, LANE_BOOL, RANGELANE) else UNKNOWN
            return first
        if name == "stack":
            axis = self.literal_axis(node)
            if node.args and isinstance(node.args[0], (ast.ListComp, ast.GeneratorExp)):
                element = self.comprehension(node.args[0])
                if element in (LANE, LANE_BOOL, RANGELANE) and axis in (0, None):
                    return LANE
            return UNKNOWN
        if name in ("transpose", "moveaxis", "swapaxes"):
            return self.axis_move(node, name, first)
        if name in _REDUCTIONS or name == "linalg.norm":
            return self.reduction(node, f"np.{name}", first, arg_offset=1)
        if name in ("any", "all", "count_nonzero", "argmax", "argmin"):
            return NOLANE
        if name in _ELEMENTWISE or name == "linalg.solve":
            return _combine(*arg_kinds) if arg_kinds else UNKNOWN
        if name in _BOOL_ELEMENTWISE:
            return LANE_BOOL if _combine(*arg_kinds) == LANE else NOLANE
        if name == "nonzero":
            return UNKNOWN  # index arrays: the sanctioned gather currency
        return UNKNOWN

    def lane_method(self, node: ast.Call, name: str, receiver: str) -> str:
        if name in _METHOD_REDUCTIONS:
            return self.reduction(node, f".{name}()", receiver, arg_offset=0)
        if name in ("any", "all", "argmax", "argmin", "item", "tolist"):
            return NOLANE
        if name in _PRESERVING_METHODS:
            return receiver
        if name in ("transpose", "swapaxes"):
            return self.axis_move(node, name, receiver, method=True)
        return UNKNOWN

    def shape_leads_with_lanecount(self, shape: ast.expr) -> bool:
        if isinstance(shape, (ast.Tuple, ast.List)) and shape.elts:
            return self.eval(shape.elts[0]) == LANECOUNT
        return self.eval(shape) == LANECOUNT

    def literal_axis(self, node: ast.Call) -> object:
        """The literal value of an ``axis=`` keyword: an int, a tuple of
        ints, ``None`` when absent or ``axis=None``, or ``...`` (unknown)."""
        for keyword in node.keywords:
            if keyword.arg == "axis":
                value = keyword.value
                if isinstance(value, ast.Constant):
                    return value.value
                if isinstance(value, ast.Tuple) and all(
                    isinstance(e, ast.Constant) for e in value.elts
                ):
                    return tuple(e.value for e in value.elts)
                if isinstance(value, ast.UnaryOp) and isinstance(
                    value.op, ast.USub
                ) and isinstance(value.operand, ast.Constant):
                    return -value.operand.value
                return ...
        return None

    def reduction(
        self, node: ast.Call, label: str, target: str, arg_offset: int
    ) -> str:
        if target not in (LANE, LANE_BOOL):
            return UNKNOWN if target == UNKNOWN else NOLANE
        axis = self.literal_axis(node)
        if axis is None and len(node.args) > arg_offset:
            positional = node.args[arg_offset]
            if isinstance(positional, ast.Constant):
                axis = positional.value
        drops = (
            axis is None
            or axis == 0
            or (isinstance(axis, tuple) and 0 in axis)
        )
        if drops:
            self.flag(
                node,
                f"{label} reduces across the lane axis (axis 0 is implied or "
                "named) -- pass a trailing axis (axis=1, axis=(1, 2), ...) so "
                "every lane keeps its own result",
            )
            return NOLANE
        if axis is ...:
            return UNKNOWN
        return LANE  # trailing-axis reduction keeps the leading lane axis

    def axis_move(
        self, node: ast.Call, name: str, target: str, method: bool = False
    ) -> str:
        if target not in (LANE, LANE_BOOL):
            return UNKNOWN
        offset = 0 if method else 1
        axes = node.args[offset:]
        moved = False
        if name == "transpose":
            if not axes:
                moved = True  # full reversal puts lanes last
            elif isinstance(axes[0], (ast.Tuple, ast.List)) and axes[0].elts:
                lead = axes[0].elts[0]
                moved = not (isinstance(lead, ast.Constant) and lead.value == 0)
        elif name in ("swapaxes", "moveaxis"):
            moved = any(
                isinstance(a, ast.Constant) and a.value == 0 for a in axes[:2]
            )
        if moved:
            self.flag(
                node,
                f"{name} moves the lane axis off position 0 -- every batched "
                "kernel keeps lanes leading so downstream writes stay "
                "lane-aligned",
            )
            return UNKNOWN
        return target


class LaneShapeRule(DeepRule):
    id = "LANE-SHAPE"
    title = "lane axis stays leading and intact through every *_lanes kernel"
    rationale = (
        "The batched rewrite keeps results bitwise-equal to the scalar "
        "references only while every intermediate keeps lane i's data at "
        "index i of axis 0.  An axis-dropping reduction, a boolean-mask "
        "compression read, or a transpose that moves axis 0 silently mixes "
        "lanes -- the differential harness catches it at runtime, this pass "
        "catches it at parse time."
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        from repro.contracts.project import _declarations

        for info in project.modules.values():
            for decl in _declarations(info):
                name = decl.node.name
                if name.startswith("_") or not name.endswith("_lanes"):
                    continue
                yield from self.check_kernel(info, decl)

    def check_kernel(
        self, info: ModuleInfo, decl: FunctionDecl
    ) -> Iterator[Diagnostic]:
        interpreter = _LaneInterpreter(self, info)
        args = decl.node.args
        params = list(args.posonlyargs + args.args)
        if decl.is_method and params:
            interpreter.env[params[0].arg] = UNKNOWN
            params = params[1:]
        has_lane = False
        for param in params + list(args.kwonlyargs):
            kind = _annotation_kind(param.annotation, info)
            interpreter.env[param.arg] = kind
            has_lane = has_lane or kind == LANE
        if not has_lane:
            return  # nothing typed as an ndarray: no roots to propagate
        interpreter.run(decl.node.body)
        # sub-expressions can be abstractly evaluated more than once (a
        # comprehension argument is walked again by the stacking rule, say);
        # one finding per source location is what the reader needs
        seen: set[tuple] = set()
        for finding in interpreter.findings:
            anchor = (finding.line, finding.col, finding.message)
            if anchor not in seen:
                seen.add(anchor)
                yield finding


# ---------------------------------------------------------------------------
# RNG-PROVENANCE


_CONST = "const"
_VAR = "var"
_STAR = "star"
_PARAM = "param"
_PARAM_STAR = "param_star"

Element = tuple  # ("const", int) | ("var",) | ("star",) | ("param", name) | ...


def _keys_can_collide(a: tuple, b: tuple) -> bool:
    """True when some assignment of variable values and star lengths makes
    the two keys identical.  Constants are the only guaranteed separators;
    every variable ranges over all integers (streams are compared across
    *runs*, so even ``seed + 1`` vs ``seed + 2`` can land on one value)."""
    if not a and not b:
        return True
    if a and a[0][0] == _STAR:
        return _keys_can_collide(a[1:], b) or (
            bool(b) and _keys_can_collide(a, b[1:])
        )
    if b and b[0][0] == _STAR:
        return _keys_can_collide(b, a)
    if not a or not b:
        return False
    head_a, head_b = a[0], b[0]
    if head_a[0] == _CONST and head_b[0] == _CONST and head_a[1] != head_b[1]:
        return False
    return _keys_can_collide(a[1:], b[1:])


def _format_key(key: tuple) -> str:
    parts = []
    for element in key:
        if element[0] == _CONST:
            parts.append(str(element[1]))
        elif element[0] == _STAR:
            parts.append("*")
        else:
            parts.append("?")
    return "[" + ", ".join(parts) + "]"


class _Stream:
    """One concrete keyed stream: a construction site, possibly specialized
    by one call site of its enclosing function."""

    def __init__(self, info: ModuleInfo, node: ast.Call, key: tuple):
        self.info = info
        self.node = node
        self.key = key

    @property
    def anchor(self) -> tuple:
        return (self.info.path, self.node.lineno, self.node.col_offset)


class RngProvenanceRule(DeepRule):
    id = "RNG-PROVENANCE"
    title = "distinct keyed RNG streams must have provably disjoint keys"
    rationale = (
        "PR 4 keyed lane generators [seed + 1, lane] / [seed + 2, lane]: "
        "across seeds the two families collide (seed S's feedback stream is "
        "seed S+1's env stream).  The shallow RNG-KEYED rule bans the "
        "arithmetic shape; this pass proves the global property -- every "
        "pair of distinct default_rng key tuples in the tree differs in a "
        "fixed integer position (a domain tag), so no assignment of seeds, "
        "lanes or identities can make two streams identical."
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        index = build_index(project)
        streams: list[_Stream] = []
        for info in project.modules.values():
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                if qualified_name(node.func, info) != "numpy.random.default_rng":
                    continue
                if not node.args or not isinstance(node.args[0], (ast.List, ast.Tuple)):
                    continue  # scalar seeds are RNG-KEYED's (waived) business
                streams.extend(self.streams_for(info, node, index))

        streams.sort(key=lambda s: s.anchor)
        for i, later in enumerate(streams):
            for earlier in streams[:i]:
                if earlier.node is later.node and earlier.key == later.key:
                    continue
                if _keys_can_collide(earlier.key, later.key):
                    yield self.diagnostic(
                        later.info,
                        later.node,
                        f"stream key {_format_key(later.key)} can collide "
                        f"with the stream keyed {_format_key(earlier.key)} "
                        f"at {earlier.info.path}:{earlier.node.lineno} -- "
                        "give each stream family a unique fixed integer in "
                        "some key position (a domain tag)",
                    )

    def streams_for(
        self, info: ModuleInfo, node: ast.Call, index: ProjectIndex
    ) -> list[_Stream]:
        decl = index.declaration_of(node)
        key = self.abstract_key(node.args[0], info, index, decl)
        if decl is None or not any(e[0] in (_PARAM, _PARAM_STAR) for e in key):
            return [_Stream(info, node, self.generalize(key))]
        sites = index.call_sites.get(decl.qname, [])
        if not sites:
            return [_Stream(info, node, self.generalize(key))]
        seen: set[tuple] = set()
        streams = []
        for site in sites:
            specialized = self.specialize(key, decl, site, index)
            if specialized not in seen:
                seen.add(specialized)
                streams.append(_Stream(info, node, specialized))
        return streams

    def abstract_key(
        self,
        seed: ast.List | ast.Tuple,
        info: ModuleInfo,
        index: ProjectIndex,
        decl: FunctionDecl | None,
    ) -> tuple:
        params = set(decl.parameters()) if decl else set()
        vararg = decl.vararg if decl else None
        elements: list[Element] = []
        for element in seed.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, int):
                elements.append((_CONST, int(element.value)))
            elif isinstance(element, ast.Starred):
                inner = element.value
                if isinstance(inner, ast.Name) and inner.id == vararg:
                    elements.append((_PARAM_STAR, inner.id))
                else:
                    elements.append((_STAR,))
            elif isinstance(element, ast.Name):
                constant = index.constant_value(element, info)
                if constant is not None:
                    elements.append((_CONST, constant))
                elif element.id in params:
                    elements.append((_PARAM, element.id))
                else:
                    elements.append((_VAR,))
            else:
                elements.append((_VAR,))
        return tuple(elements)

    @staticmethod
    def generalize(key: tuple) -> tuple:
        return tuple(
            (_VAR,) if e[0] == _PARAM else (_STAR,) if e[0] == _PARAM_STAR else e
            for e in key
        )

    def specialize(
        self, key: tuple, decl: FunctionDecl, site, index: ProjectIndex
    ) -> tuple:
        fixed, overflow = site.bound_positional()
        binding = dict(zip(decl.parameters(), fixed))
        for keyword in site.node.keywords:
            if keyword.arg is not None:
                binding[keyword.arg] = keyword.value
        out: list[Element] = []
        for element in key:
            if element[0] == _PARAM:
                out.append(self.abstract_argument(binding.get(element[1]), site, index))
            elif element[0] == _PARAM_STAR:
                for arg in overflow:
                    if isinstance(arg, ast.Starred):
                        out.append((_STAR,))
                    else:
                        out.append(self.abstract_argument(arg, site, index))
            else:
                out.append(element)
        return tuple(out)

    @staticmethod
    def abstract_argument(arg: ast.expr | None, site, index: ProjectIndex) -> Element:
        if arg is None:
            return (_VAR,)
        if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
            return (_CONST, int(arg.value))
        if isinstance(arg, ast.Name):
            constant = index.constant_value(arg, site.info)
            if constant is not None:
                return (_CONST, constant)
        return (_VAR,)


# ---------------------------------------------------------------------------
# LAYER-SAFE


#: The declared layering, enforced bottom-up: an import may only point at
#: the same subpackage or a strictly lower layer.  docs/architecture.md
#: renders this DAG.
LAYERS: tuple[tuple[str, int], ...] = (
    ("repro.cli", 7),
    ("repro.experiments", 6),
    ("repro.serving", 5),
    ("repro.analysis", 4),
    ("repro.accelerator", 3),
    ("repro.core", 2),
    ("repro.nn", 1),
    ("repro.sim", 1),
    ("repro.robot", 1),
    ("repro.reliability", 1),
    ("repro.pipeline", 1),
    ("repro.constants", 0),
    ("repro.atomicio", 0),
    ("repro.contracts", 0),
    ("repro", 0),
)


def _layer_of(module: str) -> tuple[str, int] | None:
    for prefix, layer in LAYERS:
        if module == prefix or module.startswith(prefix + "."):
            return prefix, layer
    return None


class LayerSafeRule(DeepRule):
    id = "LAYER-SAFE"
    title = "imports follow the declared module-dependency DAG"
    rationale = (
        "The layering (domain models below core below analysis below "
        "serving below the CLIs) is what keeps spawn workers importable "
        "without dragging the serving tier in, and keeps the batched "
        "kernels free of upward knowledge.  An upward or cross-layer import "
        "compiles fine and then deadlocks a worker or creates an import "
        "cycle three PRs later."
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        for info in project.modules.values():
            placed = _layer_of(info.module)
            if placed is None:
                continue  # tests / benchmarks / fixtures sit above the DAG
            prefix, layer = placed
            for node in ast.walk(info.tree):
                targets: list[str] = []
                if isinstance(node, ast.Import):
                    targets = [a.name for a in node.names]
                elif isinstance(node, ast.ImportFrom) and not node.level:
                    if node.module == "repro":
                        targets = [f"repro.{a.name}" for a in node.names]
                    elif node.module:
                        targets = [node.module]
                for target in targets:
                    yield from self.check_edge(info, node, prefix, layer, target)

    def check_edge(
        self, info: ModuleInfo, node: ast.stmt, prefix: str, layer: int, target: str
    ) -> Iterator[Diagnostic]:
        if not target.startswith("repro"):
            return
        placed = _layer_of(target)
        if placed is None:
            return
        target_prefix, target_layer = placed
        if target_prefix == prefix:
            return  # intra-subpackage imports are always fine
        if target_layer < layer:
            return  # downward edge: the declared direction
        if target_layer == layer == 0:
            return  # foundation utilities may lean on each other
        direction = "upward" if target_layer > layer else "sideways (same layer)"
        yield self.diagnostic(
            info,
            node,
            f"{direction} import: {prefix} (layer {layer}) must not import "
            f"{target} ({target_prefix} is layer {target_layer}) -- the "
            "declared DAG is foundation < nn/sim/robot/reliability/pipeline "
            "< core < accelerator < analysis < serving < experiments < cli",
        )


# ---------------------------------------------------------------------------
# SPAWN-SAFE


_POOL_METHODS = {
    "apply", "apply_async", "map", "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "submit",
}


def _mentions_pool(node: ast.expr) -> bool:
    """The dispatch receiver names a pool (``pool.map``, ``self._pool.map``)
    -- the discriminator that keeps hypothesis's ``strategy.map(...)`` and
    other fluent APIs out of scope."""
    while isinstance(node, ast.Attribute):
        if "pool" in node.attr.lower():
            return True
        node = node.value
    return isinstance(node, ast.Name) and "pool" in node.id.lower()


class SpawnSafeRule(DeepRule):
    id = "SPAWN-SAFE"
    title = "pool-dispatched callables and payloads pickle by construction"
    rationale = (
        "EvaluationPool workers run under the spawn context: every task "
        "callable and payload crosses a pickle boundary.  Lambdas, nested "
        "closures and bound methods fail there -- at dispatch time, on a "
        "worker, long after the code parsed fine.  Workers take module-level "
        "functions and frozen dataclass chunks only."
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        for info in project.modules.values():
            top_level = {
                n.name for n in info.tree.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            # closures only: a def whose enclosing scope is another function
            # (methods are not spawn workers in this tree, and a bound-method
            # dispatch is caught separately by its Attribute shape)
            from repro.contracts.engine import enclosing_function

            nested = {
                n.name
                for n in ast.walk(info.tree)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and enclosing_function(n) is not None
            }
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                yield from self.check_call(info, node, top_level, nested)

    def check_call(
        self, info: ModuleInfo, node: ast.Call, top_level: set, nested: set
    ) -> Iterator[Diagnostic]:
        func = node.func
        workers: list[ast.expr] = []
        payloads: list[ast.expr] = []
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_METHODS
            and _mentions_pool(func)
        ):
            if node.args:
                workers.append(node.args[0])
                payloads.extend(node.args[1:])
            payloads.extend(k.value for k in node.keywords)
        elif isinstance(func, ast.Attribute) and func.attr in ("Pool", "Process"):
            for keyword in node.keywords:
                if keyword.arg in ("initializer", "target"):
                    workers.append(keyword.value)
                elif keyword.arg in ("initargs", "args"):
                    payloads.append(keyword.value)
        else:
            return

        for worker in workers:
            yield from self.check_worker(info, worker, top_level, nested)
        for payload in payloads:
            for sub in ast.walk(payload):
                if isinstance(sub, ast.Lambda):
                    yield self.diagnostic(
                        info, sub,
                        "lambda inside a pool-dispatch payload cannot cross "
                        "the spawn pickle boundary -- ship data, not "
                        "closures (frozen dataclass chunks)",
                    )

    def check_worker(
        self, info: ModuleInfo, worker: ast.expr, top_level: set, nested: set
    ) -> Iterator[Diagnostic]:
        if isinstance(worker, ast.Lambda):
            yield self.diagnostic(
                info, worker,
                "lambda dispatched to a spawn pool cannot be pickled -- "
                "define a module-level worker function",
            )
        elif isinstance(worker, ast.Name):
            if worker.id in nested and worker.id not in info.aliases:
                yield self.diagnostic(
                    info, worker,
                    f"nested function {worker.id} dispatched to a spawn pool "
                    "closes over local state and cannot be pickled -- hoist "
                    "it to module level",
                )
        elif isinstance(worker, ast.Attribute):
            if isinstance(worker.value, ast.Name) and worker.value.id == "self":
                yield self.diagnostic(
                    info, worker,
                    "bound method dispatched to a spawn pool pickles the "
                    "whole instance (pool handles included) -- use a "
                    "module-level function taking the data it needs",
                )


DEEP_RULES: tuple[DeepRule, ...] = (
    LaneShapeRule(),
    RngProvenanceRule(),
    LayerSafeRule(),
    SpawnSafeRule(),
)


def deep_rule_ids() -> list[str]:
    return [rule.id for rule in DEEP_RULES]
