"""Command-line front-end: regenerate any of the paper's tables and figures.

Usage::

    repro-experiments all            # every experiment, in paper order
    repro-experiments tbl1 fig13     # a subset
    repro-experiments --list
    repro-experiments --fleet-size 64 tbl1   # wider evaluation fleets
    repro-experiments --workers 4 tbl1       # shard fleets across 4 processes
    repro-experiments bench                  # fleet + serving throughput measurement
    repro-experiments bench --json artifacts/BENCH_fleet.json
    repro-experiments suite                  # expert-oracle task-suite health gate
    repro-experiments suite --episodes 1 --layout seen --workers 2
    repro-experiments serve --workers 2      # JSONL evaluation service on stdin
    repro-experiments lint                   # determinism-contract static analysis
    repro-experiments --result-cache tbl1    # rerun served from the result cache
    REPRO_PROFILE=full repro-experiments tbl1
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.experiments import EXPERIMENTS, get_profile

_ORDER = [
    "fig2", "fig9", "tbl1", "tbl2", "families", "fig11", "fig12", "fig13",
    "fig14", "fig15", "tbl3", "tbl4", "resources", "ablation", "ablation-algo",
    "power",
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DaDu-Corki paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (see --list); 'all' runs everything",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--profile", choices=("quick", "full"), default=None,
        help="evaluation scale (default: REPRO_PROFILE env var or 'quick')",
    )
    parser.add_argument(
        "--save", action="store_true",
        help="also write each report to artifacts/<id>-<profile>.txt",
    )
    parser.add_argument(
        "--fleet-size", type=int, default=None, metavar="N",
        help="jobs rolled out in lock-step per evaluation fleet "
             "(default: the profile's fleet_size; 1 disables batching)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard each evaluation's fleet lanes across N OS processes; "
             "results are byte-identical to --workers 1 (default: the "
             "profile's workers; for 'bench', measures the sharded axis at "
             "exactly N workers)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="('bench' only) also write the measurement as a machine-readable "
             "JSON artifact (the BENCH_fleet.json schema the CI gate reads)",
    )
    parser.add_argument(
        "--result-cache", action="store_true",
        help="serve repeated evaluation lanes from a content-addressed result "
             "cache persisted under artifacts/result-cache; cached lanes are "
             "byte-identical to fresh rolls, so reports are unchanged -- "
             "reruns just skip the rolling.  For 'serve', enables the "
             "service's on-disk cache",
    )
    parser.add_argument(
        "--result-cache-dir", default=None, metavar="DIR",
        help="like --result-cache, but persist the cache under DIR",
    )
    parser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="('serve' only) bound the admission queue; overflow requests "
             "answer {'status': 'rejected'} instead of queueing unboundedly",
    )
    parser.add_argument(
        "--tcp", default=None, metavar="HOST:PORT",
        help="('serve' only) serve the JSONL protocol over a TCP socket "
             "instead of stdin/stdout (port 0 binds an ephemeral port, "
             "announced on stderr)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="S",
        help="('serve' only) seconds before a dispatched worker chunk is "
             "declared lost and re-dispatched (hard-crash recovery)",
    )
    parser.add_argument(
        "--episodes", type=int, default=2, metavar="N",
        help="('suite' only) expert-oracle episodes per registry task",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="('lint' only) also run the whole-program passes (LANE-SHAPE, "
             "RNG-PROVENANCE, LAYER-SAFE, SPAWN-SAFE)",
    )
    parser.add_argument(
        "--layout", choices=("seen", "unseen", "both"), default="both",
        help="('suite' only) which layout(s) the oracle sweep covers",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:", ", ".join(_ORDER), "(plus: bench, suite, serve, lint)")
        return 0

    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2

    if "serve" in args.experiments:
        if len(args.experiments) > 1:
            print(
                "'serve' runs alone; invoke other experiments in a separate call",
                file=sys.stderr,
            )
            return 2
        return _run_serve(args)

    if "lint" in args.experiments:
        if len(args.experiments) > 1:
            print(
                "'lint' runs alone; invoke other experiments in a separate call",
                file=sys.stderr,
            )
            return 2
        return _run_lint(deep=args.deep)

    if "bench" in args.experiments:
        if len(args.experiments) > 1:
            print(
                "'bench' runs alone; invoke other experiments in a separate call",
                file=sys.stderr,
            )
            return 2
        return _run_bench(args.json, args.workers)

    if "suite" in args.experiments:
        if len(args.experiments) > 1:
            print(
                "'suite' runs alone; invoke other experiments in a separate call",
                file=sys.stderr,
            )
            return 2
        suite_workers = (
            args.workers
            if args.workers is not None
            else get_profile(args.profile).workers
        )
        return _run_suite(args.episodes, args.layout, suite_workers)

    requested = _ORDER if args.experiments == ["all"] else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("available:", ", ".join(_ORDER), file=sys.stderr)
        return 2

    profile = get_profile(args.profile)
    if args.fleet_size is not None:
        if args.fleet_size < 1:
            print("--fleet-size must be >= 1", file=sys.stderr)
            return 2
        profile = dataclasses.replace(profile, fleet_size=args.fleet_size)
    if args.workers is not None:
        profile = dataclasses.replace(profile, workers=args.workers)
    cache_dir = args.result_cache_dir or (
        "artifacts/result-cache" if args.result_cache else None
    )
    if cache_dir is not None:
        profile = dataclasses.replace(profile, result_cache_dir=cache_dir)
    for name in requested:
        started = time.perf_counter()
        print(f"=== {name} (profile: {profile.name}) ===")
        report = EXPERIMENTS[name](profile)
        print(report)
        if args.save:
            from repro.analysis.export import save_report

            path = save_report(name, report, profile.name)
            print(f"[saved {path}]")
        print(f"--- {name} done in {time.perf_counter() - started:.1f}s ---\n")
    return 0


def _run_serve(args) -> int:
    """``repro-experiments serve``: the JSONL evaluation service on stdin.

    Thin forwarding shim over ``python -m repro.serving`` (the two spellings
    serve identically): ``--workers`` sets the warm pool width,
    ``--fleet-size`` the in-process continuous-batching slot count,
    ``--result-cache`` / ``--result-cache-dir DIR`` persist the
    content-addressed result cache on disk, ``--max-queue`` bounds
    admission, ``--chunk-timeout`` arms hard-crash recovery for pooled
    dispatch, and ``--tcp HOST:PORT`` swaps stdin/stdout for the asyncio
    TCP front end (same request schema plus priorities, deadlines and the
    hot-reload op -- see docs/serving.md).
    """
    from repro.serving.__main__ import main as serve_main

    forwarded: list[str] = []
    if args.workers is not None:
        forwarded += ["--workers", str(args.workers)]
    if args.fleet_size is not None:
        if args.fleet_size < 1:
            print("--fleet-size must be >= 1", file=sys.stderr)
            return 2
        forwarded += ["--slots", str(args.fleet_size)]
    cache_dir = args.result_cache_dir or (
        "artifacts/result-cache" if args.result_cache else None
    )
    if cache_dir is not None:
        forwarded += ["--cache-dir", cache_dir]
    if args.max_queue is not None:
        forwarded += ["--max-queue", str(args.max_queue)]
    if args.chunk_timeout is not None:
        forwarded += ["--chunk-timeout", str(args.chunk_timeout)]
    if args.tcp is not None:
        forwarded += ["--tcp", args.tcp]
        if args.max_queue is not None:
            # Over TCP, admission control lives at the server's pending
            # batch; --max-queue maps onto it so both spellings shed alike.
            forwarded += ["--max-pending", str(args.max_queue)]
    return serve_main(forwarded)


def _run_suite(episodes: int, layout_choice: str, workers: int = 1) -> int:
    """Expert-oracle task-suite health gate (the CI smoke job's entry point).

    Rolls the jitter-free scripted expert over every registry task and fails
    (exit 1) if any family's success rate drops below 1.0 -- the cheap,
    training-free way to catch a predicate, expert script or scene mechanic
    drifting apart.  ``workers > 1`` shards the sweep across processes (CI
    runs it that way so the sharded path is exercised on every push);
    episode seeding is keyed on (task, episode), so the matrix is identical
    for any worker count.
    """
    from repro.analysis.evaluation import expert_oracle_families
    from repro.analysis.reporting import format_table
    from repro.sim.tasks import TASK_FAMILIES, TASKS, tasks_by_family
    from repro.sim.world import SEEN_LAYOUT, UNSEEN_LAYOUT

    if episodes < 1:
        print("--episodes must be >= 1", file=sys.stderr)
        return 2
    layouts = {
        "seen": [SEEN_LAYOUT],
        "unseen": [UNSEEN_LAYOUT],
        "both": [SEEN_LAYOUT, UNSEEN_LAYOUT],
    }[layout_choice]

    started = time.perf_counter()
    print("=== suite (expert-oracle task-suite gate) ===")
    failures: list[str] = []
    for layout in layouts:
        cells = expert_oracle_families(
            layout, episodes_per_task=episodes, workers=workers
        )
        rows = [
            [
                family,
                len(tasks_by_family(family)),
                f"{cells[family].successes}/{cells[family].episodes}",
                f"{cells[family].success_rate * 100:.0f}%",
            ]
            for family in TASK_FAMILIES
        ]
        print(format_table(
            ["family", "tasks", "episodes", "oracle success"],
            rows,
            title=f"{layout.name} layout ({len(TASKS)} instructions, "
                  f"{episodes} episodes/task)",
        ))
        for family in TASK_FAMILIES:
            cell = cells[family]
            if cell.success_rate < 1.0:
                failures.extend(
                    f"{layout.name}: {instruction}"
                    for instruction in cell.failed_instructions
                )
    print(f"--- suite done in {time.perf_counter() - started:.1f}s ---")
    if failures:
        print("expert oracle failed on:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def _run_lint(deep: bool = False) -> int:
    """``repro-experiments lint``: the static-analysis gate.

    Runs reprolint (the determinism-contract checker in
    ``repro.contracts``, see docs/contracts.md) over the installed package
    and folds in ruff and mypy when they are installed -- the same passes
    the CI static-analysis job enforces.  ``--deep`` adds the
    whole-program passes.  Exit 1 on any diagnostic.
    """
    from repro.contracts.__main__ import main as lint_main

    flags = ["--external"] + (["--deep"] if deep else [])
    return lint_main(flags, prog="repro-experiments lint")


def _run_bench(json_path: str | None, workers: int | None = None) -> int:
    """Measure fleet throughput: episodes/sec across fleet sizes plus the
    sharded workers axis (``--workers N`` narrows the axis to exactly N)."""
    from repro.analysis.fleet_bench import (
        SHARDED_WORKERS,
        format_report,
        measure_fleet_throughput,
        write_bench_json,
    )

    started = time.perf_counter()
    print("=== bench (fleet throughput) ===")
    axis = SHARDED_WORKERS if workers is None else (workers,)
    report = measure_fleet_throughput(workers=axis)
    print(format_report(report))
    if json_path:
        path = write_bench_json(json_path, report)
        print(f"[saved {path}]")
    print(f"--- bench done in {time.perf_counter() - started:.1f}s ---")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
