"""CALVIN-like manipulation benchmark substrate."""

from repro.sim.camera import OBSERVATION_DIM, RAW_FEATURE_DIM, CameraModel
from repro.sim.dataset import (
    ActionNormalizer,
    Demonstration,
    baseline_target,
    collect_demonstrations,
    corki_targets,
)
from repro.sim.env import (
    PERFECT_ACTUATION,
    TRACKING_100HZ,
    TRACKING_30HZ,
    ActuationModel,
    BatchedManipulationEnv,
    ManipulationEnv,
)
from repro.sim.expert import ExpertTrajectory, min_jerk_profile, render_keyframes
from repro.sim.objects import (
    BLOCK_NAMES,
    Block,
    Button,
    Drawer,
    SceneArrays,
    SceneState,
    SceneView,
    Switch,
)
from repro.sim.tasks import (
    TASK_FAMILIES,
    TASKS,
    Keyframe,
    Task,
    sample_job,
    task_by_instruction,
    tasks_by_family,
    wrap_angle,
)
from repro.sim.world import SEEN_LAYOUT, UNSEEN_LAYOUT, WORKSPACE, SceneLayout, sample_scene

__all__ = [
    "ActionNormalizer",
    "ActuationModel",
    "BLOCK_NAMES",
    "BatchedManipulationEnv",
    "Block",
    "Button",
    "CameraModel",
    "Demonstration",
    "Drawer",
    "ExpertTrajectory",
    "Keyframe",
    "ManipulationEnv",
    "OBSERVATION_DIM",
    "PERFECT_ACTUATION",
    "RAW_FEATURE_DIM",
    "SEEN_LAYOUT",
    "SceneArrays",
    "SceneLayout",
    "SceneState",
    "SceneView",
    "Switch",
    "TASKS",
    "TASK_FAMILIES",
    "TRACKING_100HZ",
    "TRACKING_30HZ",
    "Task",
    "UNSEEN_LAYOUT",
    "WORKSPACE",
    "baseline_target",
    "collect_demonstrations",
    "corki_targets",
    "min_jerk_profile",
    "render_keyframes",
    "sample_job",
    "sample_scene",
    "task_by_instruction",
    "tasks_by_family",
    "wrap_angle",
]
