"""Scene objects of the CALVIN-like tabletop: blocks, a drawer, a switch.

The CALVIN benchmark (Mees et al., 2022) evaluates language-conditioned
manipulation in a tabletop scene with coloured blocks, a sliding drawer, a
switch and a lightbulb.  This module reproduces that object set with the
kinematic state the five task families of the paper (move / switch / drawer /
rotate / lift) need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Block", "Drawer", "Switch", "SceneState", "BLOCK_NAMES"]

BLOCK_NAMES = ("red", "blue", "pink")


@dataclass
class Block:
    """A graspable cuboid block on the table."""

    name: str
    position: np.ndarray  # (3,) world position of the block centre
    yaw: float = 0.0  # rotation about the vertical axis
    half_extent: float = 0.025

    def copy(self) -> "Block":
        return Block(self.name, self.position.copy(), self.yaw, self.half_extent)


@dataclass
class Drawer:
    """A sliding drawer; ``opening`` in metres along its prismatic axis."""

    handle_base: np.ndarray  # handle position when fully closed
    axis: np.ndarray  # unit vector the drawer slides along (world frame)
    opening: float = 0.0
    max_opening: float = 0.18
    grasp_radius: float = 0.05

    @property
    def handle_position(self) -> np.ndarray:
        """Current world position of the drawer handle."""
        return self.handle_base + self.opening * self.axis

    def copy(self) -> "Drawer":
        drawer = Drawer(
            self.handle_base.copy(), self.axis.copy(), self.opening, self.max_opening,
            self.grasp_radius,
        )
        return drawer


@dataclass
class Switch:
    """A slider switch controlling the scene light; ``level`` in [0, 1]."""

    handle_base: np.ndarray
    axis: np.ndarray
    level: float = 0.0
    travel: float = 0.08  # metres of handle travel from level 0 to 1
    grasp_radius: float = 0.05
    on_threshold: float = 0.65
    off_threshold: float = 0.35

    @property
    def handle_position(self) -> np.ndarray:
        return self.handle_base + self.level * self.travel * self.axis

    @property
    def light_on(self) -> bool:
        return self.level >= self.on_threshold

    def copy(self) -> "Switch":
        return Switch(
            self.handle_base.copy(), self.axis.copy(), self.level, self.travel,
            self.grasp_radius, self.on_threshold, self.off_threshold,
        )


@dataclass
class SceneState:
    """Full kinematic state of the tabletop scene plus the end-effector.

    ``ee_pose`` is ``[x, y, z, roll, pitch, yaw]``; ``gripper_open`` is the
    binary gripper command state (paper's seventh action dimension).
    ``attached`` names what the closed gripper currently holds: a block name,
    ``"drawer"``, ``"switch"`` or ``None``.
    """

    ee_pose: np.ndarray
    gripper_open: bool
    blocks: dict[str, Block]
    drawer: Drawer
    switch: Switch
    attached: str | None = None
    zones: dict[str, np.ndarray] = field(default_factory=dict)

    def copy(self) -> "SceneState":
        return SceneState(
            ee_pose=self.ee_pose.copy(),
            gripper_open=self.gripper_open,
            blocks={name: block.copy() for name, block in self.blocks.items()},
            drawer=self.drawer.copy(),
            switch=self.switch.copy(),
            attached=self.attached,
            zones={name: centre.copy() for name, centre in self.zones.items()},
        )
