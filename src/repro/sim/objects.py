"""Scene objects of the CALVIN-like tabletop: blocks, drawer, switch, button.

The CALVIN benchmark (Mees et al., 2022) evaluates language-conditioned
manipulation in a tabletop scene with coloured blocks, a sliding drawer, a
slider switch driving a lightbulb, and a button driving an LED.  This module
reproduces that object set with the kinematic state the full 34-instruction
task suite (:mod:`repro.sim.tasks`) needs: lift / move / rotate / push /
drawer / switch / lightbulb / led / place-in-drawer / stack / unstack.

Two representations of the same state live here:

* the plain dataclasses (:class:`Block`, :class:`Drawer`, :class:`Switch`,
  :class:`SceneState`) -- the object view used for scene sampling, task
  predicates and episode snapshots; and
* :class:`SceneArrays`, a structure-of-arrays store holding N scenes in
  stacked numpy arrays so the fleet physics kernel
  (:func:`repro.sim.env.step_lanes`) can advance every lane with vectorised
  arithmetic.  :meth:`SceneArrays.adopt` copies a plain scene into one lane
  and returns a :class:`SceneView` -- a ``SceneState``-compatible window
  whose attributes read and write the stacked arrays directly, so the object
  API (task ``prepare``/``success`` closures, the grasp mechanics) and the
  vectorised kernel always see one consistent state with no sync step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Block",
    "Button",
    "Drawer",
    "Switch",
    "SceneState",
    "SceneArrays",
    "SceneView",
    "BLOCK_NAMES",
    "ATTACHED_NONE",
    "ATTACHED_DRAWER",
    "ATTACHED_SWITCH",
]

BLOCK_NAMES = ("red", "blue", "pink")

# ``SceneArrays.attached`` codes: block index by BLOCK_NAMES order, then the
# two fixtures; ATTACHED_NONE marks an empty gripper.
ATTACHED_NONE = -1
ATTACHED_DRAWER = len(BLOCK_NAMES)
ATTACHED_SWITCH = len(BLOCK_NAMES) + 1

_ATTACH_CODE: dict[str | None, int] = {
    **{name: index for index, name in enumerate(BLOCK_NAMES)},
    "drawer": ATTACHED_DRAWER,
    "switch": ATTACHED_SWITCH,
    None: ATTACHED_NONE,
}
_ATTACH_NAME: dict[int, str | None] = {code: name for name, code in _ATTACH_CODE.items()}


@dataclass
class Block:
    """A graspable cuboid block on the table."""

    name: str
    position: np.ndarray  # (3,) world position of the block centre
    yaw: float = 0.0  # rotation about the vertical axis
    half_extent: float = 0.025

    def copy(self) -> "Block":
        return Block(self.name, self.position.copy(), self.yaw, self.half_extent)


_BASIN_SETBACK = 0.07
"""Metres from the drawer handle back to the centre of its storage basin."""

BASIN_FLOOR_Z = 0.005
"""Resting height of a block placed inside the drawer basin (below table top)."""

BASIN_RADIUS = 0.06
"""Planar capture radius of the basin: release within it drops the block in."""

BASIN_MIN_OPENING = 0.10
"""The basin only accepts (and task predicates only count) blocks while the
drawer is at least this open."""

STACK_SNAP_RADIUS = 0.04
"""Planar radius within which a released block settles onto a support block."""


@dataclass
class Drawer:
    """A sliding drawer; ``opening`` in metres along its prismatic axis."""

    handle_base: np.ndarray  # handle position when fully closed
    axis: np.ndarray  # unit vector the drawer slides along (world frame)
    opening: float = 0.0
    max_opening: float = 0.18
    grasp_radius: float = 0.05

    @property
    def handle_position(self) -> np.ndarray:
        """Current world position of the drawer handle."""
        return self.handle_base + self.opening * self.axis

    @property
    def basin_position(self) -> np.ndarray:
        """Centre of the drawer's storage basin (tracks the opening).

        The basin sits ``_BASIN_SETBACK`` behind the handle along the slide
        axis, with its floor below the table top; blocks released above it
        while the drawer is open settle at :data:`BASIN_FLOOR_Z`.
        """
        anchor = self.handle_base + (self.opening - _BASIN_SETBACK) * self.axis
        return np.array([anchor[0], anchor[1], BASIN_FLOOR_Z])

    def copy(self) -> "Drawer":
        drawer = Drawer(
            self.handle_base.copy(), self.axis.copy(), self.opening, self.max_opening,
            self.grasp_radius,
        )
        return drawer


@dataclass
class Switch:
    """A slider switch controlling the scene light; ``level`` in [0, 1]."""

    handle_base: np.ndarray
    axis: np.ndarray
    level: float = 0.0
    travel: float = 0.08  # metres of handle travel from level 0 to 1
    grasp_radius: float = 0.05
    on_threshold: float = 0.65
    off_threshold: float = 0.35

    @property
    def handle_position(self) -> np.ndarray:
        return self.handle_base + self.level * self.travel * self.axis

    @property
    def light_on(self) -> bool:
        return self.level >= self.on_threshold

    def copy(self) -> "Switch":
        return Switch(
            self.handle_base.copy(), self.axis.copy(), self.level, self.travel,
            self.grasp_radius, self.on_threshold, self.off_threshold,
        )


@dataclass
class Button:
    """A latching push-button that toggles the scene LED.

    The LED flips state on the frame the end-effector first enters the press
    region (planar distance within ``press_radius`` and height at or below
    ``press_height``); holding contact does not re-toggle -- ``contact``
    tracks the previous frame's contact so only the False-to-True edge fires.
    """

    position: np.ndarray
    led_on: bool = False
    contact: bool = False
    press_radius: float = 0.04
    press_height: float = 0.05

    def copy(self) -> "Button":
        return Button(
            self.position.copy(), self.led_on, self.contact,
            self.press_radius, self.press_height,
        )


@dataclass
class SceneState:
    """Full kinematic state of the tabletop scene plus the end-effector.

    ``ee_pose`` is ``[x, y, z, roll, pitch, yaw]``; ``gripper_open`` is the
    binary gripper command state (paper's seventh action dimension).
    ``attached`` names what the closed gripper currently holds: a block name,
    ``"drawer"``, ``"switch"`` or ``None``.
    """

    ee_pose: np.ndarray
    gripper_open: bool
    blocks: dict[str, Block]
    drawer: Drawer
    switch: Switch
    button: Button
    attached: str | None = None
    zones: dict[str, np.ndarray] = field(default_factory=dict)

    def copy(self) -> "SceneState":
        return SceneState(
            ee_pose=self.ee_pose.copy(),
            gripper_open=self.gripper_open,
            blocks={name: block.copy() for name, block in self.blocks.items()},
            drawer=self.drawer.copy(),
            switch=self.switch.copy(),
            button=self.button.copy(),
            attached=self.attached,
            zones={name: centre.copy() for name, centre in self.zones.items()},
        )


class SceneArrays:
    """Structure-of-arrays state for ``capacity`` scenes (one per fleet lane).

    Every field stacks one scalar/vector per lane along axis 0; block fields
    add a block axis ordered by :data:`BLOCK_NAMES`.  The fleet physics
    kernel indexes these arrays with a lane-id vector, which is what turns
    the per-lane Python tier of ``env.step`` into a handful of vectorised
    numpy statements.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("SceneArrays needs capacity >= 1")
        blocks = len(BLOCK_NAMES)
        self.capacity = capacity
        self.ee_pose = np.zeros((capacity, 6))
        self.gripper_open = np.zeros(capacity, dtype=bool)
        self.attached = np.full(capacity, ATTACHED_NONE, dtype=np.int64)
        self.block_position = np.zeros((capacity, blocks, 3))
        self.block_yaw = np.zeros((capacity, blocks))
        self.block_half_extent = np.zeros((capacity, blocks))
        self.drawer_handle_base = np.zeros((capacity, 3))
        self.drawer_axis = np.zeros((capacity, 3))
        self.drawer_opening = np.zeros(capacity)
        self.drawer_max_opening = np.zeros(capacity)
        self.drawer_grasp_radius = np.zeros(capacity)
        self.switch_handle_base = np.zeros((capacity, 3))
        self.switch_axis = np.zeros((capacity, 3))
        self.switch_level = np.zeros(capacity)
        self.switch_travel = np.zeros(capacity)
        self.switch_grasp_radius = np.zeros(capacity)
        self.switch_on_threshold = np.zeros(capacity)
        self.switch_off_threshold = np.zeros(capacity)
        self.button_position = np.zeros((capacity, 3))
        self.button_press_radius = np.zeros(capacity)
        self.button_press_height = np.zeros(capacity)
        self.led_on = np.zeros(capacity, dtype=bool)
        self.button_contact = np.zeros(capacity, dtype=bool)
        self.zone_left = np.zeros((capacity, 3))
        self.zone_right = np.zeros((capacity, 3))

    def adopt(self, lane: int, scene: "SceneState | SceneView") -> "SceneView":
        """Copy ``scene`` into lane ``lane`` and return the live view."""
        if set(scene.blocks) != set(BLOCK_NAMES):
            raise ValueError(f"scene blocks must be {BLOCK_NAMES}, got {tuple(scene.blocks)}")
        if not {"left", "right"} <= set(scene.zones):
            raise ValueError("scene zones must include 'left' and 'right'")
        self.ee_pose[lane] = scene.ee_pose
        self.gripper_open[lane] = scene.gripper_open
        self.attached[lane] = _ATTACH_CODE[scene.attached]
        for slot, name in enumerate(BLOCK_NAMES):
            block = scene.blocks[name]
            self.block_position[lane, slot] = block.position
            self.block_yaw[lane, slot] = block.yaw
            self.block_half_extent[lane, slot] = block.half_extent
        drawer = scene.drawer
        self.drawer_handle_base[lane] = drawer.handle_base
        self.drawer_axis[lane] = drawer.axis
        self.drawer_opening[lane] = drawer.opening
        self.drawer_max_opening[lane] = drawer.max_opening
        self.drawer_grasp_radius[lane] = drawer.grasp_radius
        switch = scene.switch
        self.switch_handle_base[lane] = switch.handle_base
        self.switch_axis[lane] = switch.axis
        self.switch_level[lane] = switch.level
        self.switch_travel[lane] = switch.travel
        self.switch_grasp_radius[lane] = switch.grasp_radius
        self.switch_on_threshold[lane] = switch.on_threshold
        self.switch_off_threshold[lane] = switch.off_threshold
        button = scene.button
        self.button_position[lane] = button.position
        self.button_press_radius[lane] = button.press_radius
        self.button_press_height[lane] = button.press_height
        self.led_on[lane] = button.led_on
        self.button_contact[lane] = button.contact
        self.zone_left[lane] = scene.zones["left"]
        self.zone_right[lane] = scene.zones["right"]
        extra_zones = {
            name: np.array(centre, dtype=float)
            for name, centre in scene.zones.items()
            if name not in ("left", "right")
        }
        return SceneView(self, lane, extra_zones)


class _BlockView:
    """A :class:`Block`-compatible window onto one lane/slot of a store."""

    __slots__ = ("_arrays", "_lane", "_slot", "name")

    def __init__(self, arrays: SceneArrays, lane: int, slot: int, name: str):
        self._arrays = arrays
        self._lane = lane
        self._slot = slot
        self.name = name

    @property
    def position(self) -> np.ndarray:
        return self._arrays.block_position[self._lane, self._slot]

    @position.setter
    def position(self, value: np.ndarray) -> None:
        self._arrays.block_position[self._lane, self._slot] = value

    @property
    def yaw(self) -> float:
        return float(self._arrays.block_yaw[self._lane, self._slot])

    @yaw.setter
    def yaw(self, value: float) -> None:
        self._arrays.block_yaw[self._lane, self._slot] = value

    @property
    def half_extent(self) -> float:
        return float(self._arrays.block_half_extent[self._lane, self._slot])

    @half_extent.setter
    def half_extent(self, value: float) -> None:
        self._arrays.block_half_extent[self._lane, self._slot] = value

    def copy(self) -> Block:
        return Block(self.name, self.position.copy(), self.yaw, self.half_extent)


class _DrawerView:
    """A :class:`Drawer`-compatible window onto one lane of a store."""

    __slots__ = ("_arrays", "_lane")

    def __init__(self, arrays: SceneArrays, lane: int):
        self._arrays = arrays
        self._lane = lane

    @property
    def handle_base(self) -> np.ndarray:
        return self._arrays.drawer_handle_base[self._lane]

    @property
    def axis(self) -> np.ndarray:
        return self._arrays.drawer_axis[self._lane]

    @property
    def opening(self) -> float:
        return float(self._arrays.drawer_opening[self._lane])

    @opening.setter
    def opening(self, value: float) -> None:
        self._arrays.drawer_opening[self._lane] = value

    @property
    def max_opening(self) -> float:
        return float(self._arrays.drawer_max_opening[self._lane])

    @property
    def grasp_radius(self) -> float:
        return float(self._arrays.drawer_grasp_radius[self._lane])

    @property
    def handle_position(self) -> np.ndarray:
        return self.handle_base + self.opening * self.axis

    @property
    def basin_position(self) -> np.ndarray:
        anchor = self.handle_base + (self.opening - _BASIN_SETBACK) * self.axis
        return np.array([anchor[0], anchor[1], BASIN_FLOOR_Z])

    def copy(self) -> Drawer:
        return Drawer(
            self.handle_base.copy(), self.axis.copy(), self.opening, self.max_opening,
            self.grasp_radius,
        )


class _SwitchView:
    """A :class:`Switch`-compatible window onto one lane of a store."""

    __slots__ = ("_arrays", "_lane")

    def __init__(self, arrays: SceneArrays, lane: int):
        self._arrays = arrays
        self._lane = lane

    @property
    def handle_base(self) -> np.ndarray:
        return self._arrays.switch_handle_base[self._lane]

    @property
    def axis(self) -> np.ndarray:
        return self._arrays.switch_axis[self._lane]

    @property
    def level(self) -> float:
        return float(self._arrays.switch_level[self._lane])

    @level.setter
    def level(self, value: float) -> None:
        self._arrays.switch_level[self._lane] = value

    @property
    def travel(self) -> float:
        return float(self._arrays.switch_travel[self._lane])

    @property
    def grasp_radius(self) -> float:
        return float(self._arrays.switch_grasp_radius[self._lane])

    @property
    def on_threshold(self) -> float:
        return float(self._arrays.switch_on_threshold[self._lane])

    @property
    def off_threshold(self) -> float:
        return float(self._arrays.switch_off_threshold[self._lane])

    @property
    def handle_position(self) -> np.ndarray:
        return self.handle_base + self.level * self.travel * self.axis

    @property
    def light_on(self) -> bool:
        return self.level >= self.on_threshold

    def copy(self) -> Switch:
        return Switch(
            self.handle_base.copy(), self.axis.copy(), self.level, self.travel,
            self.grasp_radius, self.on_threshold, self.off_threshold,
        )


class _ButtonView:
    """A :class:`Button`-compatible window onto one lane of a store."""

    __slots__ = ("_arrays", "_lane")

    def __init__(self, arrays: SceneArrays, lane: int):
        self._arrays = arrays
        self._lane = lane

    @property
    def position(self) -> np.ndarray:
        return self._arrays.button_position[self._lane]

    @property
    def press_radius(self) -> float:
        return float(self._arrays.button_press_radius[self._lane])

    @property
    def press_height(self) -> float:
        return float(self._arrays.button_press_height[self._lane])

    @property
    def led_on(self) -> bool:
        return bool(self._arrays.led_on[self._lane])

    @led_on.setter
    def led_on(self, value: bool) -> None:
        self._arrays.led_on[self._lane] = bool(value)

    @property
    def contact(self) -> bool:
        return bool(self._arrays.button_contact[self._lane])

    @contact.setter
    def contact(self, value: bool) -> None:
        self._arrays.button_contact[self._lane] = bool(value)

    def copy(self) -> Button:
        return Button(
            self.position.copy(), self.led_on, self.contact,
            self.press_radius, self.press_height,
        )


class SceneView:
    """A :class:`SceneState`-compatible window onto one lane of a store.

    Attribute reads and writes go straight to the stacked arrays, so the
    object API (task closures, grasp mechanics, the scalar camera path) and
    the vectorised kernel operate on the same storage.  ``copy`` detaches a
    plain :class:`SceneState` snapshot, which is what episode bookkeeping
    (``initial_scene``) keeps.
    """

    __slots__ = ("_arrays", "_lane", "blocks", "drawer", "switch", "button", "zones")

    def __init__(
        self,
        arrays: SceneArrays,
        lane: int,
        extra_zones: dict[str, np.ndarray] | None = None,
    ):
        self._arrays = arrays
        self._lane = lane
        self.blocks = {
            name: _BlockView(arrays, lane, slot, name)
            for slot, name in enumerate(BLOCK_NAMES)
        }
        self.drawer = _DrawerView(arrays, lane)
        self.switch = _SwitchView(arrays, lane)
        self.button = _ButtonView(arrays, lane)
        self.zones = {
            "left": arrays.zone_left[lane],
            "right": arrays.zone_right[lane],
            **(extra_zones or {}),
        }

    @property
    def ee_pose(self) -> np.ndarray:
        return self._arrays.ee_pose[self._lane]

    @ee_pose.setter
    def ee_pose(self, value: np.ndarray) -> None:
        self._arrays.ee_pose[self._lane] = value

    @property
    def gripper_open(self) -> bool:
        return bool(self._arrays.gripper_open[self._lane])

    @gripper_open.setter
    def gripper_open(self, value: bool) -> None:
        self._arrays.gripper_open[self._lane] = bool(value)

    @property
    def attached(self) -> str | None:
        return _ATTACH_NAME[int(self._arrays.attached[self._lane])]

    @attached.setter
    def attached(self, value: str | None) -> None:
        self._arrays.attached[self._lane] = _ATTACH_CODE[value]

    def copy(self) -> SceneState:
        return SceneState(
            ee_pose=self.ee_pose.copy(),
            gripper_open=self.gripper_open,
            blocks={name: block.copy() for name, block in self.blocks.items()},
            drawer=self.drawer.copy(),
            switch=self.switch.copy(),
            button=self.button.copy(),
            attached=self.attached,
            zones={name: np.array(centre, dtype=float) for name, centre in self.zones.items()},
        )
