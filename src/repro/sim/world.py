"""Scene layouts: the seen (training) and unseen (evaluation) tabletops.

CALVIN trains on environments A/B/C and evaluates zero-shot on environment D.
We reproduce the distinction with two layout families: the *seen* layout
samples object poses from the training regions, while the *unseen* layout
mirrors the fixtures, shifts the spawn regions and perturbs the camera
response (see :mod:`repro.sim.camera`), producing the same kind of
distribution shift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.objects import BLOCK_NAMES, Block, Button, Drawer, SceneState, Switch

__all__ = ["WorkspaceLimits", "SceneLayout", "SEEN_LAYOUT", "UNSEEN_LAYOUT", "sample_scene"]


@dataclass(frozen=True)
class WorkspaceLimits:
    """Axis-aligned bounds the end-effector may occupy (metres)."""

    lower: np.ndarray
    upper: np.ndarray

    def clamp(self, position: np.ndarray) -> np.ndarray:
        return np.clip(position, self.lower, self.upper)


@dataclass(frozen=True)
class SceneLayout:
    """A family of scenes: fixture poses plus block spawn regions."""

    name: str
    block_region_lower: np.ndarray
    block_region_upper: np.ndarray
    drawer_handle: np.ndarray
    drawer_axis: np.ndarray
    switch_handle: np.ndarray
    switch_axis: np.ndarray
    button_position: np.ndarray
    zone_left: np.ndarray
    zone_right: np.ndarray
    camera_shift: float  # response offset applied by the camera (domain shift)


_TABLE_Z = 0.02  # block centre height when resting on the table

SEEN_LAYOUT = SceneLayout(
    name="seen",
    block_region_lower=np.array([-0.18, -0.12, _TABLE_Z]),
    block_region_upper=np.array([0.18, 0.12, _TABLE_Z]),
    drawer_handle=np.array([0.28, -0.20, 0.06]),
    drawer_axis=np.array([0.0, -1.0, 0.0]),
    switch_handle=np.array([-0.28, 0.18, 0.10]),
    switch_axis=np.array([1.0, 0.0, 0.0]),
    # Clear of the block spawn/push reach (|x| <= ~0.31, |y| <= 0.12), both
    # zones and the drawer handle, so only deliberate presses fire the LED.
    button_position=np.array([0.30, 0.24, 0.04]),
    zone_left=np.array([-0.24, 0.16, _TABLE_Z]),
    zone_right=np.array([0.24, 0.16, _TABLE_Z]),
    camera_shift=0.0,
)

UNSEEN_LAYOUT = SceneLayout(
    name="unseen",
    block_region_lower=np.array([-0.20, -0.16, _TABLE_Z]),
    block_region_upper=np.array([0.20, 0.10, _TABLE_Z]),
    drawer_handle=np.array([-0.28, -0.20, 0.06]),
    drawer_axis=np.array([0.0, -1.0, 0.0]),
    switch_handle=np.array([0.28, 0.18, 0.10]),
    switch_axis=np.array([-1.0, 0.0, 0.0]),
    button_position=np.array([-0.30, 0.24, 0.04]),
    zone_left=np.array([-0.22, 0.18, _TABLE_Z]),
    zone_right=np.array([0.22, 0.18, _TABLE_Z]),
    camera_shift=0.35,
)

# The y range must cover the drawer's full travel (handle base at y = -0.20
# minus 0.18 m of opening) with margin, or the success threshold becomes
# unreachable by construction.
WORKSPACE = WorkspaceLimits(
    lower=np.array([-0.34, -0.42, 0.01]),
    upper=np.array([0.34, 0.30, 0.35]),
)

_HOME_POSE = np.array([0.0, 0.0, 0.22, 0.0, 0.0, 0.0])
_MIN_BLOCK_SPACING = 0.09


def sample_scene(layout: SceneLayout, rng: np.random.Generator) -> SceneState:
    """Sample a scene from a layout: block poses, drawer/switch settings.

    Blocks are rejection-sampled to keep a minimum spacing so every task's
    approach is collision-free at the fidelity the simulator models.
    """
    positions: list[np.ndarray] = []
    while len(positions) < len(BLOCK_NAMES):
        candidate = rng.uniform(layout.block_region_lower, layout.block_region_upper)
        if all(np.linalg.norm(candidate[:2] - p[:2]) > _MIN_BLOCK_SPACING for p in positions):
            positions.append(candidate)
    blocks = {
        name: Block(name=name, position=pos, yaw=float(rng.uniform(-np.pi / 4, np.pi / 4)))
        for name, pos in zip(BLOCK_NAMES, positions)
    }
    drawer = Drawer(
        handle_base=layout.drawer_handle.copy(),
        axis=layout.drawer_axis.copy(),
        opening=float(rng.uniform(0.0, 0.03)),
    )
    switch = Switch(
        handle_base=layout.switch_handle.copy(),
        axis=layout.switch_axis.copy(),
        level=float(rng.uniform(0.0, 0.15)),
    )
    # The button draws no randomness (task ``prepare`` hooks set the LED), so
    # block/drawer/switch draws keep their pre-button sequence for any seed.
    button = Button(position=layout.button_position.copy())
    return SceneState(
        ee_pose=_HOME_POSE.copy(),
        gripper_open=True,
        blocks=blocks,
        drawer=drawer,
        switch=switch,
        button=button,
        zones={"left": layout.zone_left.copy(), "right": layout.zone_right.copy()},
    )
