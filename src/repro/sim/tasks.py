"""The five CALVIN task families, their instructions and success predicates.

Paper Sec. 5.1: "The tasks are categorized into five types: moving an
object, turning a switch on and off, pushing and pulling a drawer, rotating
an object, and lifting an object."  Each concrete (task family, object,
direction) combination is one language instruction; the registry below
enumerates 19 of them, which play the role of CALVIN's 34 task set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.objects import BLOCK_NAMES, SceneState

__all__ = ["Keyframe", "Task", "TASKS", "task_by_instruction", "sample_job"]

_GRASP_Z = 0.03  # end-effector height for grasping a block on the table
_LIFT_Z = 0.18
_APPROACH_Z = 0.12
_ROTATE_ANGLE = np.pi * 5.0 / 12.0  # expert rotates 75 degrees
_ROTATE_SUCCESS = np.pi / 3.0  # success requires 60 degrees
_ZONE_RADIUS = 0.07
_LIFT_SUCCESS_Z = 0.10
_DRAWER_OPEN_SUCCESS = 0.12
_DRAWER_CLOSED_SUCCESS = 0.03


@dataclass(frozen=True)
class Keyframe:
    """One expert keyframe: target pose, gripper state and segment duration.

    The expert moves from the previous keyframe's pose to ``pose`` over
    ``duration`` seconds with a minimum-jerk profile; ``gripper_open`` is the
    commanded gripper state during that segment.
    """

    pose: np.ndarray
    gripper_open: bool
    duration: float


@dataclass(frozen=True)
class Task:
    """A language-conditioned manipulation task.

    ``prepare`` mutates a freshly sampled scene so the task is feasible
    (e.g. the close-drawer task starts with the drawer open); ``success``
    compares the initial and current scene; ``expert`` produces the scripted
    demonstration keyframes used both for data collection and as the
    evaluation oracle's reference.
    """

    instruction: str
    family: str
    prepare: Callable[[SceneState, np.random.Generator], None]
    success: Callable[[SceneState, SceneState], bool]
    expert: Callable[[SceneState], list[Keyframe]]
    instruction_id: int = field(default=-1)


def _pose(position: np.ndarray, yaw: float = 0.0) -> np.ndarray:
    return np.array([position[0], position[1], position[2], 0.0, 0.0, yaw])


def _grasp_block_keyframes(scene: SceneState, name: str) -> list[Keyframe]:
    block = scene.blocks[name]
    above = block.position + np.array([0.0, 0.0, _APPROACH_Z])
    grasp = block.position.copy()
    grasp[2] = _GRASP_Z
    return [
        Keyframe(_pose(above, block.yaw), True, 0.50),
        Keyframe(_pose(grasp, block.yaw), True, 0.35),
        Keyframe(_pose(grasp, block.yaw), False, 0.15),
    ]


def _retreat(pose: np.ndarray, gripper_open: bool = True) -> Keyframe:
    lifted = pose.copy()
    lifted[2] = _LIFT_Z
    return Keyframe(lifted, gripper_open, 0.40)


def _make_lift(name: str) -> Task:
    def success(initial: SceneState, current: SceneState) -> bool:
        return current.blocks[name].position[2] >= _LIFT_SUCCESS_Z

    def expert(scene: SceneState) -> list[Keyframe]:
        frames = _grasp_block_keyframes(scene, name)
        top = frames[-1].pose.copy()
        top[2] = _LIFT_Z
        frames.append(Keyframe(top, False, 0.50))
        return frames

    return Task(
        instruction=f"lift the {name} block",
        family="lift",
        prepare=lambda scene, rng: None,
        success=success,
        expert=expert,
    )


def _make_move(name: str, zone: str) -> Task:
    def success(initial: SceneState, current: SceneState) -> bool:
        block = current.blocks[name]
        target = current.zones[zone]
        placed = np.linalg.norm(block.position[:2] - target[:2]) <= _ZONE_RADIUS
        return placed and current.attached != name

    def expert(scene: SceneState) -> list[Keyframe]:
        frames = _grasp_block_keyframes(scene, name)
        target = scene.zones[zone]
        yaw = scene.blocks[name].yaw
        above_target = np.array([target[0], target[1], _APPROACH_Z])
        place = np.array([target[0], target[1], _GRASP_Z])
        carry = frames[-1].pose.copy()
        carry[2] = _APPROACH_Z
        frames.extend(
            [
                Keyframe(carry, False, 0.30),
                Keyframe(_pose(above_target, yaw), False, 0.55),
                Keyframe(_pose(place, yaw), False, 0.35),
                Keyframe(_pose(place, yaw), True, 0.15),
                _retreat(_pose(place, yaw)),
            ]
        )
        return frames

    return Task(
        instruction=f"move the {name} block to the {zone} zone",
        family="move",
        prepare=lambda scene, rng: None,
        success=success,
        expert=expert,
    )


def _make_rotate(name: str, direction: str) -> Task:
    sign = 1.0 if direction == "left" else -1.0

    def success(initial: SceneState, current: SceneState) -> bool:
        delta = current.blocks[name].yaw - initial.blocks[name].yaw
        return sign * delta >= _ROTATE_SUCCESS

    def expert(scene: SceneState) -> list[Keyframe]:
        frames = _grasp_block_keyframes(scene, name)
        grasp_pose = frames[-1].pose.copy()
        rotated = grasp_pose.copy()
        rotated[5] += sign * _ROTATE_ANGLE
        frames.extend(
            [
                Keyframe(rotated, False, 0.55),
                Keyframe(rotated, True, 0.15),
                _retreat(rotated),
            ]
        )
        return frames

    return Task(
        instruction=f"rotate the {name} block to the {direction}",
        family="rotate",
        prepare=lambda scene, rng: None,
        success=success,
        expert=expert,
    )


def _handle_keyframes(handle: np.ndarray, yaw: float = 0.0) -> list[Keyframe]:
    above = handle + np.array([0.0, 0.0, 0.08])
    return [
        Keyframe(_pose(above, yaw), True, 0.50),
        Keyframe(_pose(handle, yaw), True, 0.35),
        Keyframe(_pose(handle, yaw), False, 0.15),
    ]


def _make_drawer(action: str) -> Task:
    opening_target = 0.16 if action == "open" else 0.0

    def prepare(scene: SceneState, rng: np.random.Generator) -> None:
        if action == "open":
            scene.drawer.opening = float(rng.uniform(0.0, 0.02))
        else:
            scene.drawer.opening = float(rng.uniform(0.13, 0.17))

    def success(initial: SceneState, current: SceneState) -> bool:
        if action == "open":
            return current.drawer.opening >= _DRAWER_OPEN_SUCCESS
        return current.drawer.opening <= _DRAWER_CLOSED_SUCCESS

    def expert(scene: SceneState) -> list[Keyframe]:
        drawer = scene.drawer
        frames = _handle_keyframes(drawer.handle_position)
        target = drawer.handle_base + opening_target * drawer.axis
        frames.extend(
            [
                Keyframe(_pose(target), False, 0.60),
                Keyframe(_pose(target), True, 0.15),
                _retreat(_pose(target)),
            ]
        )
        return frames

    return Task(
        instruction=f"{action} the drawer",
        family="drawer",
        prepare=prepare,
        success=success,
        expert=expert,
    )


def _make_switch(action: str) -> Task:
    level_target = 0.95 if action == "on" else 0.02

    def prepare(scene: SceneState, rng: np.random.Generator) -> None:
        if action == "on":
            scene.switch.level = float(rng.uniform(0.0, 0.15))
        else:
            scene.switch.level = float(rng.uniform(0.85, 1.0))

    def success(initial: SceneState, current: SceneState) -> bool:
        if action == "on":
            return current.switch.level >= current.switch.on_threshold
        return current.switch.level <= current.switch.off_threshold

    def expert(scene: SceneState) -> list[Keyframe]:
        switch = scene.switch
        frames = _handle_keyframes(switch.handle_position)
        target = switch.handle_base + level_target * switch.travel * switch.axis
        frames.extend(
            [
                Keyframe(_pose(target), False, 0.50),
                Keyframe(_pose(target), True, 0.15),
                _retreat(_pose(target)),
            ]
        )
        return frames

    return Task(
        instruction=f"turn the switch {action}",
        family="switch",
        prepare=prepare,
        success=success,
        expert=expert,
    )


def _build_registry() -> list[Task]:
    tasks: list[Task] = []
    for name in BLOCK_NAMES:
        tasks.append(_make_lift(name))
    for name in BLOCK_NAMES:
        for zone in ("left", "right"):
            tasks.append(_make_move(name, zone))
    for name in BLOCK_NAMES:
        for direction in ("left", "right"):
            tasks.append(_make_rotate(name, direction))
    tasks.append(_make_drawer("open"))
    tasks.append(_make_drawer("close"))
    tasks.append(_make_switch("on"))
    tasks.append(_make_switch("off"))
    return [
        Task(
            instruction=task.instruction,
            family=task.family,
            prepare=task.prepare,
            success=task.success,
            expert=task.expert,
            instruction_id=index,
        )
        for index, task in enumerate(tasks)
    ]


TASKS: list[Task] = _build_registry()
"""The full instruction registry; ``instruction_id`` indexes into it."""


def task_by_instruction(instruction: str) -> Task:
    """Look a task up by its natural-language instruction string."""
    for task in TASKS:
        if task.instruction == instruction:
            return task
    raise KeyError(f"unknown instruction: {instruction!r}")


def sample_job(rng: np.random.Generator, length: int = 5) -> list[Task]:
    """Sample a long-horizon job: ``length`` distinct consecutive tasks.

    Mirrors CALVIN's evaluation protocol where each job chains five tasks
    and the robot proceeds to the next task only after succeeding at the
    current one.  Tasks within one job touch distinct objects so that an
    earlier task cannot make a later one trivially succeed or fail.
    """
    chosen: list[Task] = []
    used_keys: set[str] = set()
    while len(chosen) < length:
        task = TASKS[int(rng.integers(len(TASKS)))]
        words = task.instruction.split()
        # Key by family + object so e.g. two tasks on the red block or two
        # drawer tasks cannot appear in the same job.
        key = task.family + (words[2] if task.family in ("lift", "move", "rotate") else "")
        if key in used_keys:
            continue
        used_keys.add(key)
        chosen.append(task)
    return chosen
