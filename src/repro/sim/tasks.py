"""The CALVIN-style 34-instruction task suite: predicates and expert scripts.

Paper Sec. 5.1 evaluates on CALVIN's 34-task set.  The registry below
reproduces that scale over the tabletop scene of :mod:`repro.sim.objects`:

===========  =====================================================  =====
family       instructions                                           count
===========  =====================================================  =====
lift         lift the {red,blue,pink} block                             3
move         move the {red,blue,pink} block to the {left,right} zone    6
rotate       rotate the {red,blue,pink} block to the {left,right}       6
drawer       {open,close} the drawer                                    2
switch       turn the switch {on,off}                                   2
push         push the {red,blue,pink} block to the {left,right}         6
lightbulb    turn {on,off} the lightbulb                                2
led          turn {on,off} the led                                      2
place        place the {red,blue,pink} block in the drawer              3
stack        stack the red block on top of the blue block               1
unstack      take off the red block from the blue block                 1
===========  =====================================================  =====

Each :class:`Task` also declares the scene *resources* it touches (the
block(s) in ``objects`` plus the ``fixture`` it operates), which is what
:func:`sample_job` keys on so that the tasks of one long-horizon job never
share an object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.objects import (
    BASIN_MIN_OPENING,
    BASIN_RADIUS,
    BLOCK_NAMES,
    SceneState,
)

__all__ = [
    "Keyframe",
    "Task",
    "TASKS",
    "TASK_FAMILIES",
    "task_by_instruction",
    "tasks_by_family",
    "sample_job",
    "wrap_angle",
]

_GRASP_HEIGHT = 0.01  # end-effector height above a block's centre when grasping
_TABLE_GRASP_Z = 0.03  # grasp/place height for a block resting on the table
_LIFT_Z = 0.18
_APPROACH_Z = 0.12
_ROTATE_ANGLE = np.pi * 5.0 / 12.0  # expert rotates 75 degrees
_ROTATE_SUCCESS = np.pi / 3.0  # success requires 60 degrees
_ZONE_RADIUS = 0.07
_LIFT_SUCCESS_Z = 0.10
_DRAWER_OPEN_SUCCESS = 0.12
_DRAWER_CLOSED_SUCCESS = 0.03
_TABLE_TOP_Z = 0.03  # a block resting on the table has its centre below this
_TABLE_BOTTOM_Z = 0.015  # ... and above this (the drawer basin sits lower)
# Push family: the expert starts just outside the shove radius of
# repro.sim.env (0.048), sweeps low through the block and a bit beyond.
_PUSH_START_OFFSET = 0.06
_PUSH_SWEEP_BEYOND = 0.08
_PUSH_Z = 0.035
_PUSH_SUCCESS = 0.05  # metres of displacement along the commanded direction
_STACK_SUCCESS_RADIUS = 0.035
_STACK_HEIGHT_TOL = 0.01
_UNSTACK_CLEAR = 0.08
_UNSTACK_CARRY = 0.12  # where the expert sets an unstacked block down
_BASIN_PLACE_Z = 0.07  # end-effector height when releasing into the basin
_BUTTON_PRESS_Z = 0.035
_BASIN_SUCCESS_Z = 0.015  # a placed block rests below the table top


def wrap_angle(angle: float) -> float:
    """Wrap an angle (or angle delta) into ``(-pi, pi]``.

    Yaw integrates unwrapped in the physics kernel; predicates comparing two
    yaws must wrap the *difference*, or a block whose cumulative yaw crosses
    the +-pi seam relative to a canonicalised snapshot flips the sign of the
    measured rotation.
    """
    return float(np.pi - np.mod(np.pi - angle, 2.0 * np.pi))


@dataclass(frozen=True)
class Keyframe:
    """One expert keyframe: target pose, gripper state and segment duration.

    The expert moves from the previous keyframe's pose to ``pose`` over
    ``duration`` seconds with a minimum-jerk profile; ``gripper_open`` is the
    commanded gripper state during that segment.
    """

    pose: np.ndarray
    gripper_open: bool
    duration: float


@dataclass(frozen=True)
class Task:
    """A language-conditioned manipulation task.

    ``prepare`` mutates a freshly sampled scene so the task is feasible
    (e.g. the close-drawer task starts with the drawer open); ``success``
    compares the initial and current scene; ``expert`` produces the scripted
    demonstration keyframes used both for data collection and as the
    evaluation oracle's reference.  ``objects`` names the block(s) the task
    manipulates and ``fixture`` the articulated fixture it operates
    (``"drawer"``, ``"switch"`` or ``"button"``); together they are the
    task's scene resources, which :func:`sample_job` keeps disjoint within
    one job.
    """

    instruction: str
    family: str
    prepare: Callable[[SceneState, np.random.Generator], None]
    success: Callable[[SceneState, SceneState], bool]
    expert: Callable[[SceneState], list[Keyframe]]
    objects: tuple[str, ...] = ()
    fixture: str | None = None
    instruction_id: int = field(default=-1)


def _pose(position: np.ndarray, yaw: float = 0.0) -> np.ndarray:
    return np.array([position[0], position[1], position[2], 0.0, 0.0, yaw])


def _grasp_block_keyframes(scene: SceneState, name: str) -> list[Keyframe]:
    """Approach/descend/close on a block wherever it rests (table or stack)."""
    block = scene.blocks[name]
    above = block.position + np.array([0.0, 0.0, _APPROACH_Z])
    grasp = block.position.copy()
    grasp[2] = block.position[2] + _GRASP_HEIGHT
    return [
        Keyframe(_pose(above, block.yaw), True, 0.50),
        Keyframe(_pose(grasp, block.yaw), True, 0.35),
        Keyframe(_pose(grasp, block.yaw), False, 0.15),
    ]


def _retreat(pose: np.ndarray, gripper_open: bool = True) -> Keyframe:
    lifted = pose.copy()
    lifted[2] = _LIFT_Z
    return Keyframe(lifted, gripper_open, 0.40)


def _make_lift(name: str) -> Task:
    def success(initial: SceneState, current: SceneState) -> bool:
        return current.blocks[name].position[2] >= _LIFT_SUCCESS_Z

    def expert(scene: SceneState) -> list[Keyframe]:
        frames = _grasp_block_keyframes(scene, name)
        top = frames[-1].pose.copy()
        top[2] = _LIFT_Z
        frames.append(Keyframe(top, False, 0.50))
        return frames

    return Task(
        instruction=f"lift the {name} block",
        family="lift",
        prepare=lambda scene, rng: None,
        success=success,
        expert=expert,
        objects=(name,),
    )


def _make_move(name: str, zone: str) -> Task:
    def success(initial: SceneState, current: SceneState) -> bool:
        block = current.blocks[name]
        target = current.zones[zone]
        placed = np.linalg.norm(block.position[:2] - target[:2]) <= _ZONE_RADIUS
        return placed and current.attached != name

    def expert(scene: SceneState) -> list[Keyframe]:
        frames = _grasp_block_keyframes(scene, name)
        target = scene.zones[zone]
        yaw = scene.blocks[name].yaw
        above_target = np.array([target[0], target[1], _APPROACH_Z])
        place = np.array([target[0], target[1], _TABLE_GRASP_Z])
        carry = frames[-1].pose.copy()
        carry[2] = _APPROACH_Z
        frames.extend(
            [
                Keyframe(carry, False, 0.30),
                Keyframe(_pose(above_target, yaw), False, 0.55),
                Keyframe(_pose(place, yaw), False, 0.35),
                Keyframe(_pose(place, yaw), True, 0.15),
                _retreat(_pose(place, yaw)),
            ]
        )
        return frames

    return Task(
        instruction=f"move the {name} block to the {zone} zone",
        family="move",
        prepare=lambda scene, rng: None,
        success=success,
        expert=expert,
        objects=(name,),
    )


def _make_rotate(name: str, direction: str) -> Task:
    sign = 1.0 if direction == "left" else -1.0

    def success(initial: SceneState, current: SceneState) -> bool:
        # Wrap the *delta*: comparing raw yaws mis-scores a rotation whose
        # endpoints straddle the +-pi seam (one of them canonicalised).
        delta = wrap_angle(current.blocks[name].yaw - initial.blocks[name].yaw)
        return sign * delta >= _ROTATE_SUCCESS

    def expert(scene: SceneState) -> list[Keyframe]:
        frames = _grasp_block_keyframes(scene, name)
        grasp_pose = frames[-1].pose.copy()
        rotated = grasp_pose.copy()
        rotated[5] += sign * _ROTATE_ANGLE
        frames.extend(
            [
                Keyframe(rotated, False, 0.55),
                Keyframe(rotated, True, 0.15),
                _retreat(rotated),
            ]
        )
        return frames

    return Task(
        instruction=f"rotate the {name} block to the {direction}",
        family="rotate",
        prepare=lambda scene, rng: None,
        success=success,
        expert=expert,
        objects=(name,),
    )


def _make_push(name: str, direction: str) -> Task:
    sign = -1.0 if direction == "left" else 1.0  # left is -x, toward the left zone

    def success(initial: SceneState, current: SceneState) -> bool:
        block = current.blocks[name]
        displacement = block.position[0] - initial.blocks[name].position[0]
        on_table = _TABLE_BOTTOM_Z <= block.position[2] <= _TABLE_TOP_Z
        return sign * displacement >= _PUSH_SUCCESS and on_table and current.attached != name

    def expert(scene: SceneState) -> list[Keyframe]:
        block = scene.blocks[name]
        start = block.position.copy()
        start[0] -= sign * _PUSH_START_OFFSET
        start[2] = _PUSH_Z
        sweep = block.position.copy()
        sweep[0] += sign * _PUSH_SWEEP_BEYOND
        sweep[2] = _PUSH_Z
        above = start.copy()
        above[2] = _APPROACH_Z
        return [
            Keyframe(_pose(above), True, 0.50),
            Keyframe(_pose(start), True, 0.30),
            Keyframe(_pose(sweep), True, 0.60),
            _retreat(_pose(sweep)),
        ]

    return Task(
        instruction=f"push the {name} block to the {direction}",
        family="push",
        prepare=lambda scene, rng: None,
        success=success,
        expert=expert,
        objects=(name,),
    )


def _handle_keyframes(handle: np.ndarray, yaw: float = 0.0) -> list[Keyframe]:
    above = handle + np.array([0.0, 0.0, 0.08])
    return [
        Keyframe(_pose(above, yaw), True, 0.50),
        Keyframe(_pose(handle, yaw), True, 0.35),
        Keyframe(_pose(handle, yaw), False, 0.15),
    ]


def _make_drawer(action: str) -> Task:
    opening_target = 0.16 if action == "open" else 0.0

    def prepare(scene: SceneState, rng: np.random.Generator) -> None:
        if action == "open":
            scene.drawer.opening = float(rng.uniform(0.0, 0.02))
        else:
            scene.drawer.opening = float(rng.uniform(0.13, 0.17))

    def success(initial: SceneState, current: SceneState) -> bool:
        if action == "open":
            return current.drawer.opening >= _DRAWER_OPEN_SUCCESS
        return current.drawer.opening <= _DRAWER_CLOSED_SUCCESS

    def expert(scene: SceneState) -> list[Keyframe]:
        drawer = scene.drawer
        frames = _handle_keyframes(drawer.handle_position)
        target = drawer.handle_base + opening_target * drawer.axis
        frames.extend(
            [
                Keyframe(_pose(target), False, 0.60),
                Keyframe(_pose(target), True, 0.15),
                _retreat(_pose(target)),
            ]
        )
        return frames

    return Task(
        instruction=f"{action} the drawer",
        family="drawer",
        prepare=prepare,
        success=success,
        expert=expert,
        fixture="drawer",
    )


def _switch_expert(level_target: float) -> Callable[[SceneState], list[Keyframe]]:
    def expert(scene: SceneState) -> list[Keyframe]:
        switch = scene.switch
        frames = _handle_keyframes(switch.handle_position)
        target = switch.handle_base + level_target * switch.travel * switch.axis
        frames.extend(
            [
                Keyframe(_pose(target), False, 0.50),
                Keyframe(_pose(target), True, 0.15),
                _retreat(_pose(target)),
            ]
        )
        return frames

    return expert


def _switch_prepare(turning_on: bool) -> Callable[[SceneState, np.random.Generator], None]:
    def prepare(scene: SceneState, rng: np.random.Generator) -> None:
        if turning_on:
            scene.switch.level = float(rng.uniform(0.0, 0.15))
        else:
            scene.switch.level = float(rng.uniform(0.85, 1.0))

    return prepare


def _make_switch(action: str) -> Task:
    def success(initial: SceneState, current: SceneState) -> bool:
        if action == "on":
            return current.switch.level >= current.switch.on_threshold
        return current.switch.level <= current.switch.off_threshold

    return Task(
        instruction=f"turn the switch {action}",
        family="switch",
        prepare=_switch_prepare(action == "on"),
        success=success,
        expert=_switch_expert(0.95 if action == "on" else 0.02),
        fixture="switch",
    )


def _make_lightbulb(state: str) -> Task:
    want_on = state == "on"

    def success(initial: SceneState, current: SceneState) -> bool:
        return current.switch.light_on == want_on

    return Task(
        instruction=f"turn {state} the lightbulb",
        family="lightbulb",
        prepare=_switch_prepare(want_on),
        success=success,
        expert=_switch_expert(0.95 if want_on else 0.02),
        fixture="switch",
    )


def _make_led(state: str) -> Task:
    want_on = state == "on"

    def prepare(scene: SceneState, rng: np.random.Generator) -> None:
        scene.button.led_on = not want_on
        scene.button.contact = False

    def success(initial: SceneState, current: SceneState) -> bool:
        return current.button.led_on == want_on

    def expert(scene: SceneState) -> list[Keyframe]:
        button = scene.button.position
        above = np.array([button[0], button[1], _APPROACH_Z])
        press = np.array([button[0], button[1], _BUTTON_PRESS_Z])
        return [
            Keyframe(_pose(above), True, 0.50),
            Keyframe(_pose(press), True, 0.35),
            _retreat(_pose(press)),
        ]

    return Task(
        instruction=f"turn {state} the led",
        family="led",
        prepare=prepare,
        success=success,
        expert=expert,
        fixture="button",
    )


def _make_place_in_drawer(name: str) -> Task:
    def prepare(scene: SceneState, rng: np.random.Generator) -> None:
        scene.drawer.opening = float(rng.uniform(0.13, 0.17))

    def success(initial: SceneState, current: SceneState) -> bool:
        block = current.blocks[name]
        basin = current.drawer.basin_position
        inside = np.linalg.norm(block.position[:2] - basin[:2]) <= BASIN_RADIUS
        below_table = block.position[2] <= _BASIN_SUCCESS_Z
        open_enough = current.drawer.opening >= BASIN_MIN_OPENING
        return inside and below_table and open_enough and current.attached != name

    def expert(scene: SceneState) -> list[Keyframe]:
        frames = _grasp_block_keyframes(scene, name)
        basin = scene.drawer.basin_position
        above = np.array([basin[0], basin[1], _APPROACH_Z])
        drop = np.array([basin[0], basin[1], _BASIN_PLACE_Z])
        carry = frames[-1].pose.copy()
        carry[2] = _APPROACH_Z
        frames.extend(
            [
                Keyframe(carry, False, 0.30),
                Keyframe(_pose(above), False, 0.55),
                Keyframe(_pose(drop), False, 0.30),
                Keyframe(_pose(drop), True, 0.15),
                _retreat(_pose(drop)),
            ]
        )
        return frames

    return Task(
        instruction=f"place the {name} block in the drawer",
        family="place",
        prepare=prepare,
        success=success,
        expert=expert,
        objects=(name,),
        fixture="drawer",
    )


def _stacked_on(top, base) -> bool:
    """Whether block ``top`` rests centred on block ``base``."""
    planar = np.linalg.norm(top.position[:2] - base.position[:2])
    resting = base.position[2] + base.half_extent + top.half_extent
    return bool(
        planar <= _STACK_SUCCESS_RADIUS
        and abs(top.position[2] - resting) <= _STACK_HEIGHT_TOL
    )


def _make_stack(top_name: str, base_name: str) -> Task:
    def success(initial: SceneState, current: SceneState) -> bool:
        stacked = _stacked_on(current.blocks[top_name], current.blocks[base_name])
        return stacked and current.attached != top_name

    def expert(scene: SceneState) -> list[Keyframe]:
        frames = _grasp_block_keyframes(scene, top_name)
        base = scene.blocks[base_name]
        top = scene.blocks[top_name]
        yaw = top.yaw
        above = np.array([base.position[0], base.position[1], _APPROACH_Z])
        drop_z = base.position[2] + base.half_extent + 2 * top.half_extent + _GRASP_HEIGHT
        drop = np.array([base.position[0], base.position[1], drop_z])
        carry = frames[-1].pose.copy()
        carry[2] = _LIFT_Z
        frames.extend(
            [
                Keyframe(carry, False, 0.35),
                Keyframe(_pose(above, yaw), False, 0.55),
                Keyframe(_pose(drop, yaw), False, 0.35),
                Keyframe(_pose(drop, yaw), True, 0.15),
                _retreat(_pose(drop, yaw)),
            ]
        )
        return frames

    return Task(
        instruction=f"stack the {top_name} block on top of the {base_name} block",
        family="stack",
        prepare=lambda scene, rng: None,
        success=success,
        expert=expert,
        objects=(top_name, base_name),
    )


def _make_unstack(top_name: str, base_name: str) -> Task:
    def prepare(scene: SceneState, rng: np.random.Generator) -> None:
        base = scene.blocks[base_name]
        top = scene.blocks[top_name]
        top.position = base.position + np.array(
            [0.0, 0.0, base.half_extent + top.half_extent]
        )

    def success(initial: SceneState, current: SceneState) -> bool:
        top = current.blocks[top_name]
        base = current.blocks[base_name]
        clear = np.linalg.norm(top.position[:2] - base.position[:2]) >= _UNSTACK_CLEAR
        on_table = top.position[2] <= _TABLE_TOP_Z
        return bool(clear) and on_table and current.attached != top_name

    def expert(scene: SceneState) -> list[Keyframe]:
        frames = _grasp_block_keyframes(scene, top_name)
        base = scene.blocks[base_name]
        yaw = scene.blocks[top_name].yaw
        # Set the block down a fixed distance from the stack, in whichever
        # axis direction keeps the most clearance from the bystander blocks.
        candidates = [
            base.position[:2] + _UNSTACK_CARRY * np.array(direction)
            for direction in ((1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0))
        ]
        others = [
            block.position[:2]
            for name, block in scene.blocks.items()
            if name not in (top_name, base_name)
        ]

        def clearance(spot: np.ndarray) -> float:
            if not others:
                return np.inf
            return min(float(np.linalg.norm(spot - other)) for other in others)

        landing = max(candidates, key=clearance)
        above = np.array([landing[0], landing[1], _APPROACH_Z])
        place = np.array([landing[0], landing[1], _TABLE_GRASP_Z])
        carry = frames[-1].pose.copy()
        carry[2] = _APPROACH_Z
        frames.extend(
            [
                Keyframe(carry, False, 0.30),
                Keyframe(_pose(above, yaw), False, 0.45),
                Keyframe(_pose(place, yaw), False, 0.35),
                Keyframe(_pose(place, yaw), True, 0.15),
                _retreat(_pose(place, yaw)),
            ]
        )
        return frames

    return Task(
        instruction=f"take off the {top_name} block from the {base_name} block",
        family="unstack",
        prepare=prepare,
        success=success,
        expert=expert,
        objects=(top_name, base_name),
    )


def _ensure_unique_instructions(tasks: list[Task]) -> None:
    """Reject duplicate instruction strings (easy to hit as the suite grows)."""
    seen: set[str] = set()
    for task in tasks:
        if task.instruction in seen:
            raise ValueError(f"duplicate instruction in registry: {task.instruction!r}")
        seen.add(task.instruction)


def _build_registry() -> list[Task]:
    tasks: list[Task] = []
    for name in BLOCK_NAMES:
        tasks.append(_make_lift(name))
    for name in BLOCK_NAMES:
        for zone in ("left", "right"):
            tasks.append(_make_move(name, zone))
    for name in BLOCK_NAMES:
        for direction in ("left", "right"):
            tasks.append(_make_rotate(name, direction))
    tasks.append(_make_drawer("open"))
    tasks.append(_make_drawer("close"))
    tasks.append(_make_switch("on"))
    tasks.append(_make_switch("off"))
    for name in BLOCK_NAMES:
        for direction in ("left", "right"):
            tasks.append(_make_push(name, direction))
    tasks.append(_make_lightbulb("on"))
    tasks.append(_make_lightbulb("off"))
    tasks.append(_make_led("on"))
    tasks.append(_make_led("off"))
    for name in BLOCK_NAMES:
        tasks.append(_make_place_in_drawer(name))
    tasks.append(_make_stack("red", "blue"))
    tasks.append(_make_unstack("red", "blue"))

    _ensure_unique_instructions(tasks)
    return [
        Task(
            instruction=task.instruction,
            family=task.family,
            prepare=task.prepare,
            success=task.success,
            expert=task.expert,
            objects=task.objects,
            fixture=task.fixture,
            instruction_id=index,
        )
        for index, task in enumerate(tasks)
    ]


TASKS: list[Task] = _build_registry()
"""The full instruction registry; ``instruction_id`` indexes into it."""

TASK_FAMILIES: tuple[str, ...] = tuple(dict.fromkeys(task.family for task in TASKS))
"""Family names in registry order (the per-family report's row order)."""

_TASKS_BY_INSTRUCTION: dict[str, Task] = {task.instruction: task for task in TASKS}


def task_by_instruction(instruction: str) -> Task:
    """Look a task up by its natural-language instruction string (O(1))."""
    try:
        return _TASKS_BY_INSTRUCTION[instruction]
    except KeyError:
        raise KeyError(f"unknown instruction: {instruction!r}") from None


def tasks_by_family(family: str) -> list[Task]:
    """All registry tasks of one family, in registry order."""
    tasks = [task for task in TASKS if task.family == family]
    if not tasks:
        raise KeyError(f"unknown task family: {family!r}")
    return tasks


def _task_resources(task: Task) -> set[str]:
    resources = set(task.objects)
    if task.fixture is not None:
        resources.add(task.fixture)
    return resources


_ALL_RESOURCES = frozenset(BLOCK_NAMES) | {"drawer", "switch", "button"}


def sample_job(rng: np.random.Generator, length: int = 5) -> list[Task]:
    """Sample a long-horizon job: ``length`` consecutive tasks.

    Mirrors CALVIN's evaluation protocol where each job chains five tasks
    and the robot proceeds to the next task only after succeeding at the
    current one.  Tasks within one job touch pairwise-distinct scene
    resources -- the block(s) a task manipulates plus the fixture it
    operates (the lightbulb rides the switch, the led rides the button,
    place-in-drawer holds its block *and* the drawer) -- so an earlier task
    can never make a later one trivially succeed or fail.  A draw whose
    resources collide with an already-chosen task is rejected; a draw that
    would leave fewer free resources than remaining job slots is also
    rejected (every resource has a single-resource task, so accepted
    prefixes always extend to a full job and the loop cannot deadlock).
    """
    if length > len(_ALL_RESOURCES):
        raise ValueError(
            f"a job of {length} tasks needs {length} distinct scene resources; "
            f"the scene has {len(_ALL_RESOURCES)}"
        )
    chosen: list[Task] = []
    used: set[str] = set()
    while len(chosen) < length:
        task = TASKS[int(rng.integers(len(TASKS)))]
        resources = _task_resources(task)
        if used & resources:
            continue
        remaining_slots = length - len(chosen) - 1
        if len(_ALL_RESOURCES) - len(used) - len(resources) < remaining_slots:
            continue
        used |= resources
        chosen.append(task)
    return chosen
