"""Synthetic camera: renders scene state into observation feature vectors.

The real system feeds RGB gripper-camera frames to the VLM.  Offline we
render the scene into a raw state descriptor and pass it through a *fixed*
random nonlinear projection -- the "pixels" -- so that policies must learn to
decode observations rather than reading simulator state directly.  The
unseen layout additionally shifts the projection bias (``camera_shift``),
reproducing the visual domain gap between CALVIN's seen and unseen
environments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.objects import BLOCK_NAMES, SceneArrays, SceneState

__all__ = [
    "CameraModel",
    "RAW_FEATURE_DIM",
    "OBSERVATION_DIM",
    "raw_feature_rows",
    "render_rows",
]

RAW_FEATURE_DIM = 38
OBSERVATION_DIM = 48

def _channel_gains() -> np.ndarray:
    """Per-channel gain on the raw state descriptor.

    Metric channels (positions, the drawer opening) live on a +-0.3 m scale;
    without gain a 10 cm offset moves a projected channel by ~0.02, barely
    above the sensor noise.  Scaling only those channels (and not the
    already O(1) sin/cos and binary channels) lifts task geometry above the
    noise floor without saturating the tanh response.
    """
    gains = np.ones(RAW_FEATURE_DIM)
    gains[0:3] = 3.0  # end-effector position
    for block in range(3):
        base = 7 + block * 7
        gains[base : base + 3] = 3.0  # block position relative to the gripper
        gains[base + 5 : base + 7] = 3.0  # block position on the table
    gains[28] = 5.0  # drawer opening (0..0.18 m)
    gains[31:35] = 3.0  # zone centres
    gains[36:38] = 3.0  # button position (led state at 35 is already binary)
    return gains


FEATURE_GAINS = _channel_gains()

# The projection is part of the "optics", not of any learned model, so it is
# generated once from a fixed seed and shared by every camera instance.
_PROJECTION_SEED = 20250621  # ISCA'25 opening day


def _projection() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    # repro: allow[RNG-KEYED] reason=fixed optics constant shared by every camera; never a per-lane stream
    rng = np.random.default_rng(_PROJECTION_SEED)
    weights = rng.normal(0.0, 1.0 / np.sqrt(RAW_FEATURE_DIM), size=(OBSERVATION_DIM, RAW_FEATURE_DIM))
    bias = rng.normal(0.0, 0.05, size=OBSERVATION_DIM)
    shift_direction = rng.normal(0.0, 0.3, size=OBSERVATION_DIM)
    return weights, bias, shift_direction


_WEIGHTS, _BIAS, _SHIFT = _projection()


class CameraModel:
    """Render scenes to observations with sensor noise and domain shift.

    ``noise_std`` is the per-channel Gaussian noise of the sensor;
    ``domain_shift`` offsets the projection bias (the unseen layout passes a
    non-zero value here).
    """

    def __init__(self, noise_std: float = 0.01, domain_shift: float = 0.0):
        self.noise_std = noise_std
        self.domain_shift = domain_shift

    @staticmethod
    def raw_features(scene: SceneState) -> np.ndarray:
        """The underlying state descriptor (before projection and noise)."""
        ee = scene.ee_pose
        parts = [ee, [1.0 if scene.gripper_open else 0.0]]
        for name in BLOCK_NAMES:
            block = scene.blocks[name]
            parts.append(block.position - ee[:3])
            parts.append([np.sin(block.yaw), np.cos(block.yaw)])
            parts.append(block.position[:2])
        parts.append([scene.drawer.opening])
        parts.append([scene.switch.level])
        parts.append([1.0 if scene.switch.light_on else 0.0])
        parts.append(scene.zones["left"][:2])
        parts.append(scene.zones["right"][:2])
        parts.append([1.0 if scene.button.led_on else 0.0])
        parts.append(scene.button.position[:2])
        raw = np.concatenate([np.asarray(p, dtype=float).ravel() for p in parts])
        if raw.shape != (RAW_FEATURE_DIM,):
            raise AssertionError(f"raw feature dim drifted: {raw.shape}")
        return raw

    def render(self, scene: SceneState, rng: np.random.Generator) -> np.ndarray:
        """One camera frame: projected, shifted, noisy observation vector."""
        raw = self.raw_features(scene)
        pixels = np.tanh(_WEIGHTS @ (FEATURE_GAINS * raw) + _BIAS + self.domain_shift * _SHIFT)
        if self.noise_std > 0.0:
            pixels = pixels + rng.normal(0.0, self.noise_std, size=pixels.shape)
        return pixels


def raw_feature_rows(arrays: SceneArrays, lanes: np.ndarray) -> np.ndarray:
    """Stacked raw state descriptors for the selected lanes of a store.

    Row ``k`` is exactly :meth:`CameraModel.raw_features` of lane
    ``lanes[k]``: the assembly is pure elementwise arithmetic on the stacked
    arrays, so each element is bitwise the value the scalar path computes.
    """
    count = len(lanes)
    raw = np.empty((count, RAW_FEATURE_DIM))
    ee = arrays.ee_pose[lanes]
    raw[:, 0:6] = ee
    raw[:, 6] = np.where(arrays.gripper_open[lanes], 1.0, 0.0)
    positions = arrays.block_position[lanes]  # (count, blocks, 3)
    yaws = arrays.block_yaw[lanes]  # (count, blocks)
    for slot in range(len(BLOCK_NAMES)):
        base = 7 + slot * 7
        raw[:, base : base + 3] = positions[:, slot] - ee[:, :3]
        raw[:, base + 3] = np.sin(yaws[:, slot])
        raw[:, base + 4] = np.cos(yaws[:, slot])
        raw[:, base + 5 : base + 7] = positions[:, slot, :2]
    raw[:, 28] = arrays.drawer_opening[lanes]
    raw[:, 29] = arrays.switch_level[lanes]
    raw[:, 30] = np.where(
        arrays.switch_level[lanes] >= arrays.switch_on_threshold[lanes], 1.0, 0.0
    )
    raw[:, 31:33] = arrays.zone_left[lanes, :2]
    raw[:, 33:35] = arrays.zone_right[lanes, :2]
    raw[:, 35] = np.where(arrays.led_on[lanes], 1.0, 0.0)
    raw[:, 36:38] = arrays.button_position[lanes, :2]
    return raw


def render_rows(
    arrays: SceneArrays,
    lanes: np.ndarray,
    cameras: Sequence["CameraModel"],
    rngs: Sequence[np.random.Generator],
) -> np.ndarray:
    """Render one frame per selected lane, stacked as ``(len(lanes), obs)``.

    The feature assembly, bias/shift adds, tanh response and sensor noise are
    all vectorised or drawn per lane in lane order; the fixed projection stays
    a per-lane matvec because BLAS's GEMV and GEMM kernels round differently,
    and fleet observations must be bitwise the scalar ``render`` output.
    """
    raw = raw_feature_rows(arrays, lanes)
    gained = FEATURE_GAINS * raw
    pixels = np.empty((len(lanes), OBSERVATION_DIM))
    for k in range(len(lanes)):
        pixels[k] = _WEIGHTS @ gained[k]
    shifts = np.array([camera.domain_shift for camera in cameras])
    pixels = np.tanh((pixels + _BIAS) + shifts[:, None] * _SHIFT)
    for k, (camera, rng) in enumerate(zip(cameras, rngs)):
        if camera.noise_std > 0.0:
            pixels[k] += rng.normal(0.0, camera.noise_std, size=OBSERVATION_DIM)
    return pixels
