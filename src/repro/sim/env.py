"""The manipulation environment: closed-loop episodes at the frame level.

The environment advances in 33 ms camera frames.  Each frame the policy (or
expert) commands a target end-effector pose and a gripper state; an
*actuation model* determines how faithfully the arm realises the command
within the frame.  Actuation models are calibrated against the dynamics tier
(TS-CTC on the full Panda rigid-body model) -- see
``repro.analysis.calibration`` -- so that the 100 Hz accelerator-backed
controller tracks tighter than the 30 Hz CPU baseline, which is the physical
effect the paper's accuracy results rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.camera import CameraModel
from repro.sim.objects import SceneState
from repro.sim.tasks import Task
from repro.sim.world import SceneLayout, WORKSPACE, sample_scene

__all__ = [
    "ActuationModel",
    "TRACKING_100HZ",
    "TRACKING_30HZ",
    "PERFECT_ACTUATION",
    "ManipulationEnv",
    "BatchedManipulationEnv",
]

_BLOCK_GRASP_RADIUS = 0.05
_BLOCK_GRASP_HEIGHT = 0.05
_TABLE_BLOCK_Z = 0.02


@dataclass(frozen=True)
class ActuationModel:
    """How well the arm realises a commanded frame-level motion.

    ``tracking_gain`` is the fraction of the commanded displacement realised
    within one frame (a first-order tracking lag); ``noise_std`` is the
    residual per-frame pose noise (metres / radians).  The two presets below
    were calibrated by running TS-CTC on the Panda dynamics at the
    corresponding control rates (see EXPERIMENTS.md, calibration section).
    """

    name: str
    tracking_gain: float
    noise_std: float


# 100 Hz task-space computed torque control (the Corki accelerator path).
TRACKING_100HZ = ActuationModel("tsctc-100hz", tracking_gain=0.985, noise_std=0.0008)
# 30 Hz control matched to the camera rate (the baseline CPU path).
TRACKING_30HZ = ActuationModel("tsctc-30hz", tracking_gain=0.93, noise_std=0.0020)
# Idealised actuation, used by unit tests and the scripted-expert data collector.
PERFECT_ACTUATION = ActuationModel("perfect", tracking_gain=1.0, noise_std=0.0)


class ManipulationEnv:
    """Frame-level simulation of the tabletop scene.

    One instance runs one episode at a time; :meth:`reset` starts an episode
    for a task and returns the first observation.
    """

    frame_dt = 1.0 / 30.0

    def __init__(
        self,
        layout: SceneLayout,
        rng: np.random.Generator,
        actuation: ActuationModel = TRACKING_100HZ,
        camera_noise_std: float = 0.01,
    ):
        self.layout = layout
        self.rng = rng
        self.actuation = actuation
        self.camera = CameraModel(noise_std=camera_noise_std, domain_shift=layout.camera_shift)
        self.scene: SceneState | None = None
        self.initial_scene: SceneState | None = None
        self.task: Task | None = None
        self.frame_count = 0

    # -- episode lifecycle ---------------------------------------------------

    def reset(self, task: Task, scene: SceneState | None = None) -> np.ndarray:
        """Start an episode of ``task``; returns the first observation."""
        if scene is None:
            scene = sample_scene(self.layout, self.rng)
        task.prepare(scene, self.rng)
        self.scene = scene
        self.initial_scene = scene.copy()
        self.task = task
        self.frame_count = 0
        return self.observe()

    def continue_with(self, task: Task) -> np.ndarray:
        """Chain the next task of a long-horizon job onto the current scene.

        The gripper opens at the instruction boundary (releasing anything
        still held), mirroring how CALVIN rollouts hand over between
        subtasks; the arm stays wherever the previous task left it.
        """
        if self.scene is None:
            raise RuntimeError("reset() must run before continue_with()")
        self._release()
        self.scene.gripper_open = True
        task.prepare(self.scene, self.rng)
        self.initial_scene = self.scene.copy()
        self.task = task
        self.frame_count = 0
        return self.observe()

    def observe(self) -> np.ndarray:
        """Render the current camera frame."""
        if self.scene is None:
            raise RuntimeError("reset() must run before observe()")
        return self.camera.render(self.scene, self.rng)

    @property
    def succeeded(self) -> bool:
        """Whether the current task's success predicate holds."""
        if self.scene is None or self.task is None or self.initial_scene is None:
            return False
        return bool(self.task.success(self.initial_scene, self.scene))

    # -- frame dynamics --------------------------------------------------------

    def step(
        self,
        target_pose: np.ndarray,
        gripper_open: bool,
        actuation: ActuationModel | None = None,
    ) -> np.ndarray:
        """Advance one camera frame toward ``target_pose``.

        The arm moves by ``tracking_gain`` of the commanded displacement plus
        actuation noise; the gripper command is applied instantaneously (the
        Panda gripper is position-controlled and fast relative to a frame).
        Returns the new observation.
        """
        if self.scene is None:
            raise RuntimeError("reset() must run before step()")
        model = actuation or self.actuation
        scene = self.scene
        target = np.asarray(target_pose, dtype=float)

        displacement = target - scene.ee_pose
        realised = model.tracking_gain * displacement
        if model.noise_std > 0.0:
            noise = self.rng.normal(0.0, model.noise_std, size=6)
            noise[3:] *= 2.0  # orientation noise in radians is relatively larger
            realised = realised + noise
        new_pose = scene.ee_pose + realised
        new_pose[:3] = WORKSPACE.clamp(new_pose[:3])
        delta_yaw = new_pose[5] - scene.ee_pose[5]
        scene.ee_pose = new_pose

        self._update_gripper(gripper_open)
        self._drag_attached(delta_yaw)
        self.frame_count += 1
        return self.observe()

    # -- attachment mechanics -----------------------------------------------------

    def _update_gripper(self, gripper_open: bool) -> None:
        scene = self.scene
        assert scene is not None
        if gripper_open and not scene.gripper_open:
            self._release()
            scene.gripper_open = True
        elif not gripper_open and scene.gripper_open:
            scene.gripper_open = False
            self._try_grasp()

    def _try_grasp(self) -> None:
        """On close: attach the nearest graspable object within tolerance."""
        scene = self.scene
        assert scene is not None
        ee = scene.ee_pose[:3]
        best_name, best_distance = None, np.inf
        for name, block in scene.blocks.items():
            planar = float(np.linalg.norm(block.position[:2] - ee[:2]))
            vertical = abs(block.position[2] - ee[2] + 0.01)
            if planar <= _BLOCK_GRASP_RADIUS and vertical <= _BLOCK_GRASP_HEIGHT:
                if planar < best_distance:
                    best_name, best_distance = name, planar
        drawer_distance = float(np.linalg.norm(scene.drawer.handle_position - ee))
        if drawer_distance <= scene.drawer.grasp_radius and drawer_distance < best_distance:
            best_name, best_distance = "drawer", drawer_distance
        switch_distance = float(np.linalg.norm(scene.switch.handle_position - ee))
        if switch_distance <= scene.switch.grasp_radius and switch_distance < best_distance:
            best_name, best_distance = "switch", switch_distance
        scene.attached = best_name

    def _release(self) -> None:
        """On open: drop whatever is held; blocks fall to the table."""
        scene = self.scene
        assert scene is not None
        if scene.attached in scene.blocks:
            block = scene.blocks[scene.attached]
            block.position[2] = _TABLE_BLOCK_Z
        scene.attached = None

    def _drag_attached(self, delta_yaw: float) -> None:
        """While closed, the held object follows the end-effector."""
        scene = self.scene
        assert scene is not None
        if scene.attached is None:
            return
        ee = scene.ee_pose[:3]
        if scene.attached in scene.blocks:
            block = scene.blocks[scene.attached]
            block.position = ee + np.array([0.0, 0.0, -0.01])
            block.yaw += delta_yaw
        elif scene.attached == "drawer":
            drawer = scene.drawer
            along = float(np.dot(ee - drawer.handle_base, drawer.axis))
            drawer.opening = float(np.clip(along, 0.0, drawer.max_opening))
        elif scene.attached == "switch":
            switch = scene.switch
            along = float(np.dot(ee - switch.handle_base, switch.axis)) / switch.travel
            switch.level = float(np.clip(along, 0.0, 1.0))


class BatchedManipulationEnv:
    """Vectorised facade over N independent :class:`ManipulationEnv` lanes.

    The fleet runner (:mod:`repro.core.fleet`) advances many closed-loop
    episodes in lock-step; this class gives it a step-many API while keeping
    every lane's randomness in its own generator, so a lane's episode is
    bit-for-bit the episode a standalone ``ManipulationEnv`` with the same
    seed would produce regardless of how many other lanes run beside it.

    All ``*_many`` methods take an optional ``indices`` sequence selecting
    the lanes to touch (episodes in a fleet start, re-plan and finish on
    different frames); omitted, they address every lane.  Observations come
    back stacked as a ``(len(indices), OBSERVATION_DIM)`` array.
    """

    def __init__(self, envs: Sequence[ManipulationEnv]):
        if not envs:
            raise ValueError("a batched environment needs at least one lane")
        self.envs = list(envs)
        dts = {env.frame_dt for env in self.envs}
        if len(dts) != 1:
            raise ValueError("all lanes must share one camera frame_dt")

    @classmethod
    def from_seeds(
        cls,
        layout: SceneLayout,
        seeds: Sequence[int],
        actuation: ActuationModel = TRACKING_100HZ,
        camera_noise_std: float = 0.01,
    ) -> "BatchedManipulationEnv":
        """One lane per seed, each with an independent generator."""
        return cls(
            [
                ManipulationEnv(
                    layout,
                    np.random.default_rng(seed),
                    actuation=actuation,
                    camera_noise_std=camera_noise_std,
                )
                for seed in seeds
            ]
        )

    def __len__(self) -> int:
        return len(self.envs)

    @property
    def frame_dt(self) -> float:
        return self.envs[0].frame_dt

    def _select(self, indices: Sequence[int] | None) -> list[int]:
        return list(range(len(self.envs))) if indices is None else list(indices)

    def reset_many(
        self, tasks: Sequence[Task], indices: Sequence[int] | None = None
    ) -> np.ndarray:
        """Start an episode per selected lane; returns stacked observations."""
        chosen = self._select(indices)
        if len(tasks) != len(chosen):
            raise ValueError("one task per selected lane is required")
        return np.stack(
            [self.envs[i].reset(task) for i, task in zip(chosen, tasks)]
        )

    def step_many(
        self,
        target_poses: np.ndarray,
        grippers_open: Sequence[bool],
        actuation: ActuationModel | Sequence[ActuationModel] | None = None,
        indices: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Advance one camera frame on each selected lane.

        ``target_poses`` is ``(K, 6)`` and ``grippers_open`` length-K for the
        K selected lanes.  ``actuation`` may be one model for all lanes or a
        per-lane sequence (a mixed fleet runs the baseline's 30 Hz lanes next
        to Corki's 100 Hz lanes).  Returns the stacked new observations.
        """
        chosen = self._select(indices)
        targets = np.asarray(target_poses, dtype=float)
        if targets.shape != (len(chosen), 6):
            raise ValueError(f"target_poses must be ({len(chosen)}, 6), got {targets.shape}")
        if len(grippers_open) != len(chosen):
            raise ValueError("one gripper flag per selected lane is required")
        if isinstance(actuation, ActuationModel) or actuation is None:
            models: Sequence[ActuationModel | None] = [actuation] * len(chosen)
        else:
            models = list(actuation)
            if len(models) != len(chosen):
                raise ValueError("one actuation model per selected lane is required")
        return np.stack(
            [
                self.envs[i].step(target, bool(gripper), model)
                for i, target, gripper, model in zip(chosen, targets, grippers_open, models)
            ]
        )

    def succeeded_mask(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """Boolean success flags for the selected lanes' current tasks."""
        return np.array([self.envs[i].succeeded for i in self._select(indices)], dtype=bool)
