"""The manipulation environment: closed-loop episodes at the frame level.

The environment advances in 33 ms camera frames.  Each frame the policy (or
expert) commands a target end-effector pose and a gripper state; an
*actuation model* determines how faithfully the arm realises the command
within the frame.  Actuation models are calibrated against the dynamics tier
(TS-CTC on the full Panda rigid-body model) -- see
``repro.analysis.calibration`` -- so that the 100 Hz accelerator-backed
controller tracks tighter than the 30 Hz CPU baseline, which is the physical
effect the paper's accuracy results rest on.

Scene state lives in a structure-of-arrays store
(:class:`repro.sim.objects.SceneArrays`); :func:`step_lanes` is the one
physics kernel, advancing any set of lanes with vectorised displacement /
tracking / clamp / drag arithmetic.  A standalone :class:`ManipulationEnv`
owns a capacity-1 store, so ``env.step`` *is* the batched kernel with one
lane -- scalar/vector divergence is impossible by construction.  Per-lane
randomness stays in each lane's own generator and is drawn in lane order,
which keeps every observation bitwise identical to the pre-vectorised
scalar loop (``tests/test_fleet.py`` locks this in against a frozen scalar
reference implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.camera import CameraModel, render_rows
from repro.sim.objects import (
    ATTACHED_DRAWER,
    ATTACHED_SWITCH,
    BASIN_FLOOR_Z,
    BASIN_MIN_OPENING,
    BASIN_RADIUS,
    BLOCK_NAMES,
    STACK_SNAP_RADIUS,
    SceneArrays,
    SceneState,
    SceneView,
)
from repro.sim.tasks import Task
from repro.sim.world import WORKSPACE, SceneLayout, sample_scene

__all__ = [
    "ActuationModel",
    "TRACKING_100HZ",
    "TRACKING_30HZ",
    "PERFECT_ACTUATION",
    "ManipulationEnv",
    "BatchedManipulationEnv",
    "step_lanes",
]

_BLOCK_GRASP_RADIUS = 0.05
_BLOCK_GRASP_HEIGHT = 0.05
_TABLE_BLOCK_Z = 0.02
_HELD_BLOCK_OFFSET = np.array([0.0, 0.0, -0.01])
_NUM_BLOCKS = len(BLOCK_NAMES)
_BLOCK_SLOTS = np.arange(_NUM_BLOCKS)

# Push (shove) mechanics: a low-sweeping arm slides table-level blocks aside.
# The deadzone keeps grasp descents (planar distance ~ 0 above the target)
# from expelling the block about to be grasped; the radius stays below the
# per-frame sweep speed margin so a sweeping end-effector cannot tunnel past
# the deadzone between frames.
_PUSH_RADIUS = 0.048
_PUSH_DEADZONE = 0.02
_PUSH_EE_HEIGHT = 0.06  # the arm only shoves while sweeping at/below this z
# Only table-level blocks slide: stacked blocks (z ~ 0.07) sit above the
# band, basin-resting blocks (z = 0.005) below it -- a shove must not drag a
# block sideways through the drawer wall.
_PUSH_BLOCK_MIN_Z = 0.015
_PUSH_BLOCK_MAX_Z = 0.03

# Release settling: a dropped block lands in the open drawer's basin, on top
# of a block within the snap radius, or on the table -- in that order (the
# radii live in repro.sim.objects, shared with the task predicates).


@dataclass(frozen=True)
class ActuationModel:
    """How well the arm realises a commanded frame-level motion.

    ``tracking_gain`` is the fraction of the commanded displacement realised
    within one frame (a first-order tracking lag); ``noise_std`` is the
    residual per-frame pose noise (metres / radians).  The two presets below
    were calibrated by running TS-CTC on the Panda dynamics at the
    corresponding control rates (see EXPERIMENTS.md, calibration section).
    """

    name: str
    tracking_gain: float
    noise_std: float


# 100 Hz task-space computed torque control (the Corki accelerator path).
TRACKING_100HZ = ActuationModel("tsctc-100hz", tracking_gain=0.985, noise_std=0.0008)
# 30 Hz control matched to the camera rate (the baseline CPU path).
TRACKING_30HZ = ActuationModel("tsctc-30hz", tracking_gain=0.93, noise_std=0.0020)
# Idealised actuation, used by unit tests and the scripted-expert data collector.
PERFECT_ACTUATION = ActuationModel("perfect", tracking_gain=1.0, noise_std=0.0)


class ManipulationEnv:
    """Frame-level simulation of the tabletop scene.

    One instance runs one episode at a time; :meth:`reset` starts an episode
    for a task and returns the first observation.
    """

    frame_dt = 1.0 / 30.0

    def __init__(
        self,
        layout: SceneLayout,
        rng: np.random.Generator,
        actuation: ActuationModel = TRACKING_100HZ,
        camera_noise_std: float = 0.01,
    ):
        self.layout = layout
        self.rng = rng
        self.actuation = actuation
        self.camera = CameraModel(noise_std=camera_noise_std, domain_shift=layout.camera_shift)
        self.scene: SceneView | None = None
        self.initial_scene: SceneState | None = None
        self.task: Task | None = None
        self.frame_count = 0
        # A standalone environment is a fleet of one: it owns a singleton
        # structure-of-arrays store until a BatchedManipulationEnv re-homes
        # it into a shared store (see _rehome).
        self._arrays = SceneArrays(1)
        self._lane = 0

    def _rehome(self, arrays: SceneArrays, lane: int) -> None:
        """Move this environment's state into lane ``lane`` of a shared store."""
        snapshot = self.scene.copy() if self.scene is not None else None
        self._arrays = arrays
        self._lane = lane
        if snapshot is not None:
            self.scene = arrays.adopt(lane, snapshot)

    # -- episode lifecycle ---------------------------------------------------

    def reset(self, task: Task, scene: SceneState | None = None) -> np.ndarray:
        """Start an episode of ``task``; returns the first observation."""
        if scene is None:
            scene = sample_scene(self.layout, self.rng)
        task.prepare(scene, self.rng)
        self.scene = self._arrays.adopt(self._lane, scene)
        self.initial_scene = self.scene.copy()
        self.task = task
        self.frame_count = 0
        return self.observe()

    def continue_with(self, task: Task) -> np.ndarray:
        """Chain the next task of a long-horizon job onto the current scene.

        The gripper opens at the instruction boundary (releasing anything
        still held), mirroring how CALVIN rollouts hand over between
        subtasks; the arm stays wherever the previous task left it.
        """
        if self.scene is None:
            raise RuntimeError("reset() must run before continue_with()")
        self._release()
        self.scene.gripper_open = True
        task.prepare(self.scene, self.rng)
        self.initial_scene = self.scene.copy()
        self.task = task
        self.frame_count = 0
        return self.observe()

    def observe(self) -> np.ndarray:
        """Render the current camera frame."""
        if self.scene is None:
            raise RuntimeError("reset() must run before observe()")
        return self.camera.render(self.scene, self.rng)

    @property
    def succeeded(self) -> bool:
        """Whether the current task's success predicate holds."""
        if self.scene is None or self.task is None or self.initial_scene is None:
            return False
        return bool(self.task.success(self.initial_scene, self.scene))

    # -- frame dynamics --------------------------------------------------------

    def step(
        self,
        target_pose: np.ndarray,
        gripper_open: bool,
        actuation: ActuationModel | None = None,
    ) -> np.ndarray:
        """Advance one camera frame toward ``target_pose``.

        The arm moves by ``tracking_gain`` of the commanded displacement plus
        actuation noise; the gripper command is applied instantaneously (the
        Panda gripper is position-controlled and fast relative to a frame).
        Returns the new observation.  This is the batched physics kernel
        (:func:`step_lanes`) applied to this environment's single lane.
        """
        if self.scene is None:
            raise RuntimeError("reset() must run before step()")
        target = np.asarray(target_pose, dtype=float)
        observations = step_lanes(
            self._arrays,
            np.array([self._lane]),
            [self],
            target.reshape(1, 6),
            np.array([bool(gripper_open)]),
            [actuation or self.actuation],
        )
        return observations[0]

    # -- attachment mechanics -----------------------------------------------------

    def _update_gripper(self, gripper_open: bool) -> None:
        scene = self.scene
        assert scene is not None
        if gripper_open and not scene.gripper_open:
            self._release()
            scene.gripper_open = True
        elif not gripper_open and scene.gripper_open:
            scene.gripper_open = False
            self._try_grasp()

    def _try_grasp(self) -> None:
        """On close: attach the nearest graspable object within tolerance."""
        scene = self.scene
        assert scene is not None
        ee = scene.ee_pose[:3]
        best_name, best_distance = None, np.inf
        for name, block in scene.blocks.items():
            planar = float(np.linalg.norm(block.position[:2] - ee[:2]))
            vertical = abs(block.position[2] - ee[2] + 0.01)
            if planar <= _BLOCK_GRASP_RADIUS and vertical <= _BLOCK_GRASP_HEIGHT:
                if planar < best_distance:
                    best_name, best_distance = name, planar
        drawer_distance = float(np.linalg.norm(scene.drawer.handle_position - ee))
        if drawer_distance <= scene.drawer.grasp_radius and drawer_distance < best_distance:
            best_name, best_distance = "drawer", drawer_distance
        switch_distance = float(np.linalg.norm(scene.switch.handle_position - ee))
        if switch_distance <= scene.switch.grasp_radius and switch_distance < best_distance:
            best_name, best_distance = "switch", switch_distance
        scene.attached = best_name

    def _release(self) -> None:
        """On open: drop whatever is held; blocks settle where they land.

        Landing spots, in priority order: the open drawer's basin
        (place-in-drawer tasks), the top of a block within the snap radius
        (stacking), else the table.
        """
        scene = self.scene
        assert scene is not None
        if scene.attached in scene.blocks:
            block = scene.blocks[scene.attached]
            block.position[2] = _settle_height(scene, scene.attached)
        scene.attached = None

    def _drag_attached(self, delta_yaw: float) -> None:
        """While closed, the held object follows the end-effector."""
        scene = self.scene
        assert scene is not None
        if scene.attached is None:
            return
        ee = scene.ee_pose[:3]
        if scene.attached in scene.blocks:
            block = scene.blocks[scene.attached]
            block.position = ee + np.array([0.0, 0.0, -0.01])
            block.yaw += delta_yaw
        elif scene.attached == "drawer":
            drawer = scene.drawer
            along = float(np.dot(ee - drawer.handle_base, drawer.axis))
            drawer.opening = float(np.clip(along, 0.0, drawer.max_opening))
        elif scene.attached == "switch":
            switch = scene.switch
            along = float(np.dot(ee - switch.handle_base, switch.axis)) / switch.travel
            switch.level = float(np.clip(along, 0.0, 1.0))


def _settle_height(scene: "SceneState | SceneView", name: str) -> float:
    """Resting height for block ``name`` when the gripper releases it.

    Release is a rare per-lane event, so this stays an object-view helper
    (shared by the scalar and batched paths through ``_release``).  A block
    only stacks onto a support whose top face is at or below the held
    block's centre -- a low drop next to a neighbour lands on the table, not
    teleported on top of it.
    """
    block = scene.blocks[name]
    drawer = scene.drawer
    if drawer.opening >= BASIN_MIN_OPENING:
        basin = drawer.basin_position
        if float(np.linalg.norm(block.position[:2] - basin[:2])) <= BASIN_RADIUS:
            return BASIN_FLOOR_Z
    best_height, best_distance = None, np.inf
    for other_name, other in scene.blocks.items():
        if other_name == name:
            continue
        planar = float(np.linalg.norm(other.position[:2] - block.position[:2]))
        top = other.position[2] + other.half_extent
        if (
            planar <= STACK_SNAP_RADIUS
            and planar < best_distance
            and top <= block.position[2] + 1e-9
        ):
            best_height = top + block.half_extent
            best_distance = planar
    return _TABLE_BLOCK_Z if best_height is None else float(best_height)


def step_lanes(
    arrays: SceneArrays,
    lanes: np.ndarray,
    envs: Sequence[ManipulationEnv],
    targets: np.ndarray,
    grippers_open: np.ndarray,
    models: Sequence[ActuationModel],
) -> np.ndarray:
    """Advance the selected lanes one camera frame; the fleet physics kernel.

    ``lanes`` selects rows of ``arrays``; ``envs[k]`` is the environment that
    owns lane ``lanes[k]`` (supplying its generator, camera and frame
    counter).  Displacement, tracking gain, workspace clamp and the yaw-drag
    of attached blocks are vectorised across lanes; actuation noise and
    sensor noise are drawn per lane *in lane order* from each lane's own
    generator, so results are bitwise identical to stepping each lane alone.
    Rare per-lane events (gripper transitions, drawer/switch drag) fall back
    to the object-view code path.  Returns stacked observations.
    """
    # Kernel order (shared verbatim by the scalar and batched paths):
    # displacement/gain/noise/clamp -> gripper events -> held-object drag ->
    # block shove -> button edge -> render.
    count = len(lanes)
    ee = arrays.ee_pose[lanes]
    displacement = targets - ee
    gains = np.array([model.tracking_gain for model in models])
    realised = gains[:, None] * displacement

    noise = None
    noisy: list[int] = []
    for k, (env, model) in enumerate(zip(envs, models)):
        if model.noise_std > 0.0:
            draw = env.rng.normal(0.0, model.noise_std, size=6)
            draw[3:] *= 2.0  # orientation noise in radians is relatively larger
            if noise is None:
                noise = np.zeros((count, 6))
            noise[k] = draw
            noisy.append(k)
    if noisy:
        rows = np.array(noisy)
        realised[rows] += noise[rows]

    new_pose = ee + realised
    new_pose[:, :3] = WORKSPACE.clamp(new_pose[:, :3])
    delta_yaw = new_pose[:, 5] - ee[:, 5]
    arrays.ee_pose[lanes] = new_pose

    # Gripper transitions are events, not per-frame work: only lanes whose
    # command differs from their state run the (object-view) grasp/release
    # mechanics.
    commands = np.asarray(grippers_open, dtype=bool)
    for k in np.nonzero(arrays.gripper_open[lanes] != commands)[0]:
        envs[k]._update_gripper(bool(commands[k]))

    # While closed, held objects follow the end-effector.  Blocks (the common
    # case during block tasks) update via one fancy-indexed assignment;
    # drawer/switch lanes take the per-lane path.
    attached = arrays.attached[lanes]
    held = np.nonzero((attached >= 0) & (attached < _NUM_BLOCKS))[0]
    if held.size:
        held_lanes = lanes[held]
        slots = attached[held]
        arrays.block_position[held_lanes, slots] = new_pose[held, :3] + _HELD_BLOCK_OFFSET
        # Yaw accumulates unwrapped by design: the camera consumes block yaw
        # only through sin/cos, and the rotate predicate wraps its *delta*
        # (repro.sim.tasks.wrap_angle), so canonicalising here would change
        # commanded grasp yaws without fixing anything.
        arrays.block_yaw[held_lanes, slots] += delta_yaw[held]
    for k in np.nonzero((attached == ATTACHED_DRAWER) | (attached == ATTACHED_SWITCH))[0]:
        envs[k]._drag_attached(float(delta_yaw[k]))

    # Open-path shove (the push task family): any table-level, unheld block
    # inside the sweep annulus slides to the push radius along the line from
    # the end-effector through the block.  Pure elementwise arithmetic per
    # (lane, block) pair, so one lane and N lanes are bitwise identical.
    # Most ticks no arm is sweeping low, so the lane set is pre-filtered on
    # the scalar height gate before any per-block arithmetic runs.
    low = np.nonzero(new_pose[:, 2] <= _PUSH_EE_HEIGHT)[0]
    if low.size:
        low_lanes = lanes[low]
        positions = arrays.block_position[low_lanes]  # fresh: drag may have moved blocks
        offsets = positions[:, :, :2] - new_pose[low, None, :2]
        planar = np.sqrt(np.sum(offsets * offsets, axis=2))
        pushable = (
            (planar > _PUSH_DEADZONE)
            & (planar < _PUSH_RADIUS)
            & (positions[:, :, 2] >= _PUSH_BLOCK_MIN_Z)
            & (positions[:, :, 2] <= _PUSH_BLOCK_MAX_Z)
            & (attached[low, None] != _BLOCK_SLOTS[None, :])
        )
        push_rows, push_slots = np.nonzero(pushable)
        if push_rows.size:
            shoved = (
                new_pose[low[push_rows], :2]
                + offsets[push_rows, push_slots]
                / planar[push_rows, push_slots][:, None]
                * _PUSH_RADIUS
            )
            arrays.block_position[low_lanes[push_rows], push_slots, 0] = shoved[:, 0]
            arrays.block_position[low_lanes[push_rows], push_slots, 1] = shoved[:, 1]

    # Latching button: the LED toggles on the frame the end-effector first
    # enters the press region; holding contact does not re-toggle.
    button_offset = arrays.button_position[lanes, :2] - new_pose[:, :2]
    button_planar = np.sqrt(np.sum(button_offset * button_offset, axis=1))
    contact = (button_planar <= arrays.button_press_radius[lanes]) & (
        new_pose[:, 2] <= arrays.button_press_height[lanes]
    )
    arrays.led_on[lanes] ^= contact & ~arrays.button_contact[lanes]
    arrays.button_contact[lanes] = contact

    for env in envs:
        env.frame_count += 1
    return render_rows(
        arrays, lanes, [env.camera for env in envs], [env.rng for env in envs]
    )


class BatchedManipulationEnv:
    """Vectorised facade over N independent :class:`ManipulationEnv` lanes.

    The fleet runner (:mod:`repro.core.fleet`) advances many closed-loop
    episodes in lock-step; this class gives it a step-many API while keeping
    every lane's randomness in its own generator, so a lane's episode is
    bit-for-bit the episode a standalone ``ManipulationEnv`` with the same
    seed would produce regardless of how many other lanes run beside it.

    All ``*_many`` methods take an optional ``indices`` sequence selecting
    the lanes to touch (episodes in a fleet start, re-plan and finish on
    different frames); omitted, they address every lane.  Observations come
    back stacked as a ``(len(indices), OBSERVATION_DIM)`` array.
    """

    def __init__(self, envs: Sequence[ManipulationEnv]):
        if not envs:
            raise ValueError("a batched environment needs at least one lane")
        self.envs = list(envs)
        dts = {env.frame_dt for env in self.envs}
        if len(dts) != 1:
            raise ValueError("all lanes must share one camera frame_dt")
        # One shared structure-of-arrays store for the whole fleet: each
        # environment's state (current scene included) moves into its lane,
        # after which scalar and batched stepping read and write the same
        # stacked arrays.
        self._arrays = SceneArrays(len(self.envs))
        for lane, env in enumerate(self.envs):
            env._rehome(self._arrays, lane)

    @classmethod
    def from_seeds(
        cls,
        layout: SceneLayout,
        seeds: Sequence[int],
        actuation: ActuationModel = TRACKING_100HZ,
        camera_noise_std: float = 0.01,
    ) -> "BatchedManipulationEnv":
        """One lane per seed, each with an independent generator."""
        return cls(
            [
                ManipulationEnv(
                    layout,
                    # repro: allow[RNG-KEYED] reason=the caller's seed IS the lane identity; keying by position would break fleet-size invariance
                    np.random.default_rng(seed),
                    actuation=actuation,
                    camera_noise_std=camera_noise_std,
                )
                for seed in seeds
            ]
        )

    def __len__(self) -> int:
        return len(self.envs)

    @property
    def frame_dt(self) -> float:
        return self.envs[0].frame_dt

    def _select(self, indices: Sequence[int] | None) -> list[int]:
        return list(range(len(self.envs))) if indices is None else list(indices)

    def reset_many(
        self, tasks: Sequence[Task], indices: Sequence[int] | None = None
    ) -> np.ndarray:
        """Start an episode per selected lane; returns stacked observations."""
        chosen = self._select(indices)
        if len(tasks) != len(chosen):
            raise ValueError("one task per selected lane is required")
        return np.stack(
            [self.envs[i].reset(task) for i, task in zip(chosen, tasks)]
        )

    def step_many(
        self,
        target_poses: np.ndarray,
        grippers_open: Sequence[bool],
        actuation: ActuationModel | Sequence[ActuationModel] | None = None,
        indices: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Advance one camera frame on each selected lane.

        ``target_poses`` is ``(K, 6)`` and ``grippers_open`` length-K for the
        K selected lanes.  ``actuation`` may be one model for all lanes or a
        per-lane sequence (a mixed fleet runs the baseline's 30 Hz lanes next
        to Corki's 100 Hz lanes).  Returns the stacked new observations.
        """
        chosen = self._select(indices)
        targets = np.asarray(target_poses, dtype=float)
        if targets.shape != (len(chosen), 6):
            raise ValueError(f"target_poses must be ({len(chosen)}, 6), got {targets.shape}")
        if len(grippers_open) != len(chosen):
            raise ValueError("one gripper flag per selected lane is required")
        if isinstance(actuation, ActuationModel) or actuation is None:
            models: Sequence[ActuationModel | None] = [actuation] * len(chosen)
        else:
            models = list(actuation)
            if len(models) != len(chosen):
                raise ValueError("one actuation model per selected lane is required")
        envs = [self.envs[i] for i in chosen]
        for env in envs:
            if env.scene is None:
                raise RuntimeError("reset() must run before step()")
        resolved = [model or env.actuation for model, env in zip(models, envs)]
        return step_lanes(
            self._arrays,
            np.asarray(chosen, dtype=int),
            envs,
            targets,
            np.array([bool(gripper) for gripper in grippers_open]),
            resolved,
        )

    def adopt_lane(self, lane: int, env: ManipulationEnv) -> None:
        """Retire the environment in slot ``lane`` and re-home ``env`` there.

        This is the slot-refill primitive behind continuous batching
        (:meth:`repro.core.fleet.FleetRunner.run_continuous`): when a lane's
        job finishes, its slot is handed to a fresh environment instead of
        idling until the whole fleet drains.  The outgoing environment is
        re-homed onto a private singleton store first, so its final scene
        stays readable after the slot's stacked arrays are overwritten; it
        must not be stepped inside this fleet again.
        """
        if not 0 <= lane < len(self.envs):
            raise IndexError(f"lane {lane} out of range for a {len(self.envs)}-lane fleet")
        if env.frame_dt != self.frame_dt:
            raise ValueError("an adopted lane must share the fleet's camera frame_dt")
        self.envs[lane]._rehome(SceneArrays(1), 0)
        self.envs[lane] = env
        env._rehome(self._arrays, lane)

    def succeeded_mask(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """Boolean success flags for the selected lanes' current tasks."""
        return np.array([self.envs[i].succeeded for i in self._select(indices)], dtype=bool)
