"""The manipulation environment: closed-loop episodes at the frame level.

The environment advances in 33 ms camera frames.  Each frame the policy (or
expert) commands a target end-effector pose and a gripper state; an
*actuation model* determines how faithfully the arm realises the command
within the frame.  Actuation models are calibrated against the dynamics tier
(TS-CTC on the full Panda rigid-body model) -- see
``repro.analysis.calibration`` -- so that the 100 Hz accelerator-backed
controller tracks tighter than the 30 Hz CPU baseline, which is the physical
effect the paper's accuracy results rest on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.camera import CameraModel
from repro.sim.objects import SceneState
from repro.sim.tasks import Task
from repro.sim.world import SceneLayout, WORKSPACE, sample_scene

__all__ = [
    "ActuationModel",
    "TRACKING_100HZ",
    "TRACKING_30HZ",
    "PERFECT_ACTUATION",
    "ManipulationEnv",
]

_BLOCK_GRASP_RADIUS = 0.05
_BLOCK_GRASP_HEIGHT = 0.05
_TABLE_BLOCK_Z = 0.02


@dataclass(frozen=True)
class ActuationModel:
    """How well the arm realises a commanded frame-level motion.

    ``tracking_gain`` is the fraction of the commanded displacement realised
    within one frame (a first-order tracking lag); ``noise_std`` is the
    residual per-frame pose noise (metres / radians).  The two presets below
    were calibrated by running TS-CTC on the Panda dynamics at the
    corresponding control rates (see EXPERIMENTS.md, calibration section).
    """

    name: str
    tracking_gain: float
    noise_std: float


# 100 Hz task-space computed torque control (the Corki accelerator path).
TRACKING_100HZ = ActuationModel("tsctc-100hz", tracking_gain=0.985, noise_std=0.0008)
# 30 Hz control matched to the camera rate (the baseline CPU path).
TRACKING_30HZ = ActuationModel("tsctc-30hz", tracking_gain=0.93, noise_std=0.0020)
# Idealised actuation, used by unit tests and the scripted-expert data collector.
PERFECT_ACTUATION = ActuationModel("perfect", tracking_gain=1.0, noise_std=0.0)


class ManipulationEnv:
    """Frame-level simulation of the tabletop scene.

    One instance runs one episode at a time; :meth:`reset` starts an episode
    for a task and returns the first observation.
    """

    frame_dt = 1.0 / 30.0

    def __init__(
        self,
        layout: SceneLayout,
        rng: np.random.Generator,
        actuation: ActuationModel = TRACKING_100HZ,
        camera_noise_std: float = 0.01,
    ):
        self.layout = layout
        self.rng = rng
        self.actuation = actuation
        self.camera = CameraModel(noise_std=camera_noise_std, domain_shift=layout.camera_shift)
        self.scene: SceneState | None = None
        self.initial_scene: SceneState | None = None
        self.task: Task | None = None
        self.frame_count = 0

    # -- episode lifecycle ---------------------------------------------------

    def reset(self, task: Task, scene: SceneState | None = None) -> np.ndarray:
        """Start an episode of ``task``; returns the first observation."""
        if scene is None:
            scene = sample_scene(self.layout, self.rng)
        task.prepare(scene, self.rng)
        self.scene = scene
        self.initial_scene = scene.copy()
        self.task = task
        self.frame_count = 0
        return self.observe()

    def continue_with(self, task: Task) -> np.ndarray:
        """Chain the next task of a long-horizon job onto the current scene.

        The gripper opens at the instruction boundary (releasing anything
        still held), mirroring how CALVIN rollouts hand over between
        subtasks; the arm stays wherever the previous task left it.
        """
        if self.scene is None:
            raise RuntimeError("reset() must run before continue_with()")
        self._release()
        self.scene.gripper_open = True
        task.prepare(self.scene, self.rng)
        self.initial_scene = self.scene.copy()
        self.task = task
        self.frame_count = 0
        return self.observe()

    def observe(self) -> np.ndarray:
        """Render the current camera frame."""
        if self.scene is None:
            raise RuntimeError("reset() must run before observe()")
        return self.camera.render(self.scene, self.rng)

    @property
    def succeeded(self) -> bool:
        """Whether the current task's success predicate holds."""
        if self.scene is None or self.task is None or self.initial_scene is None:
            return False
        return bool(self.task.success(self.initial_scene, self.scene))

    # -- frame dynamics --------------------------------------------------------

    def step(
        self,
        target_pose: np.ndarray,
        gripper_open: bool,
        actuation: ActuationModel | None = None,
    ) -> np.ndarray:
        """Advance one camera frame toward ``target_pose``.

        The arm moves by ``tracking_gain`` of the commanded displacement plus
        actuation noise; the gripper command is applied instantaneously (the
        Panda gripper is position-controlled and fast relative to a frame).
        Returns the new observation.
        """
        if self.scene is None:
            raise RuntimeError("reset() must run before step()")
        model = actuation or self.actuation
        scene = self.scene
        target = np.asarray(target_pose, dtype=float)

        displacement = target - scene.ee_pose
        realised = model.tracking_gain * displacement
        if model.noise_std > 0.0:
            noise = self.rng.normal(0.0, model.noise_std, size=6)
            noise[3:] *= 2.0  # orientation noise in radians is relatively larger
            realised = realised + noise
        new_pose = scene.ee_pose + realised
        new_pose[:3] = WORKSPACE.clamp(new_pose[:3])
        delta_yaw = new_pose[5] - scene.ee_pose[5]
        scene.ee_pose = new_pose

        self._update_gripper(gripper_open)
        self._drag_attached(delta_yaw)
        self.frame_count += 1
        return self.observe()

    # -- attachment mechanics -----------------------------------------------------

    def _update_gripper(self, gripper_open: bool) -> None:
        scene = self.scene
        assert scene is not None
        if gripper_open and not scene.gripper_open:
            self._release()
            scene.gripper_open = True
        elif not gripper_open and scene.gripper_open:
            scene.gripper_open = False
            self._try_grasp()

    def _try_grasp(self) -> None:
        """On close: attach the nearest graspable object within tolerance."""
        scene = self.scene
        assert scene is not None
        ee = scene.ee_pose[:3]
        best_name, best_distance = None, np.inf
        for name, block in scene.blocks.items():
            planar = float(np.linalg.norm(block.position[:2] - ee[:2]))
            vertical = abs(block.position[2] - ee[2] + 0.01)
            if planar <= _BLOCK_GRASP_RADIUS and vertical <= _BLOCK_GRASP_HEIGHT:
                if planar < best_distance:
                    best_name, best_distance = name, planar
        drawer_distance = float(np.linalg.norm(scene.drawer.handle_position - ee))
        if drawer_distance <= scene.drawer.grasp_radius and drawer_distance < best_distance:
            best_name, best_distance = "drawer", drawer_distance
        switch_distance = float(np.linalg.norm(scene.switch.handle_position - ee))
        if switch_distance <= scene.switch.grasp_radius and switch_distance < best_distance:
            best_name, best_distance = "switch", switch_distance
        scene.attached = best_name

    def _release(self) -> None:
        """On open: drop whatever is held; blocks fall to the table."""
        scene = self.scene
        assert scene is not None
        if scene.attached in scene.blocks:
            block = scene.blocks[scene.attached]
            block.position[2] = _TABLE_BLOCK_Z
        scene.attached = None

    def _drag_attached(self, delta_yaw: float) -> None:
        """While closed, the held object follows the end-effector."""
        scene = self.scene
        assert scene is not None
        if scene.attached is None:
            return
        ee = scene.ee_pose[:3]
        if scene.attached in scene.blocks:
            block = scene.blocks[scene.attached]
            block.position = ee + np.array([0.0, 0.0, -0.01])
            block.yaw += delta_yaw
        elif scene.attached == "drawer":
            drawer = scene.drawer
            along = float(np.dot(ee - drawer.handle_base, drawer.axis))
            drawer.opening = float(np.clip(along, 0.0, drawer.max_opening))
        elif scene.attached == "switch":
            switch = scene.switch
            along = float(np.dot(ee - switch.handle_base, switch.axis)) / switch.travel
            switch.level = float(np.clip(along, 0.0, 1.0))
