"""Demonstration collection and supervision targets.

The CALVIN dataset provides teleoperated demonstrations recorded at 30 Hz.
Our stand-in collects scripted-expert episodes in the simulator with
per-frame jitter (teleoperation/discretisation noise).  The two supervision
styles the paper contrasts both read from the same recordings:

* the **baseline** (RoboFlamingo) is supervised on per-frame deltas, which
  inherit the jitter;
* **Corki** is supervised on the future waypoint sequence (Eq. 5), and the
  cubic trajectory fit smooths the jitter -- four polynomial coefficients
  cannot chase nine noisy waypoints.

This asymmetry is the honest mechanism behind the paper's accuracy gains;
no denoised signal is ever handed to either model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.env import PERFECT_ACTUATION, ManipulationEnv
from repro.sim.expert import render_keyframes
from repro.sim.tasks import TASKS, Task
from repro.sim.world import SceneLayout

__all__ = [
    "Demonstration",
    "ActionNormalizer",
    "collect_demonstrations",
    "baseline_target",
    "corki_targets",
    "DEMO_JITTER_STD",
]

DEMO_JITTER_STD = 0.0035  # metres of per-frame teleoperation jitter


@dataclass
class Demonstration:
    """One recorded episode.

    ``poses`` are the jittery recorded end-effector poses (shape (T, 6));
    ``clean_poses`` the underlying expert trajectory, kept only for
    evaluation metrics (never used for supervision); ``observations`` the
    camera frames (T, obs_dim); ``gripper_open`` the per-frame gripper state.
    """

    instruction_id: int
    observations: np.ndarray
    poses: np.ndarray
    clean_poses: np.ndarray
    gripper_open: np.ndarray
    succeeded: bool

    def __len__(self) -> int:
        return len(self.poses)


class ActionNormalizer:
    """Standardise per-frame pose deltas so network outputs are O(1).

    Fitted once on the training demonstrations and shared by both policy
    heads; ``scale`` is the per-dimension standard deviation of the deltas
    (floored to avoid division blow-ups on nearly constant dimensions).
    """

    def __init__(self, scale: np.ndarray):
        self.scale = np.asarray(scale, dtype=float)

    @classmethod
    def fit(cls, demonstrations: list[Demonstration]) -> "ActionNormalizer":
        deltas = np.concatenate([np.diff(demo.poses, axis=0) for demo in demonstrations])
        scale = np.maximum(deltas.std(axis=0), 1e-4)
        return cls(scale)

    def normalize(self, delta: np.ndarray) -> np.ndarray:
        return np.asarray(delta) / self.scale

    def denormalize(self, value: np.ndarray) -> np.ndarray:
        return np.asarray(value) * self.scale


def collect_demonstrations(
    layout: SceneLayout,
    rng: np.random.Generator,
    tasks: list[Task] | None = None,
    per_task: int = 8,
    jitter_std: float = DEMO_JITTER_STD,
    keep_failures: bool = False,
) -> list[Demonstration]:
    """Collect scripted-expert demonstrations with recording jitter.

    Episodes where the jittery expert fails the task are dropped by default,
    matching how human demonstration datasets are curated.
    """
    tasks = tasks if tasks is not None else TASKS
    env = ManipulationEnv(layout, rng, actuation=PERFECT_ACTUATION)
    demonstrations = []
    for task in tasks:
        for _ in range(per_task):
            demo = _run_expert_episode(env, task, rng, jitter_std)
            if demo.succeeded or keep_failures:
                demonstrations.append(demo)
    return demonstrations


def _run_expert_episode(
    env: ManipulationEnv, task: Task, rng: np.random.Generator, jitter_std: float
) -> Demonstration:
    # Demonstrations start from the home pose, as CALVIN teleoperation
    # episodes do.  Randomising the start pose was evaluated to close the
    # chained-task distribution gap but regressed single-task accuracy at
    # this model scale (see EXPERIMENTS.md); the handover behaviour in
    # ManipulationEnv.continue_with addresses the gap instead.
    observation = env.reset(task)
    assert env.scene is not None
    keyframes = task.expert(env.scene)
    expert = render_keyframes(env.scene.ee_pose, keyframes, env.frame_dt)

    observations = [observation]
    poses = [env.scene.ee_pose.copy()]
    gripper = [env.scene.gripper_open]
    for t in range(1, len(expert)):
        command = expert.poses[t].copy()
        command[:3] += rng.normal(0.0, jitter_std, size=3)
        command[5] += rng.normal(0.0, 2.0 * jitter_std)
        observation = env.step(command, bool(expert.gripper_open[t]))
        observations.append(observation)
        poses.append(env.scene.ee_pose.copy())
        gripper.append(env.scene.gripper_open)
    return Demonstration(
        instruction_id=task.instruction_id,
        observations=np.array(observations),
        poses=np.array(poses),
        clean_poses=expert.poses.copy(),
        gripper_open=np.array(gripper, dtype=bool),
        succeeded=env.succeeded,
    )


def baseline_target(demo: Demonstration, t: int) -> tuple[np.ndarray, float]:
    """Per-frame supervision: the next-step delta and gripper bit at frame t."""
    t_next = min(t + 1, len(demo) - 1)
    delta = demo.poses[t_next] - demo.poses[t]
    return delta, float(demo.gripper_open[t_next])


def corki_targets(demo: Demonstration, t: int, horizon: int) -> tuple[np.ndarray, np.ndarray]:
    """Trajectory supervision (Eq. 5): future waypoint offsets from frame t.

    Returns ``(offsets, gripper)`` with shapes ``(horizon, 6)`` and
    ``(horizon,)``; beyond the episode end the trajectory holds its final
    pose, matching how the robot would idle after finishing.
    """
    offsets = np.zeros((horizon, 6))
    gripper = np.zeros(horizon)
    for j in range(1, horizon + 1):
        index = min(t + j, len(demo) - 1)
        offsets[j - 1] = demo.poses[index] - demo.poses[t]
        gripper[j - 1] = float(demo.gripper_open[index])
    return offsets, gripper
