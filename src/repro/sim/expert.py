"""Scripted expert: minimum-jerk interpolation of task keyframes.

Demonstrations in CALVIN were tele-operated; our stand-in expert renders the
task keyframes into dense 30 Hz waypoint sequences with minimum-jerk
profiles, which reproduces the smooth-trajectory-first data collection the
paper highlights ("the collection of the ground truth was in the form of
trajectory at first", Sec. 6.2).
"""

from __future__ import annotations

import numpy as np

from repro.sim.tasks import Keyframe

__all__ = ["min_jerk_profile", "render_keyframes", "ExpertTrajectory"]


def min_jerk_profile(s: np.ndarray) -> np.ndarray:
    """The minimum-jerk blend ``10 s^3 - 15 s^4 + 6 s^5`` on ``s`` in [0, 1]."""
    s = np.asarray(s, dtype=float)
    return 10.0 * s**3 - 15.0 * s**4 + 6.0 * s**5


class ExpertTrajectory:
    """A dense expert rollout: per-frame poses and gripper commands.

    ``poses`` has shape (T, 6) and ``gripper_open`` shape (T,), both sampled
    at the camera frame rate.  Index 0 is the starting pose.
    """

    def __init__(self, poses: np.ndarray, gripper_open: np.ndarray, frame_dt: float):
        self.poses = poses
        self.gripper_open = gripper_open
        self.frame_dt = frame_dt

    def __len__(self) -> int:
        return len(self.poses)

    @property
    def duration(self) -> float:
        return (len(self.poses) - 1) * self.frame_dt


def render_keyframes(
    start_pose: np.ndarray,
    keyframes: list[Keyframe],
    frame_dt: float = 1.0 / 30.0,
) -> ExpertTrajectory:
    """Render keyframes into a dense minimum-jerk trajectory at 30 Hz.

    Each segment interpolates pose with a minimum-jerk profile over its
    duration (at least one frame); the segment's gripper command applies to
    every frame it produces.
    """
    start = np.asarray(start_pose, dtype=float).copy()
    segments = [start[None]]
    gripper = [np.array([True if not keyframes else keyframes[0].gripper_open])]
    current = start
    for frame in keyframes:
        steps = max(1, int(round(frame.duration / frame_dt)))
        blend = min_jerk_profile(np.arange(1, steps + 1) / steps)
        target = np.asarray(frame.pose, dtype=float)
        # One broadcast per segment: row j is current + blend[j] * (target -
        # current), elementwise the same products and sums as the former
        # per-frame Python loop.
        segments.append(current + blend[:, None] * (target - current))
        gripper.append(np.full(steps, frame.gripper_open, dtype=bool))
        current = target
    return ExpertTrajectory(
        np.concatenate(segments), np.concatenate(gripper), frame_dt
    )
