"""Capped exponential backoff shared by the pool and serving tiers."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try an operation, and how long to wait between.

    ``max_attempts`` counts *total* tries (1 = no retry).  The delay before
    retry ``k`` (0-based over the retries, i.e. after attempt ``k + 1``
    failed) is ``base_delay * multiplier**k`` capped at ``max_delay`` --
    short enough that a transient worker crash costs milliseconds, capped so
    a flapping pool cannot stretch a drain unboundedly.  Deterministic (no
    jitter): chaos tests assert exact recovery behaviour, and the single
    parent process has no thundering-herd problem jitter would solve.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 1.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def delay(self, retry_index: int) -> float:
        """Seconds to wait before the ``retry_index``-th retry (0-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier ** retry_index)

    def delays(self) -> list[float]:
        """Every backoff delay this policy will sleep, in order."""
        return [self.delay(k) for k in range(self.max_attempts - 1)]
