"""Reliability substrate: deterministic fault injection, retries, health.

The serving and sharded-evaluation tiers promise that a worker crash, a
truncated cache entry or a malformed request line degrades a *request*, not
the process -- and that whatever recovers is byte-identical to a fault-free
run.  Promises like that rot unless every failure mode is exercised by a
reproducible test, so this package provides three small pieces:

* :mod:`repro.reliability.faults` -- :class:`FaultPlan`, a seeded plan of
  injected failures keyed on operation identity (the same ``[seed, ...]``
  keying discipline as ``lane_generators``), so a chaos run is exactly as
  deterministic as the evaluation it perturbs;
* :mod:`repro.reliability.retry` -- :class:`RetryPolicy`, capped exponential
  backoff shared by the worker pool and the serving tier;
* :mod:`repro.reliability.health` -- :class:`HealthCounters` (retries,
  respawns, timeouts, rejections, degradations) and :class:`PoolUnhealthy`,
  the signal that a pool exhausted its retries and callers should degrade.

Nothing here rolls episodes: the recovery paths live in
:mod:`repro.analysis.parallel` (per-chunk retry + pool respawn) and
:mod:`repro.serving` (deadlines, admission control, pooled -> in-process
degradation); ``tests/test_reliability.py`` locks the contracts down.
"""

from repro.reliability.faults import (
    ChunkDirective,
    FaultPlan,
    InjectedFault,
    apply_chunk_directive,
)
from repro.reliability.health import HealthCounters, PoolUnhealthy
from repro.reliability.retry import RetryPolicy

__all__ = [
    "ChunkDirective",
    "FaultPlan",
    "InjectedFault",
    "apply_chunk_directive",
    "HealthCounters",
    "PoolUnhealthy",
    "RetryPolicy",
]
