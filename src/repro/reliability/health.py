"""Health accounting for the pool and serving tiers."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HealthCounters", "PoolUnhealthy"]


class PoolUnhealthy(RuntimeError):
    """A pool exhausted its retry budget on at least one chunk.

    Raised by ``EvaluationPool.run_chunks_reliably`` once any chunk fails
    ``RetryPolicy.max_attempts`` times.  The serving tier catches it and
    degrades pooled dispatch to in-process continuous batching; direct
    callers of the pool see it propagate, carrying the last underlying
    failure as ``__cause__``.
    """


@dataclass
class HealthCounters:
    """Monotonic failure-handling counters, merged into ``stats()``.

    The pool owns ``retries`` / ``respawns`` / ``faults_injected``; the
    serving tier owns ``timeouts`` / ``rejections`` / ``degradations``.
    Both expose the same type so ``EvaluationService.stats()`` can merge a
    pool's counters with its own without translation.
    """

    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    rejections: int = 0
    degradations: int = 0
    faults_injected: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "retries": self.retries,
            "respawns": self.respawns,
            "timeouts": self.timeouts,
            "rejections": self.rejections,
            "degradations": self.degradations,
            "faults_injected": self.faults_injected,
        }
