"""Deterministic fault injection keyed on operation identity.

A :class:`FaultPlan` decides, as a pure function of ``(plan seed, operation
identity, attempt)``, whether an operation fails and how -- the same keyed
RNG discipline :func:`repro.analysis.evaluation.lane_generators` uses for
lane randomness (``default_rng([seed, domain, ...])``), so a chaos run is
reproducible: the same plan against the same workload injects the same
faults, every time, on any machine.

Five injection sites exist today:

* **worker chunks** -- :meth:`FaultPlan.chunk_directive` decides whether a
  chunk dispatch crashes (raise :class:`InjectedFault`, or hard-kill the
  worker process with ``os._exit`` when ``hard_crash``), hangs (sleep past
  the parent's chunk timeout) or returns slow.  The decision is made in the
  *parent* and shipped to the worker as a picklable
  :class:`ChunkDirective`, which the worker executes before rolling
  (:func:`apply_chunk_directive`) -- workers never need the plan itself.
* **cache reads** -- :meth:`FaultPlan.corrupts_cache_read` makes a payload
  arrive truncated (:meth:`FaultPlan.truncate`), exercising the cache's
  evict-and-re-roll path.
* **request lines** -- :meth:`FaultPlan.mangles_line` truncates a JSONL
  request line mid-flight (:meth:`FaultPlan.mangle_line`), exercising the
  per-request error path of the serving loop.
* **connections** -- :meth:`FaultPlan.drops_connection` closes an accepted
  TCP connection before it is served, exercising the server's
  accept-failure accounting (the server must survive; other connections
  must be unaffected).
* **frames** -- :meth:`FaultPlan.corrupts_frame` mangles one JSONL frame of
  one connection (:meth:`FaultPlan.mangle_line` again), the per-connection
  analogue of the stdin line fault: the frame errors, the connection and
  the server live on.

Faults inject only on the first ``faulted_attempts`` tries of an operation
(first ``faulted_reads`` reads of a cache key), so a plan with rate 1.0
injects exactly one failure per operation and recovery is guaranteed to
converge; raise the budget to model a persistent failure and exercise the
retries-exhausted path instead.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["FaultPlan", "ChunkDirective", "InjectedFault", "apply_chunk_directive"]

# Domain codes keep the decision streams of the injection sites disjoint,
# exactly like the 1/2 codes splitting env from feedback streams in
# ``lane_generators``.  The values are allocated from the tree-wide domain
# registry (docs/contracts.md, RNG-PROVENANCE): 1/2 are the evaluation lane
# streams, 3/4 the pipeline jitter streams, 5 the oracle episodes -- fault
# decisions own 6-10 so no fault stream can unify with a simulation stream
# even for an adversarial seed choice.
_DOMAIN_CRASH = 6
_DOMAIN_HANG = 7
_DOMAIN_SLOW = 8
_DOMAIN_CACHE = 9
_DOMAIN_LINE = 10
# 11/12 belong to the fleet-bench workload streams; the TCP serving tier
# (PR 10) owns 13/14.
_DOMAIN_CONNECTION = 13
_DOMAIN_FRAME = 14


class InjectedFault(RuntimeError):
    """A failure injected by a :class:`FaultPlan` (simulates a worker crash).

    Raised inside a pool worker and pickled back to the parent, where the
    retry loop treats it -- like a chunk timeout -- as *transient*: retry,
    don't propagate.  Genuine exceptions from evaluation code are not
    retried; a deterministic bug re-raised three times is still the same
    bug, and hiding it behind retries would only slow the crash down.
    """


@dataclass(frozen=True)
class ChunkDirective:
    """One chunk attempt's injected behaviour, decided parent-side.

    ``kind`` is ``"crash"``, ``"hang"`` or ``"slow"``; ``seconds`` is the
    sleep for hang/slow; ``hard`` upgrades a crash from a raised
    :class:`InjectedFault` to ``os._exit`` -- a real worker-process death,
    which only a chunk timeout (not an exception) can detect.
    """

    kind: str
    seconds: float = 0.0
    hard: bool = False


def apply_chunk_directive(directive: ChunkDirective) -> None:
    """Execute one directive worker-side, before the chunk rolls."""
    if directive.kind == "crash":
        if directive.hard:
            os._exit(17)  # no cleanup, no exception: a genuine process death
        raise InjectedFault("injected worker crash")
    # "hang" and "slow" differ only in whether the parent's chunk timeout
    # fires first; both are just a sleep here.
    time.sleep(directive.seconds)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic plan of injected failures.

    Rates are per-operation probabilities evaluated on keyed RNG streams:
    ``default_rng([seed, domain, *identity, attempt]).random() < rate``.
    Identity-keyed (not draw-order-keyed) decisions mean the plan does not
    care how many operations run or in what order -- the operation either
    faults under this plan or it does not, reproducibly.
    """

    seed: int
    crash_rate: float = 0.0
    hard_crash: bool = False
    hang_rate: float = 0.0
    hang_seconds: float = 3600.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.05
    cache_corrupt_rate: float = 0.0
    malformed_line_rate: float = 0.0
    connection_drop_rate: float = 0.0
    frame_corrupt_rate: float = 0.0
    faulted_attempts: int = 1
    faulted_reads: int = 1

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        for name in (
            "crash_rate", "hang_rate", "slow_rate",
            "cache_corrupt_rate", "malformed_line_rate",
            "connection_drop_rate", "frame_corrupt_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.faulted_attempts < 0 or self.faulted_reads < 0:
            raise ValueError("fault budgets must be >= 0")

    # -- keyed decisions -------------------------------------------------------

    def _roll(self, domain: int, *key: int) -> float:
        return float(np.random.default_rng([self.seed, domain, *key]).random())

    def chunk_directive(
        self, chunk_key: tuple[int, ...], attempt: int
    ) -> ChunkDirective | None:
        """The injected behaviour of one chunk attempt, or ``None``.

        ``chunk_key`` identifies the chunk (evaluation seed, first global
        lane, lane count); ``attempt`` is the dispatch attempt, so retries
        re-decide.  Crash outranks hang outranks slow when several rates
        fire on the same key.
        """
        if attempt >= self.faulted_attempts:
            return None
        if self._roll(_DOMAIN_CRASH, *chunk_key, attempt) < self.crash_rate:
            return ChunkDirective("crash", hard=self.hard_crash)
        if self._roll(_DOMAIN_HANG, *chunk_key, attempt) < self.hang_rate:
            return ChunkDirective("hang", seconds=self.hang_seconds)
        if self._roll(_DOMAIN_SLOW, *chunk_key, attempt) < self.slow_rate:
            return ChunkDirective("slow", seconds=self.slow_seconds)
        return None

    def corrupts_cache_read(self, key: str, read_index: int) -> bool:
        """Whether the ``read_index``-th read of cache entry ``key`` arrives
        truncated.  Keys are hex digests; the first 16 hex chars seed the
        decision stream."""
        if read_index >= self.faulted_reads:
            return False
        ident = int(key[:16], 16) if key else 0
        return self._roll(_DOMAIN_CACHE, ident, read_index) < self.cache_corrupt_rate

    def mangles_line(self, index: int) -> bool:
        """Whether request line ``index`` of a JSONL stream arrives mangled."""
        return self._roll(_DOMAIN_LINE, index) < self.malformed_line_rate

    def drops_connection(self, connection: int) -> bool:
        """Whether the ``connection``-th accepted TCP connection is dropped
        at accept (closed before a single frame is read).  Connections do
        not retry, so the decision is unbudgeted -- like request lines."""
        return self._roll(_DOMAIN_CONNECTION, connection) < self.connection_drop_rate

    def corrupts_frame(self, connection: int, frame: int) -> bool:
        """Whether frame ``frame`` of connection ``connection`` arrives
        mangled (:meth:`mangle_line`); keyed per connection so one noisy
        link does not decide for its neighbours."""
        return self._roll(_DOMAIN_FRAME, connection, frame) < self.frame_corrupt_rate

    # -- fault payload transforms ----------------------------------------------

    @staticmethod
    def truncate(payload: bytes) -> bytes:
        """A mid-write truncation: the first third of the payload."""
        return payload[: len(payload) // 3]

    @staticmethod
    def mangle_line(line: str) -> str:
        """A half-received request line (always invalid JSON for real
        requests: the opening brace survives, the closing one does not)."""
        return line[: max(1, len(line) // 2)]
