"""Calibrated constants from the paper's measurements.

Every latency/energy/scale number the system-level model uses is collected
here with its provenance in the paper, so the pipeline composition logic in
:mod:`repro.pipeline` carries no magic numbers of its own.
"""

from __future__ import annotations

FRAME_DT_MS = 1000.0 / 30.0
"""Camera frame period: the CALVIN front-end runs at 30 Hz."""

# -- Fig. 2: baseline per-frame breakdown on V100 + i7-6770HQ + Wi-Fi ---------
BASELINE_FRAME_MS = 249.4
"""End-to-end per-frame latency of RoboFlamingo (Sec. 2.2)."""

INFERENCE_SHARE = 0.727
CONTROL_SHARE = 0.099
COMMUNICATION_SHARE = 0.174

INFERENCE_MS = BASELINE_FRAME_MS * INFERENCE_SHARE  # 181.3 ms
CONTROL_CPU_MS = BASELINE_FRAME_MS * CONTROL_SHARE  # 24.7 ms
COMMUNICATION_MS = BASELINE_FRAME_MS * COMMUNICATION_SHARE  # 43.4 ms

# -- Sec. 6.3: accelerator acceleration of the control process ----------------
CONTROL_ACCELERATION = 29.0
""""Corki hardware successfully accelerates the control process by up to 29.0x"."""

CONTROL_FPGA_MS = CONTROL_CPU_MS / CONTROL_ACCELERATION  # ~0.85 ms

# -- Fig. 2b energy: stage power draws ----------------------------------------
# Chosen so the baseline inference energy share reproduces the paper's 95.8%
# and the per-frame energy peaks near 25 J.
GPU_POWER_W = 135.0
CPU_POWER_W = 35.0
WIFI_POWER_W = 5.0
FPGA_POWER_W = 3.0

# -- Tbl. 3: normalised inference latency under different server baselines ----
GPU_INFERENCE_SCALE = {
    "v100": 1.0,
    "h100": 0.4,
    "jetson-orin": 10.0,
    "xeon-8260": 8.9,
}

# -- Tbl. 4: normalised inference latency under different data representations -
DATA_REPRESENTATION_SCALE = {
    "fp32": 1.0,
    "fp16": 0.8,
    "int8": 0.4,
}

# -- measurement realism -------------------------------------------------------
STAGE_JITTER = 0.03
"""Relative per-stage measurement jitter applied by the executor, matching
the frame-to-frame variation visible in the paper's Fig. 2/Fig. 14 traces."""
