"""Plain-text report formatting matching the paper's tables and figures."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "paper_vs_measured"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in cells)) if cells else len(headers[column])
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float], unit: str = "") -> str:
    """Render a figure data series as ``x -> y`` pairs (one per line)."""
    lines = [f"{name}{f' ({unit})' if unit else ''}:"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x:>10.4g} -> {y:.4g}")
    return "\n".join(lines)


def paper_vs_measured(rows: Sequence[tuple[str, object, object]], title: str) -> str:
    """A paper-value vs measured-value comparison block for EXPERIMENTS.md."""
    return format_table(("quantity", "paper", "measured"), rows, title=title)
