"""Metrics, evaluation drivers, calibration, and report formatting."""

from repro.analysis.calibration import (
    ThresholdPoint,
    TrackingReport,
    sample_trajectory,
    threshold_sweep,
    track_trajectory,
)
from repro.analysis.evaluation import (
    SystemEvaluation,
    TrainedPolicies,
    evaluate_all_systems,
    evaluate_system,
    get_trained_policies,
)
from repro.analysis.metrics import (
    JobStatistics,
    TrajectoryMetrics,
    job_statistics,
    max_trajectory_distance,
    trajectory_metrics,
    trajectory_rmse,
)
from repro.analysis.reporting import format_series, format_table, paper_vs_measured
from repro.analysis.statistics import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    paired_bootstrap_difference,
)

__all__ = [
    "ConfidenceInterval",
    "JobStatistics",
    "SystemEvaluation",
    "ThresholdPoint",
    "TrackingReport",
    "TrainedPolicies",
    "TrajectoryMetrics",
    "bootstrap_mean_ci",
    "evaluate_all_systems",
    "evaluate_system",
    "format_series",
    "format_table",
    "get_trained_policies",
    "job_statistics",
    "max_trajectory_distance",
    "paired_bootstrap_difference",
    "paper_vs_measured",
    "sample_trajectory",
    "threshold_sweep",
    "track_trajectory",
    "trajectory_metrics",
    "trajectory_rmse",
]
