"""Fleet throughput measurement and its machine-readable artifact.

One measurement routine backs three consumers:

* ``repro-experiments bench [--json PATH]`` -- the CLI entry point;
* ``benchmarks/test_bench_fleet.py`` -- the pytest-benchmark suite, whose
  session can dump the same artifact via ``--fleet-json``; and
* the CI throughput gate, which compares a fresh N=32 measurement against
  the committed ``artifacts/BENCH_fleet.json`` and fails on a >2x
  regression.

The artifact records episodes/sec for the baseline (inference every frame)
and Corki-5 (inference at trajectory boundaries) execution models across
fleet sizes, which is the perf trajectory the ROADMAP asks each PR to move.
Two measurement rules keep the numbers honest:

* **Setup stays outside the timed region.**  Environments, task lists and
  feedback generators are rebuilt fresh for every round (episodes mutate
  them), but construction happens *before* the clock starts -- the timed
  region is the fleet run only, not allocation noise.
* **The sharded axis is weak scaling.**  Rows with a ``"workers"`` key
  measure the multi-process path (:mod:`repro.analysis.parallel`): each
  worker rolls its own ``fleet_size``-lane chunk, so total episodes grow
  with the worker count.  Pool spawn, policy shipment and warm-up are
  setup; chunk dispatch, worker-side env construction, rollout and trace
  merge are the timed region (that *is* the cost of serving a chunk).
* **The serve axis measures requests, not fleets.**  Rows with
  ``"mode": "serve"`` push single-episode requests through the evaluation
  service (:mod:`repro.serving`) with continuous batching at ``fleet_size``
  slots, caching off: request intake, per-request lane construction,
  rolling and result assembly are *all* on the clock, because that is what
  serving a request costs.  ``"mode": "serve-cached"`` repeats the same
  request set against a warm result cache -- the cache-hit ceiling.
* **The TCP axis adds the wire.**  Rows with ``"mode": "tcp-serve"`` /
  ``"tcp-serve-cached"`` drive the same request workload through a real
  loopback socket against the asyncio front end
  (:mod:`repro.serving.server`): framing, admission and response
  serialization all land on the clock.  These rows carry the serving SLOs
  -- sustained episodes/sec plus ``p50_ms``/``p99_ms`` per-request latency
  (response arrival minus that request's send, the whole batch pipelined).
* **Weak scaling has a direction.**  ``"mode": "weak-scaling"`` rows
  summarise the sharded axis: each worker count's throughput as a ratio of
  the ``workers=1`` run at the same lanes/worker.  The benchmark suite
  records the ratio on every host and *gates* it (ratio >= 0.9 for
  ``workers=2``) only where ``os.cpu_count()`` can honour it.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Sequence

import numpy as np

BENCH_SCHEMA = "repro-fleet-bench/4"
FLEET_SIZES = (1, 8, 32, 128)
BENCH_FRAMES = 20
SHARDED_WORKERS = (1, 2, 4)
SHARDED_LANES_PER_WORKER = 128
SERVE_SLOTS = (8, 32)
SERVE_REQUESTS = 64
TCP_SERVE_SLOTS = (8, 32)
DEFAULT_BENCH_PATH = Path(__file__).resolve().parents[3] / "artifacts" / "BENCH_fleet.json"


def train_bench_policies():
    """Small trained policies at the benchmark scale (shared with conftest)."""
    from repro.core import (
        BaselinePolicy,
        CorkiPolicy,
        TrainingConfig,
        train_baseline,
        train_corki,
    )
    from repro.sim import OBSERVATION_DIM, SEEN_LAYOUT, TASKS, collect_demonstrations

    # repro: allow[RNG-KEYED] reason=benchmark workload master stream; only throughput is asserted
    rng = np.random.default_rng(0)
    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=3)
    baseline = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    corki = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    config = TrainingConfig(epochs=1, batch_size=64)
    train_baseline(baseline, demos, config)
    train_corki(corki, demos, config)
    return baseline, corki, demos


def fleet_inputs(n: int, seed_base: int = 0):
    """Fresh environments and a task per lane for one benchmark round."""
    from repro.sim import SEEN_LAYOUT, TASKS, ManipulationEnv

    tasks = [TASKS[i % len(TASKS)] for i in range(n)]
    envs = [
        ManipulationEnv(SEEN_LAYOUT, np.random.default_rng([seed_base, 11, i]))
        for i in range(n)
    ]
    return envs, tasks


def corki_inputs(n: int, seed_base: int = 0, rng_base: int = 1000):
    """:func:`fleet_inputs` plus the per-lane feedback generators the Corki
    rounds need -- the one definition of the Corki benchmark workload, so
    the pytest suite and ``repro-experiments bench`` measure the same thing."""
    envs, tasks = fleet_inputs(n, seed_base)
    rngs = [np.random.default_rng([rng_base, 12, i]) for i in range(n)]
    return envs, tasks, rngs


def episodes_per_second(run, n: int, rounds: int = 3, setup=None) -> float:
    """Best-of-``rounds`` throughput of ``run`` (which rolls ``n`` episodes).

    ``setup``, when given, is called before each round *outside* the timed
    region and its return value is passed to ``run`` -- fresh environments
    per round without the construction cost polluting the measurement.
    """
    best = float("inf")
    for _ in range(rounds):
        args = () if setup is None else (setup(),)
        started = time.perf_counter()
        run(*args)
        best = min(best, time.perf_counter() - started)
    return n / best


def bench_envelope(results: list[dict], frames: int = BENCH_FRAMES, rounds: int = 3) -> dict:
    """Wrap measurement rows in the artifact envelope (one producer for the
    schema: the CLI, the pytest session dump and the CI gate all agree)."""
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": "fleet",
        "frames_per_episode": frames,
        "rounds": rounds,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }


def measure_fleet_throughput(
    policies=None,
    fleet_sizes: Sequence[int] = FLEET_SIZES,
    frames: int = BENCH_FRAMES,
    rounds: int = 3,
    workers: Sequence[int] | None = SHARDED_WORKERS,
    serve: Sequence[int] | None = SERVE_SLOTS,
    tcp: Sequence[int] | None = TCP_SERVE_SLOTS,
) -> dict:
    """Measure baseline and Corki-5 fleet throughput across fleet sizes.

    Environments and generators are rebuilt per round outside the timed
    region (see :func:`episodes_per_second`); the timed region is the fleet
    run alone.  ``workers`` appends the sharded multi-process axis
    (:func:`measure_sharded_throughput`, plus its ``weak-scaling`` summary
    rows), ``serve`` the request-serving axis
    (:func:`measure_serving_throughput`) and ``tcp`` the socket-path SLO
    axis (:func:`measure_tcp_serving`); pass ``None`` to skip any of them.
    Returns the artifact dict (see :data:`BENCH_SCHEMA`); pass it to
    :func:`write_bench_json` to persist.
    """
    from repro.core import VARIATIONS, run_baseline_fleet, run_corki_fleet

    baseline, corki, _ = policies if policies is not None else train_bench_policies()
    variation = VARIATIONS["corki-5"]
    results = []
    for n in fleet_sizes:
        def baseline_setup(n=n):
            return fleet_inputs(n)

        def run_baseline(inputs):
            envs, tasks = inputs
            run_baseline_fleet(envs, baseline, tasks, max_frames=frames)

        def corki_setup(n=n):
            return corki_inputs(n)

        def run_corki(inputs):
            envs, tasks, rngs = inputs
            run_corki_fleet(envs, corki, tasks, variation, rngs, max_frames=frames)

        results.append(
            {
                "policy": "baseline",
                "fleet_size": n,
                "episodes_per_second": round(
                    episodes_per_second(run_baseline, n, rounds, setup=baseline_setup), 1
                ),
            }
        )
        results.append(
            {
                "policy": "corki-5",
                "fleet_size": n,
                "episodes_per_second": round(
                    episodes_per_second(run_corki, n, rounds, setup=corki_setup), 1
                ),
            }
        )
    if workers:
        sharded = measure_sharded_throughput(
            policies=(baseline, corki, None),
            workers=workers,
            frames=frames,
            rounds=rounds,
        )
        results.extend(sharded)
        results.extend(weak_scaling_summary(sharded))
    if serve:
        results.extend(
            measure_serving_throughput(
                policies=(baseline, corki, None),
                slots=serve,
                frames=frames,
                rounds=rounds,
            )
        )
    if tcp:
        results.extend(
            measure_tcp_serving(
                policies=(baseline, corki, None),
                slots=tcp,
                frames=frames,
                rounds=rounds,
            )
        )
    return bench_envelope(results, frames=frames, rounds=rounds)


def measure_serving_throughput(
    policies=None,
    slots: Sequence[int] = SERVE_SLOTS,
    requests: int = SERVE_REQUESTS,
    frames: int = BENCH_FRAMES,
    rounds: int = 3,
    seed: int = 211,
) -> list[dict]:
    """Sustained requests/second through the evaluation service.

    The workload is ``requests`` single-episode requests cycling the task
    registry (one request per lane index, so every request has its own
    random streams), served by an in-process :class:`~repro.serving.service.
    EvaluationService` with continuous batching at each slot count.  Two
    rows per (policy, slot count):

    * ``"mode": "serve"`` -- caching disabled; the clock covers the whole
      request path (intake, lane construction, rolling, result assembly).
      Since each request is one episode, requests/sec here is episodes/sec
      on the serving path, directly comparable to the in-process fleet rows.
    * ``"mode": "serve-cached"`` -- the same requests against a warm
      content-addressed cache (filled off the clock): the hit-path ceiling.
    """
    from repro.analysis.evaluation import TrainedPolicies
    # repro: allow[LAYER-SAFE] reason=the bench suite measures the serving tier from below; lazy import keeps the layering clean at module scope
    from repro.serving.service import EpisodeRequest, EvaluationService
    from repro.sim import TASKS

    baseline, corki, _ = policies if policies is not None else train_bench_policies()
    trained = TrainedPolicies(baseline, corki, 0, 0)
    request_sets = {
        "roboflamingo": [
            EpisodeRequest(
                system="roboflamingo",
                instructions=(TASKS[k % len(TASKS)].instruction,),
                seed=seed,
                lane=k,
                max_frames=frames,
            )
            for k in range(requests)
        ],
        "corki-5": [
            EpisodeRequest(
                system="corki-5",
                instructions=(TASKS[k % len(TASKS)].instruction,),
                seed=seed,
                lane=k,
                max_frames=frames,
            )
            for k in range(requests)
        ],
    }
    rows = []
    for n in slots:
        for system, policy_name in (("roboflamingo", "baseline"), ("corki-5", "corki-5")):
            batch = request_sets[system]
            cold = EvaluationService(trained, workers=1, slots=n, use_cache=False)
            cold.serve(batch[:2])  # engine warm-up, off the clock
            rows.append(
                {
                    "policy": policy_name,
                    "mode": "serve",
                    "fleet_size": n,
                    "requests": requests,
                    "episodes_per_second": round(
                        episodes_per_second(lambda: cold.serve(batch), requests, rounds), 1
                    ),
                }
            )
            warm = EvaluationService(trained, workers=1, slots=n)
            warm.serve(batch)  # fill the cache, off the clock
            rows.append(
                {
                    "policy": policy_name,
                    "mode": "serve-cached",
                    "fleet_size": n,
                    "requests": requests,
                    "episodes_per_second": round(
                        episodes_per_second(lambda: warm.serve(batch), requests, rounds), 1
                    ),
                }
            )
    return rows


def measure_tcp_serving(
    policies=None,
    slots: Sequence[int] = TCP_SERVE_SLOTS,
    requests: int = SERVE_REQUESTS,
    frames: int = BENCH_FRAMES,
    rounds: int = 3,
    seed: int = 211,
) -> list[dict]:
    """Serving SLOs over the TCP/JSONL front end on a loopback socket.

    The workload is the serve axis's -- ``requests`` single-episode
    requests cycling the task registry -- but driven through a *real*
    asyncio server (:mod:`repro.serving.server`), so framing, admission,
    the drain executor hop and response serialization are all on the
    clock.  The client pipelines the whole batch (every frame sent, one
    blank-line flush), then collects responses; per-request latency is
    response arrival minus that request's send time, and sustained
    throughput is ``requests / (last arrival - first send)``.  Two rows
    per (policy, slot count) -- ``"mode": "tcp-serve"`` with caching off
    and ``"tcp-serve-cached"`` against a cache warmed off the clock --
    each carrying ``p50_ms`` / ``p99_ms`` over the best round's latencies.
    """
    from repro.analysis.evaluation import TrainedPolicies
    # repro: allow[LAYER-SAFE] reason=the bench suite measures the serving tier from below; lazy import keeps the layering clean at module scope
    from repro.serving.client import ServingClient
    # repro: allow[LAYER-SAFE] reason=the bench suite measures the serving tier from below; lazy import keeps the layering clean at module scope
    from repro.serving.server import start_server_thread
    from repro.sim import TASKS

    baseline, corki, _ = policies if policies is not None else train_bench_policies()
    trained = TrainedPolicies(baseline, corki, 0, 0)
    frame_sets = {
        system: [
            {
                "id": f"q{k}",
                "system": system,
                "instruction": TASKS[k % len(TASKS)].instruction,
                "seed": seed,
                "lane": k,
                "max_frames": frames,
            }
            for k in range(requests)
        ]
        for system in ("roboflamingo", "corki-5")
    }

    def measure(handle, batch) -> dict:
        best_elapsed, best_latencies = None, None
        for _ in range(rounds):
            with ServingClient(handle.host, handle.port, attempts=3) as client:
                sent_at: dict[str, float] = {}
                first_send = time.perf_counter()
                for frame in batch:
                    sent_at[frame["id"]] = time.perf_counter()
                    client.send(frame)
                client.flush()
                latencies, last_arrival = [], first_send
                for _ in batch:
                    response = client.recv()
                    last_arrival = time.perf_counter()
                    if response.get("status") != "ok":
                        raise RuntimeError(f"bench request failed: {response}")
                    latencies.append(
                        (last_arrival - sent_at[response["id"]]) * 1000.0
                    )
            elapsed = last_arrival - first_send
            if best_elapsed is None or elapsed < best_elapsed:
                best_elapsed, best_latencies = elapsed, latencies
        return {
            "requests": len(batch),
            "episodes_per_second": round(len(batch) / best_elapsed, 1),
            "p50_ms": round(float(np.percentile(best_latencies, 50)), 2),
            "p99_ms": round(float(np.percentile(best_latencies, 99)), 2),
        }

    rows = []
    for n in slots:
        for system, policy_name in (("roboflamingo", "baseline"), ("corki-5", "corki-5")):
            batch = frame_sets[system]
            with start_server_thread(trained, slots=n, use_cache=False) as cold:
                with ServingClient(cold.host, cold.port, attempts=3) as client:
                    client.request(*batch[:2])  # engine warm-up, off the clock
                rows.append(
                    {
                        "policy": policy_name,
                        "mode": "tcp-serve",
                        "fleet_size": n,
                        **measure(cold, batch),
                    }
                )
            with start_server_thread(trained, slots=n) as warm:
                with ServingClient(warm.host, warm.port, attempts=3) as client:
                    client.request(*batch)  # fill the cache, off the clock
                rows.append(
                    {
                        "policy": policy_name,
                        "mode": "tcp-serve-cached",
                        "fleet_size": n,
                        **measure(warm, batch),
                    }
                )
    return rows


def weak_scaling_summary(rows: list[dict]) -> list[dict]:
    """Summarise sharded rows as ratios against their ``workers=1`` run.

    For every ``(policy, lanes/worker)`` cell measured at more than one
    worker count, each ``workers=W > 1`` row yields a
    ``"mode": "weak-scaling"`` row whose ``ratio_vs_workers_1`` is its
    throughput over the ``workers=1`` throughput -- >= 1.0 is ideal weak
    scaling, and the benchmark suite gates ``workers=2`` at >= 0.9 on
    hosts with the cores to honour it.  Cells without a ``workers=1``
    anchor are skipped (nothing sound to normalise by).
    """
    anchors = {
        (row["policy"], row["fleet_size"]): row["episodes_per_second"]
        for row in rows
        if row.get("workers") == 1
    }
    summary = []
    for row in rows:
        count = row.get("workers")
        if count is None or count == 1:
            continue
        anchor = anchors.get((row["policy"], row["fleet_size"]))
        if not anchor:
            continue
        summary.append(
            {
                "policy": row["policy"],
                "mode": "weak-scaling",
                "fleet_size": row["fleet_size"],
                "workers": count,
                "episodes_per_second": row["episodes_per_second"],
                "ratio_vs_workers_1": round(row["episodes_per_second"] / anchor, 3),
            }
        )
    return summary


def measure_sharded_throughput(
    policies=None,
    workers: Sequence[int] = SHARDED_WORKERS,
    lanes_per_worker: int = SHARDED_LANES_PER_WORKER,
    frames: int = BENCH_FRAMES,
    rounds: int = 5,
    seed: int = 97,
) -> list[dict]:
    """Weak-scaling rows for the multi-process sharded evaluation path.

    For each worker count W, every worker rolls its own
    ``lanes_per_worker``-lane fleet (single-task jobs cycling the registry),
    so total episodes are ``W * lanes_per_worker``.  Pool spawn, policy
    shipment and worker warm-up (one small rollout per worker, so no worker
    pays first-rollout allocator costs on the clock) happen before the
    timer starts; the timed region is chunk dispatch, worker-side env
    construction + rollout, and the lane-order trace merge -- the full cost
    of serving chunks on a warm pool.  Returns result rows tagged with a
    ``"workers"`` key (the in-process rows carry none), ready to merge into
    the artifact envelope.
    """
    from repro.analysis.evaluation import TrainedPolicies
    from repro.analysis.parallel import EvaluationPool, LaneChunk, archive_policies
    from repro.sim import TASKS

    baseline, corki, _ = policies if policies is not None else train_bench_policies()
    archive = archive_policies(TrainedPolicies(baseline, corki, 0, 0))

    def lane_chunks(system: str, count: int, lanes: int, max_frames: int):
        return [
            LaneChunk(
                system=system,
                layout=_bench_layout(),
                seed=seed,
                lane_start=worker * lanes,
                instructions=tuple(
                    (TASKS[(worker * lanes + k) % len(TASKS)].instruction,)
                    for k in range(lanes)
                ),
                fleet_size=lanes,
                max_frames=max_frames,
            )
            for worker in range(count)
        ]

    rows = []
    for count in workers:
        with EvaluationPool(archive, count) as pool:
            pool.warm_up()
            total = count * lanes_per_worker
            for system, policy_name in (("roboflamingo", "baseline"), ("corki-5", "corki-5")):
                # One tiny rollout per worker, off the clock: the first
                # episode through a fresh interpreter pays one-time
                # allocator/BLAS costs that are not per-chunk serving cost.
                pool.run_chunks(lane_chunks(system, count, 2, 2))
                chunks = lane_chunks(system, count, lanes_per_worker, frames)

                def run():
                    merged = [
                        lane for result in pool.run_chunks(chunks) for lane in result
                    ]
                    assert len(merged) == total

                rows.append(
                    {
                        "policy": policy_name,
                        "fleet_size": lanes_per_worker,
                        "workers": count,
                        "total_episodes": total,
                        "episodes_per_second": round(
                            episodes_per_second(run, total, rounds), 1
                        ),
                    }
                )
    return rows


def _bench_layout():
    from repro.sim import SEEN_LAYOUT

    return SEEN_LAYOUT


def write_bench_json(path: str | Path, report: dict) -> Path:
    """Write the artifact atomically; returns the resolved path."""
    from repro.atomicio import atomic_write_text

    return atomic_write_text(Path(path), json.dumps(report, indent=2) + "\n")


def load_bench_json(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def recorded_throughput(
    report: dict,
    policy: str,
    fleet_size: int,
    workers: int | None = None,
    mode: str | None = None,
) -> float | None:
    """Episodes/sec recorded for one (policy, fleet size) cell, if present.

    ``workers=None, mode=None`` (the defaults, and what the CI regression
    gate reads) matches only plain in-process rows; pass a worker count to
    read the sharded axis, or ``mode="serve"`` / ``"serve-cached"`` to read
    the request-serving axis.
    """
    for entry in report.get("results", []):
        if (
            entry.get("policy") == policy
            and entry.get("fleet_size") == fleet_size
            and entry.get("workers") == workers
            and entry.get("mode") == mode
        ):
            return float(entry["episodes_per_second"])
    return None


def format_report(report: dict) -> str:
    """Human-readable table of one measurement (the CLI's output)."""
    lines = [
        f"Fleet throughput (episodes/sec, {report['frames_per_episode']}-frame episodes, "
        f"best of {report['rounds']} rounds)",
        f"{'fleet size':>10}  {'baseline':>10}  {'corki-5':>10}",
    ]
    in_process = [
        entry for entry in report["results"]
        if entry.get("workers") is None and entry.get("mode") is None
    ]
    sharded = [
        entry for entry in report["results"]
        if entry.get("workers") is not None and entry.get("mode") is None
    ]
    served = [
        entry for entry in report["results"]
        if entry.get("mode") in ("serve", "serve-cached")
    ]
    tcp_rows = [
        entry for entry in report["results"]
        if str(entry.get("mode", "")).startswith("tcp-")
    ]
    scaling = [
        entry for entry in report["results"] if entry.get("mode") == "weak-scaling"
    ]
    for n in sorted({entry["fleet_size"] for entry in in_process}):
        base = recorded_throughput(report, "baseline", n)
        cork = recorded_throughput(report, "corki-5", n)
        lines.append(
            f"{n:>10}  "
            f"{'-' if base is None else format(base, '.1f'):>10}  "
            f"{'-' if cork is None else format(cork, '.1f'):>10}"
        )
    if sharded:
        lines.append("")
        lines.append(
            "Sharded across worker processes (weak scaling: lanes/worker fixed)"
        )
        lines.append(
            f"{'workers':>10}  {'lanes/wkr':>10}  {'baseline':>10}  {'corki-5':>10}"
        )
        cells = sorted(
            {(entry["workers"], entry["fleet_size"]) for entry in sharded}
        )
        for count, lanes in cells:
            base = recorded_throughput(report, "baseline", lanes, workers=count)
            cork = recorded_throughput(report, "corki-5", lanes, workers=count)
            lines.append(
                f"{count:>10}  {lanes:>10}  "
                f"{'-' if base is None else format(base, '.1f'):>10}  "
                f"{'-' if cork is None else format(cork, '.1f'):>10}"
            )
    if served:
        lines.append("")
        lines.append(
            "Evaluation service (requests/sec; single-episode requests, "
            "continuous batching)"
        )
        lines.append(
            f"{'slots':>10}  {'mode':>12}  {'baseline':>10}  {'corki-5':>10}"
        )
        cells = sorted({(entry["fleet_size"], entry["mode"]) for entry in served})
        for n, mode in cells:
            base = recorded_throughput(report, "baseline", n, mode=mode)
            cork = recorded_throughput(report, "corki-5", n, mode=mode)
            lines.append(
                f"{n:>10}  {mode:>12}  "
                f"{'-' if base is None else format(base, '.1f'):>10}  "
                f"{'-' if cork is None else format(cork, '.1f'):>10}"
            )
    if tcp_rows:
        lines.append("")
        lines.append(
            "TCP front end (loopback socket; sustained eps, pipelined-batch latency)"
        )
        lines.append(
            f"{'slots':>10}  {'mode':>16}  {'policy':>10}  "
            f"{'eps':>8}  {'p50 ms':>8}  {'p99 ms':>8}"
        )
        for entry in sorted(
            tcp_rows, key=lambda e: (e["fleet_size"], e["mode"], e["policy"])
        ):
            lines.append(
                f"{entry['fleet_size']:>10}  {entry['mode']:>16}  {entry['policy']:>10}  "
                f"{entry['episodes_per_second']:>8.1f}  "
                f"{entry['p50_ms']:>8.2f}  {entry['p99_ms']:>8.2f}"
            )
    if scaling:
        lines.append("")
        lines.append("Weak scaling vs workers=1 (>= 1.0 ideal; CI gates >= 0.9)")
        lines.append(
            f"{'workers':>10}  {'lanes/wkr':>10}  {'policy':>10}  {'ratio':>8}"
        )
        for entry in sorted(
            scaling, key=lambda e: (e["workers"], e["fleet_size"], e["policy"])
        ):
            lines.append(
                f"{entry['workers']:>10}  {entry['fleet_size']:>10}  "
                f"{entry['policy']:>10}  {entry['ratio_vs_workers_1']:>8.3f}"
            )
    return "\n".join(lines)
