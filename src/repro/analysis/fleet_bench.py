"""Fleet throughput measurement and its machine-readable artifact.

One measurement routine backs three consumers:

* ``repro-experiments bench [--json PATH]`` -- the CLI entry point;
* ``benchmarks/test_bench_fleet.py`` -- the pytest-benchmark suite, whose
  session can dump the same artifact via ``--fleet-json``; and
* the CI throughput gate, which compares a fresh N=32 measurement against
  the committed ``artifacts/BENCH_fleet.json`` and fails on a >2x
  regression.

The artifact records episodes/sec for the baseline (inference every frame)
and Corki-5 (inference at trajectory boundaries) execution models across
fleet sizes, which is the perf trajectory the ROADMAP asks each PR to move.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Sequence

import numpy as np

BENCH_SCHEMA = "repro-fleet-bench/1"
FLEET_SIZES = (1, 8, 32, 128)
BENCH_FRAMES = 20
DEFAULT_BENCH_PATH = Path(__file__).resolve().parents[3] / "artifacts" / "BENCH_fleet.json"


def train_bench_policies():
    """Small trained policies at the benchmark scale (shared with conftest)."""
    from repro.core import (
        BaselinePolicy,
        CorkiPolicy,
        TrainingConfig,
        train_baseline,
        train_corki,
    )
    from repro.sim import OBSERVATION_DIM, SEEN_LAYOUT, TASKS, collect_demonstrations

    rng = np.random.default_rng(0)
    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=3)
    baseline = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    corki = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    config = TrainingConfig(epochs=1, batch_size=64)
    train_baseline(baseline, demos, config)
    train_corki(corki, demos, config)
    return baseline, corki, demos


def fleet_inputs(n: int, seed_base: int = 0):
    """Fresh environments and a task per lane for one benchmark round."""
    from repro.sim import SEEN_LAYOUT, TASKS, ManipulationEnv

    tasks = [TASKS[i % len(TASKS)] for i in range(n)]
    envs = [
        ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(seed_base + i))
        for i in range(n)
    ]
    return envs, tasks


def episodes_per_second(run, n: int, rounds: int = 3) -> float:
    """Best-of-``rounds`` throughput of ``run()`` (which rolls ``n`` episodes)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return n / best


def bench_envelope(results: list[dict], frames: int = BENCH_FRAMES, rounds: int = 3) -> dict:
    """Wrap measurement rows in the artifact envelope (one producer for the
    schema: the CLI, the pytest session dump and the CI gate all agree)."""
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": "fleet",
        "frames_per_episode": frames,
        "rounds": rounds,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }


def measure_fleet_throughput(
    policies=None,
    fleet_sizes: Sequence[int] = FLEET_SIZES,
    frames: int = BENCH_FRAMES,
    rounds: int = 3,
) -> dict:
    """Measure baseline and Corki-5 fleet throughput across fleet sizes.

    Returns the artifact dict (see :data:`BENCH_SCHEMA`); pass it to
    :func:`write_bench_json` to persist.
    """
    from repro.core import VARIATIONS, run_baseline_fleet, run_corki_fleet

    baseline, corki, _ = policies if policies is not None else train_bench_policies()
    variation = VARIATIONS["corki-5"]
    results = []
    for n in fleet_sizes:
        def run_baseline():
            envs, tasks = fleet_inputs(n)
            run_baseline_fleet(envs, baseline, tasks, max_frames=frames)

        def run_corki():
            envs, tasks = fleet_inputs(n)
            rngs = [np.random.default_rng(1000 + i) for i in range(n)]
            run_corki_fleet(envs, corki, tasks, variation, rngs, max_frames=frames)

        results.append(
            {
                "policy": "baseline",
                "fleet_size": n,
                "episodes_per_second": round(episodes_per_second(run_baseline, n, rounds), 1),
            }
        )
        results.append(
            {
                "policy": "corki-5",
                "fleet_size": n,
                "episodes_per_second": round(episodes_per_second(run_corki, n, rounds), 1),
            }
        )
    return bench_envelope(results, frames=frames, rounds=rounds)


def write_bench_json(path: str | Path, report: dict) -> Path:
    """Write the artifact; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def load_bench_json(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def recorded_throughput(report: dict, policy: str, fleet_size: int) -> float | None:
    """Episodes/sec recorded for one (policy, fleet size) cell, if present."""
    for entry in report.get("results", []):
        if entry.get("policy") == policy and entry.get("fleet_size") == fleet_size:
            return float(entry["episodes_per_second"])
    return None


def format_report(report: dict) -> str:
    """Human-readable table of one measurement (the CLI's output)."""
    lines = [
        f"Fleet throughput (episodes/sec, {report['frames_per_episode']}-frame episodes, "
        f"best of {report['rounds']} rounds)",
        f"{'fleet size':>10}  {'baseline':>10}  {'corki-5':>10}",
    ]
    sizes = sorted({entry["fleet_size"] for entry in report["results"]})
    for n in sizes:
        base = recorded_throughput(report, "baseline", n)
        cork = recorded_throughput(report, "corki-5", n)
        lines.append(
            f"{n:>10}  "
            f"{'-' if base is None else format(base, '.1f'):>10}  "
            f"{'-' if cork is None else format(cork, '.1f'):>10}"
        )
    return "\n".join(lines)
