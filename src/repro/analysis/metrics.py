"""Evaluation metrics: success rates, job lengths, and trajectory quality.

Paper Sec. 5.1 defines four metrics: the per-task success rate, the average
job length over five-task jobs, the mean trajectory error (RMSE against the
ground-truth trajectory) and the maximum trajectory distance per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "JobStatistics",
    "job_statistics",
    "trajectory_rmse",
    "max_trajectory_distance",
    "TrajectoryMetrics",
    "trajectory_metrics",
]


@dataclass(frozen=True)
class JobStatistics:
    """Success statistics over a batch of five-task jobs.

    ``success_at`` holds the fraction of jobs that completed at least
    1, 2, ..., ``length`` consecutive tasks (Tbl. 1/2's columns);
    ``average_length`` is the mean number of completed tasks per job.
    """

    success_at: np.ndarray
    average_length: float
    jobs: int

    def row(self) -> str:
        cells = " ".join(f"{value * 100:5.1f}%" for value in self.success_at)
        return f"{cells}  avg {self.average_length:.3f}"


def job_statistics(completed_counts: list[int], length: int = 5) -> JobStatistics:
    """Aggregate per-job completed-task counts into Tbl. 1/2 statistics."""
    if not completed_counts:
        raise ValueError("need at least one job")
    counts = np.asarray(completed_counts)
    if (counts < 0).any() or (counts > length).any():
        raise ValueError(f"completed counts must lie in [0, {length}]")
    success_at = np.array([(counts >= k).mean() for k in range(1, length + 1)])
    return JobStatistics(
        success_at=success_at,
        average_length=float(counts.mean()),
        jobs=len(counts),
    )


def _aligned(executed: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Trim both paths to their common length for pointwise comparison."""
    frames = min(len(executed), len(reference))
    return executed[:frames], reference[:frames]


def trajectory_rmse(executed: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square positional error between two pose paths (metres).

    Only the translational dimensions enter, matching the paper's geographic
    distance metric.
    """
    executed, reference = _aligned(np.asarray(executed), np.asarray(reference))
    difference = executed[:, :3] - reference[:, :3]
    return float(np.sqrt(np.mean(np.sum(difference**2, axis=1))))


def max_trajectory_distance(executed: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Maximum absolute deviation per translational dimension (x, y, z)."""
    executed, reference = _aligned(np.asarray(executed), np.asarray(reference))
    return np.abs(executed[:, :3] - reference[:, :3]).max(axis=0)


@dataclass(frozen=True)
class TrajectoryMetrics:
    """Fig. 11's two statistics, averaged over a batch of episodes."""

    mean_rmse: float
    max_distance: np.ndarray  # (3,): x, y, z


def trajectory_metrics(
    executed_paths: list[np.ndarray], reference_paths: list[np.ndarray]
) -> TrajectoryMetrics:
    """Aggregate trajectory error statistics over a batch of episodes."""
    if len(executed_paths) != len(reference_paths) or not executed_paths:
        raise ValueError("need matching, non-empty executed/reference path lists")
    rmses = [
        trajectory_rmse(executed, reference)
        for executed, reference in zip(executed_paths, reference_paths)
    ]
    distances = np.array(
        [
            max_trajectory_distance(executed, reference)
            for executed, reference in zip(executed_paths, reference_paths)
        ]
    )
    return TrajectoryMetrics(
        mean_rmse=float(np.mean(rmses)),
        max_distance=distances.mean(axis=0),
    )
