"""Persist experiment reports to the artifacts directory.

``repro-experiments --save`` routes every report through here so a full
sweep leaves a browsable record: one text file per experiment plus a JSON
index with timestamps and profile metadata.  EXPERIMENTS.md cites these
files as the provenance of its paper-vs-measured numbers.
"""

from __future__ import annotations

import json
import os
import time

from repro.atomicio import atomic_write_text

__all__ = ["default_artifact_dir", "save_report", "load_index"]

_INDEX_NAME = "experiments-index.json"


def default_artifact_dir() -> str:
    """The repository-local artifacts directory used by all caches."""
    return os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "..", "artifacts"))


def save_report(
    experiment_id: str,
    report: str,
    profile_name: str,
    directory: str | None = None,
) -> str:
    """Write one report and update the index; returns the report path."""
    directory = directory or default_artifact_dir()
    os.makedirs(directory, exist_ok=True)
    filename = f"{experiment_id}-{profile_name}.txt"
    path = os.path.join(directory, filename)
    if not report.endswith("\n"):
        report += "\n"
    atomic_write_text(path, report)

    index_path = os.path.join(directory, _INDEX_NAME)
    index = {}
    if os.path.exists(index_path):
        with open(index_path, encoding="utf-8") as handle:
            index = json.load(handle)
    index[experiment_id] = {
        "file": filename,
        "profile": profile_name,
        # repro: allow[NO-WALLCLOCK] reason=provenance timestamp in the index, never fed back into results
        "written_at": time.strftime("%Y-%m-%d %H:%M:%S"),
    }
    atomic_write_text(index_path, json.dumps(index, indent=2, sort_keys=True) + "\n")
    return path


def load_index(directory: str | None = None) -> dict:
    """Read the experiment index; empty when nothing was saved yet."""
    directory = directory or default_artifact_dir()
    index_path = os.path.join(directory, _INDEX_NAME)
    if not os.path.exists(index_path):
        return {}
    with open(index_path, encoding="utf-8") as handle:
        return json.load(handle)
