"""Multi-process sharded fleet evaluation: the scale-out path.

:mod:`repro.analysis.evaluation` rolls jobs as fleet lanes in sequential
``fleet_size`` chunks.  This module lifts that loop across OS processes: the
lane space is split into contiguous shards, each shard ships to a worker as
a :class:`LaneChunk`, and the workers execute *the same*
:func:`repro.analysis.evaluation.roll_lane_chunk` the in-process path runs.
Because every lane's randomness is keyed on its global index
(``lane_generators`` -- ``[seed, 1, lane]`` / ``[seed, 2, lane]``) and fleet
results are fleet-size invariant, the merged output is byte-identical to a
single-process run for any worker count; ``tests/test_parallel.py`` asserts
this for Tbl. 1 and the per-family matrix.

Design notes:

* **Spawn, not fork.**  Workers start from a fresh interpreter, so they
  never inherit BLAS thread pools, open file handles or module state from
  the parent -- the only inputs a worker sees are its initializer payload
  and its chunks, which keeps the determinism contract auditable.
* **Policies ship once.**  Trained policies serialize to npz bytes (the
  ``nn/serialization.py`` state-dict format) in a :class:`PolicyArchive`
  passed to the pool initializer; each worker reconstructs them a single
  time, not per chunk.  npz round-trips float64 exactly, so worker-side
  inference is bitwise equal to the parent's.
* **Tasks travel as instruction strings.**  ``Task`` objects close over
  lambdas and cannot pickle; workers look the instructions back up in their
  own registry (``task_by_instruction``).
* **Failures surface.**  A chunk that raises in a worker propagates the
  exception through ``Pool.map`` -- lanes are never silently dropped -- and
  the merge re-checks that exactly one trace list came back per lane.

The pool is cached per (policies, worker count) so a sweep that evaluates
many systems with the same trained policies (Tbl. 1's seven rollouts) pays
the spawn cost once; :func:`lease_pool` hands the same warm pool to
long-lived callers (the :mod:`repro.serving` evaluation service keeps one
leased between requests, dispatching chunks asynchronously via
:meth:`EvaluationPool.submit_chunk` so workers stay saturated while new
requests arrive).

Determinism guarantees of this module: worker-side rollouts are bitwise
equal to parent-side rollouts (spawned interpreters, npz-exact policy
round-trips, the same ``roll_lane_chunk`` code object), lane randomness is
a pure function of ``(seed, global lane index)`` whether the index comes
from a contiguous ``lane_start`` range or an explicit ``lane_indices``
tuple, and merges preserve lane order -- so *any* partition of the lane
space across *any* number of workers reproduces the single-process result
byte for byte.
"""

from __future__ import annotations

import atexit
import io
import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.runner import MAX_EPISODE_FRAMES, EpisodeTrace
from repro.nn.serialization import load_state_dict, state_dict
from repro.reliability.faults import (
    ChunkDirective,
    FaultPlan,
    InjectedFault,
    apply_chunk_directive,
)
from repro.reliability.health import HealthCounters, PoolUnhealthy
from repro.reliability.retry import RetryPolicy
from repro.sim.world import SceneLayout

__all__ = [
    "PolicyArchive",
    "LaneChunk",
    "OracleChunk",
    "EvaluationPool",
    "archive_policies",
    "restore_policies",
    "save_archive",
    "load_archive",
    "lease_pool",
    "release_pool",
    "shard_lanes",
    "run_sharded",
    "run_oracle_sharded",
    "shutdown_pools",
]

# Worker-side failures the retry loop treats as transient: an injected crash,
# a chunk timeout (the only way a hard worker death is observable -- the pool
# repopulates the process but the dispatched task is simply lost), and the
# IPC errors a dying worker leaves behind on the result pipe.  Anything else
# is a genuine bug in evaluation code and propagates unchanged -- retrying a
# deterministic exception just re-raises it more slowly.
_TRANSIENT_IPC_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError)


# -- policy shipment -----------------------------------------------------------


@dataclass(frozen=True)
class PolicyArchive:
    """Trained policies serialized once for shipment to every worker.

    ``baseline_npz`` / ``corki_npz`` hold each policy's full state dict as
    npz bytes (the :mod:`repro.nn.serialization` format -- float64
    round-trips exactly, which is what makes worker-side inference bitwise
    equal to the parent's).  ``normalizer_scale`` is the shared
    :class:`~repro.sim.dataset.ActionNormalizer` scale vector as npy bytes.
    ``token_dim`` / ``hidden_dim`` let :func:`restore_policies` rebuild
    modules of the right shape before loading, and ``demos_per_task`` /
    ``epochs`` carry the training metadata through so a restored
    :class:`~repro.analysis.evaluation.TrainedPolicies` is indistinguishable
    from the original.  The archive bytes are also the content the serving
    layer's cache keys hash (:func:`repro.serving.cache.policy_digest`):
    any weight change changes the digest.
    """

    baseline_npz: bytes
    corki_npz: bytes
    normalizer_scale: bytes
    token_dim: int
    hidden_dim: int
    demos_per_task: int
    epochs: int


def _module_npz(module) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, **state_dict(module))
    return buffer.getvalue()


def _load_module_npz(module, payload: bytes) -> None:
    with np.load(io.BytesIO(payload)) as archive:
        load_state_dict(module, dict(archive.items()))


def archive_policies(policies) -> PolicyArchive:
    """Serialize a :class:`TrainedPolicies` pair to one picklable payload."""
    scale = io.BytesIO()
    np.save(scale, policies.baseline.normalizer.scale)
    return PolicyArchive(
        baseline_npz=_module_npz(policies.baseline),
        corki_npz=_module_npz(policies.corki),
        normalizer_scale=scale.getvalue(),
        token_dim=policies.baseline.token_dim,
        hidden_dim=policies.baseline.hidden_dim,
        demos_per_task=policies.demos_per_task,
        epochs=policies.epochs,
    )


def restore_policies(archive: PolicyArchive):
    """Reconstruct the trained policies from an archive (worker side)."""
    from repro.analysis.evaluation import TrainedPolicies
    from repro.core.policy import BaselinePolicy, CorkiPolicy
    from repro.sim.camera import OBSERVATION_DIM
    from repro.sim.dataset import ActionNormalizer
    from repro.sim.tasks import TASKS

    # The init weights are irrelevant -- load_state_dict overwrites every
    # parameter, and it raises on any missing/mis-shaped entry.
    # repro: allow[RNG-KEYED] reason=throwaway init weights; load_state_dict overwrites every parameter
    rng = np.random.default_rng(0)
    baseline = BaselinePolicy(
        OBSERVATION_DIM, len(TASKS), rng,
        token_dim=archive.token_dim, hidden_dim=archive.hidden_dim,
    )
    corki = CorkiPolicy(
        OBSERVATION_DIM, len(TASKS), rng,
        token_dim=archive.token_dim, hidden_dim=archive.hidden_dim,
    )
    _load_module_npz(baseline, archive.baseline_npz)
    _load_module_npz(corki, archive.corki_npz)
    scale = np.load(io.BytesIO(archive.normalizer_scale))
    baseline.set_normalizer(ActionNormalizer(scale))
    corki.set_normalizer(ActionNormalizer(scale))
    return TrainedPolicies(baseline, corki, archive.demos_per_task, archive.epochs)


_ARCHIVE_SCHEMA = "repro-policy-archive/1"


def save_archive(path, archive: PolicyArchive):
    """Persist one :class:`PolicyArchive` as a single npz file (atomic).

    This is the on-disk shape the serving tier's hot-reload op loads
    (``{"op": "reload", "archive": PATH}``): the exact bytes
    :func:`archive_policies` produced, wrapped as uint8 arrays, so
    ``restore_policies(load_archive(path))`` reproduces the trained pair --
    and therefore its :func:`~repro.serving.cache.policy_digest` -- exactly.
    """
    from repro.atomicio import atomic_savez

    return atomic_savez(
        path,
        schema=np.array(_ARCHIVE_SCHEMA),
        baseline_npz=np.frombuffer(archive.baseline_npz, dtype=np.uint8),
        corki_npz=np.frombuffer(archive.corki_npz, dtype=np.uint8),
        normalizer_scale=np.frombuffer(archive.normalizer_scale, dtype=np.uint8),
        dims=np.array([
            archive.token_dim, archive.hidden_dim,
            archive.demos_per_task, archive.epochs,
        ], dtype=int),
    )


def load_archive(path) -> PolicyArchive:
    """Inverse of :func:`save_archive`; raises on any malformed file."""
    with np.load(path) as data:
        if "schema" not in data.files or str(data["schema"]) != _ARCHIVE_SCHEMA:
            raise ValueError(f"{path} is not a {_ARCHIVE_SCHEMA} policy archive")
        dims = [int(value) for value in data["dims"]]
        return PolicyArchive(
            baseline_npz=data["baseline_npz"].tobytes(),
            corki_npz=data["corki_npz"].tobytes(),
            normalizer_scale=data["normalizer_scale"].tobytes(),
            token_dim=dims[0],
            hidden_dim=dims[1],
            demos_per_task=dims[2],
            epochs=dims[3],
        )


# -- chunk specifications ------------------------------------------------------


@dataclass(frozen=True)
class LaneChunk:
    """One worker's slice of an evaluation's lane space.

    ``instructions[k]`` holds the instruction strings of the job on global
    lane ``lane_start + k`` (or on lane ``lane_indices[k]`` when the chunk
    carries explicit indices -- the result-cache path rolls only the lanes
    that missed, which are rarely contiguous); the worker resolves them
    against its own task registry and rolls the block with
    ``roll_lane_chunk``.  Lane randomness keys on the *global* index either
    way, so how the lane space is sliced never changes a lane's bytes.
    """

    system: str
    layout: SceneLayout
    seed: int
    lane_start: int
    instructions: tuple[tuple[str, ...], ...]
    fleet_size: int
    max_frames: int = MAX_EPISODE_FRAMES
    lane_indices: tuple[int, ...] | None = None


@dataclass(frozen=True)
class OracleChunk:
    """A shard of the expert-oracle sweep: (task index, episode) pairs."""

    layout: SceneLayout
    seed: int
    pairs: tuple[tuple[int, int], ...]


# -- worker side ---------------------------------------------------------------

_WORKER_POLICIES = None


def _init_worker(archive: PolicyArchive | None) -> None:
    """Pool initializer: restore the shipped policies exactly once."""
    global _WORKER_POLICIES
    _WORKER_POLICIES = None if archive is None else restore_policies(archive)


def _warm_up(_: int) -> bool:
    """Near-no-op task that forces a worker through import + initializer.

    The brief hold keeps an already-warm worker from draining the whole
    warm-up queue before its slower siblings finish spawning (pool tasks
    are pulled from one shared queue, so per-worker delivery is otherwise
    not guaranteed).
    """
    import time

    time.sleep(0.05)
    return True


def _run_lane_chunk(chunk: LaneChunk) -> list[list[EpisodeTrace]]:
    from repro.analysis.evaluation import roll_lane_chunk
    from repro.sim.tasks import task_by_instruction

    if _WORKER_POLICIES is None:
        raise RuntimeError("worker pool was started without a policy archive")
    lane_jobs = [
        [task_by_instruction(instruction) for instruction in job]
        for job in chunk.instructions
    ]
    return roll_lane_chunk(
        _WORKER_POLICIES,
        chunk.system,
        chunk.layout,
        chunk.seed,
        lane_jobs,
        lane_start=chunk.lane_start,
        fleet_size=chunk.fleet_size,
        max_frames=chunk.max_frames,
        lane_indices=chunk.lane_indices,
    )


def _run_faulted_chunk(
    payload: tuple[LaneChunk, ChunkDirective],
) -> list[list[EpisodeTrace]]:
    """Execute an injected fault, then roll the chunk normally.

    The parent decides the directive (it owns the :class:`FaultPlan`), so the
    worker only replays it: crash/hang/slow first, then -- if the directive
    let it live -- the exact same ``_run_lane_chunk`` a fault-free dispatch
    runs, which is what keeps recovered traces byte-identical.
    """
    chunk, directive = payload
    apply_chunk_directive(directive)
    return _run_lane_chunk(chunk)


def _run_oracle_chunk(chunk: OracleChunk) -> list[tuple[str, str, bool]]:
    from repro.analysis.evaluation import oracle_episode_outcome

    return [
        oracle_episode_outcome(chunk.layout, index, episode, chunk.seed)
        for index, episode in chunk.pairs
    ]


# -- parent side ---------------------------------------------------------------


def _chunk_fault_key(chunk: LaneChunk) -> tuple[int, int, int]:
    """A :class:`FaultPlan` identity for one chunk: (seed, first global lane,
    lane count).  Stable across retries and across how the parent happened to
    order its dispatches, so the same plan faults the same chunk every run."""
    first = chunk.lane_indices[0] if chunk.lane_indices else chunk.lane_start
    return (chunk.seed, first, len(chunk.instructions))


class EvaluationPool:
    """A warm spawn-context worker pool bound to one set of policies.

    Workers restore the archived policies in their initializer, so
    dispatching a chunk costs only the chunk's own pickling.  Use as a
    context manager, or rely on the module-level cache (:func:`run_sharded`)
    which keeps one pool alive per (policies, worker count).

    Dispatch is fault-tolerant: :meth:`run_chunks_reliably` retries
    transient chunk failures (injected crashes, chunk timeouts, IPC errors
    from a dying worker) with capped exponential backoff, respawning the
    whole pool when a worker process actually died, and re-dispatching only
    the failed chunks.  Because a chunk's lane randomness is keyed on global
    lane indices -- never on which attempt or which worker rolled it -- a
    re-rolled chunk is byte-identical to a first-try roll, so recovery
    preserves the module's merge contract.  ``health`` counts retries,
    respawns and injected faults for ``stats()`` reporting.
    """

    def __init__(self, archive: PolicyArchive | None, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._archive = archive
        self.health = HealthCounters()
        self._pool = self._spawn()

    def _spawn(self):
        context = multiprocessing.get_context("spawn")
        return context.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(self._archive,),
        )

    def respawn(self) -> None:
        """Replace the worker processes wholesale (after a worker death).

        ``terminate`` rather than a graceful close: a pool that lost a
        worker mid-task can hold results that will never arrive, and the
        tasks it was running are re-dispatched by the caller anyway.
        """
        self._pool.terminate()
        self._pool.join()
        self._pool = self._spawn()
        self.health.respawns += 1

    def warm_up(self) -> None:
        """Best-effort warm-up: push every worker through import + restore.

        Dispatches two brief hold tasks per worker slot; because each task
        occupies its worker for a moment, the queue drains across all ready
        workers instead of being swallowed by the first one.  Benchmarks
        call this (plus a small real rollout per worker) so the timed
        region measures chunk execution, not interpreter start-up; best-of
        rounds absorb whatever cold start slips through.
        """
        self._pool.map(_warm_up, range(2 * self.workers), chunksize=1)

    def run_chunks(self, chunks: Sequence[LaneChunk]) -> list[list[list[EpisodeTrace]]]:
        """Execute lane chunks; a chunk that fails raises, never drops lanes.

        Transient failures (a crashed worker, a broken result pipe) are
        retried under the default :class:`RetryPolicy` before anything
        surfaces; deterministic worker exceptions propagate on the first
        attempt, exactly as before.
        """
        return self.run_chunks_reliably(chunks)

    def _dispatch(self, chunk: LaneChunk, attempt: int, fault_plan: FaultPlan | None):
        """Queue one chunk attempt, injecting the plan's directive if any."""
        if fault_plan is not None:
            directive = fault_plan.chunk_directive(_chunk_fault_key(chunk), attempt)
            if directive is not None:
                self.health.faults_injected += 1
                return self._pool.apply_async(_run_faulted_chunk, ((chunk, directive),))
        return self._pool.apply_async(_run_lane_chunk, (chunk,))

    def run_chunks_reliably(
        self,
        chunks: Sequence[LaneChunk],
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        chunk_timeout: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> list[list[list[EpisodeTrace]]]:
        """Execute lane chunks with per-chunk retry and pool respawn.

        Every pending chunk is dispatched asynchronously, then collected;
        a chunk whose failure is transient (injected crash, result timeout,
        IPC error) is queued for the next round, after a capped-exponential
        backoff and -- when the failure implies a dead worker process -- a
        full pool respawn.  Only failed chunks re-dispatch; completed
        results are kept, and the return is in ``chunks`` order regardless
        of which attempt produced each entry.  ``chunk_timeout`` (seconds)
        is what makes a *hard* worker death detectable: the pool repopulates
        the process but the task's result is lost, so only the deadline
        expiring tells the parent to re-dispatch.  Without a timeout, hard
        deaths hang exactly as they always did.

        Raises :class:`PoolUnhealthy` (chaining the last underlying failure)
        once any chunk exhausts ``retry.max_attempts``; deterministic worker
        exceptions propagate immediately, unretried.
        """
        retry = retry if retry is not None else RetryPolicy()
        chunk_list = list(chunks)
        results: list = [None] * len(chunk_list)
        attempts = [0] * len(chunk_list)
        pending = list(range(len(chunk_list)))
        while pending:
            handles = [
                (index, self._dispatch(chunk_list[index], attempts[index], fault_plan))
                for index in pending
            ]
            failed: list[int] = []
            respawn_needed = False
            last_failure: BaseException | None = None
            for index, handle in handles:
                try:
                    results[index] = handle.get(chunk_timeout)
                except InjectedFault as exc:
                    # The worker raised and survived; no respawn needed.
                    failed.append(index)
                    last_failure = exc
                except multiprocessing.TimeoutError as exc:
                    failed.append(index)
                    last_failure = exc
                    respawn_needed = True
                except _TRANSIENT_IPC_ERRORS as exc:
                    failed.append(index)
                    last_failure = exc
                    respawn_needed = True
            if not failed:
                break
            for index in failed:
                attempts[index] += 1
                if attempts[index] >= retry.max_attempts:
                    raise PoolUnhealthy(
                        f"chunk {_chunk_fault_key(chunk_list[index])} failed "
                        f"{attempts[index]} times (retry budget exhausted)"
                    ) from last_failure
            self.health.retries += len(failed)
            if respawn_needed:
                self.respawn()
            delay = retry.delay(max(attempts[index] for index in failed) - 1)
            if delay > 0:
                sleep(delay)
            pending = failed
        return results

    def submit_chunk(self, chunk: LaneChunk):
        """Dispatch one chunk without blocking; returns the ``AsyncResult``.

        This is the continuous-service entry point: the evaluation service
        queues every pending request's chunk at once and collects results as
        workers finish, so a slow chunk never idles the rest of the pool.
        A worker-side failure surfaces from the returned handle's ``get()``.
        """
        return self._pool.apply_async(_run_lane_chunk, (chunk,))

    def run_oracle_chunks(
        self, chunks: Sequence[OracleChunk]
    ) -> list[list[tuple[str, str, bool]]]:
        return self._pool.map(_run_oracle_chunk, list(chunks), chunksize=1)

    def close(self) -> None:
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "EvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# Cache value keeps a strong reference to the policies: the key uses their
# id(), which stays unambiguous only while the object is alive.
_POOL_CACHE: dict[tuple[int, int], tuple[object, EvaluationPool]] = {}

# Outstanding lease_pool() leases per cache key; release_pool() tears the
# pool down when the last lease returns, so a crashed service drain cannot
# leak spawn workers until interpreter exit.
_LEASE_COUNTS: dict[tuple[int, int], int] = {}


def _pool_key(policies, workers: int) -> tuple[int, int]:
    return (0 if policies is None else id(policies), workers)


def _cached_pool(policies, workers: int) -> EvaluationPool:
    """One pool per (policies identity, worker count).

    Policies are frozen after training in this codebase, so identity is a
    sound cache key; a sweep evaluating seven systems with the same weights
    spawns its workers once.  Pools are torn down atexit (or explicitly via
    :func:`shutdown_pools`).
    """
    key = _pool_key(policies, workers)
    entry = _POOL_CACHE.get(key)
    if entry is None:
        if not _POOL_CACHE:
            atexit.register(shutdown_pools)
        archive = None if policies is None else archive_policies(policies)
        entry = (policies, EvaluationPool(archive, workers))
        _POOL_CACHE[key] = entry
    return entry[1]


def shutdown_pools() -> None:
    """Terminate every cached worker pool (idempotent)."""
    _LEASE_COUNTS.clear()
    while _POOL_CACHE:
        _, (_, pool) = _POOL_CACHE.popitem()
        pool.close()


def lease_pool(policies, workers: int) -> EvaluationPool:
    """Lease the warm cached pool for ``policies`` at ``workers`` processes.

    The lease is shared, not exclusive: the module-level cache owns the pool
    and keeps it alive between requests (this is what lets the evaluation
    service answer a request seconds after the last one without re-spawning
    interpreters or re-shipping weights).  Do **not** ``close()`` a leased
    pool -- pair every lease with :func:`release_pool`, which terminates the
    pool once the last lease returns; :func:`shutdown_pools` (registered
    atexit) remains the backstop for leases never released.
    """
    pool = _cached_pool(policies, workers)
    key = _pool_key(policies, workers)
    _LEASE_COUNTS[key] = _LEASE_COUNTS.get(key, 0) + 1
    return pool


def release_pool(policies, workers: int) -> None:
    """Return one :func:`lease_pool` lease; tear the pool down on the last.

    Idempotent past zero (releasing an unleased pool is a no-op), so it is
    safe to call from both an explicit ``close()`` and a ``weakref``
    finalizer.  Pools obtained implicitly through :func:`run_sharded` are
    not leases and are unaffected -- they live until :func:`shutdown_pools`.
    """
    key = _pool_key(policies, workers)
    count = _LEASE_COUNTS.get(key)
    if count is None:
        return
    if count > 1:
        _LEASE_COUNTS[key] = count - 1
        return
    del _LEASE_COUNTS[key]
    entry = _POOL_CACHE.pop(key, None)
    if entry is not None:
        entry[1].close()


# repro: allow[BATCH-REF] reason=pure index bookkeeping, not a batched kernel; any partition merges identically
def shard_lanes(total: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` lane ranges, one per worker.

    ``shard_lanes(10, 4)`` -> ``[(0, 3), (3, 6), (6, 8), (8, 10)]``: the
    first ``total % workers`` ranges carry one extra lane, so sizes differ
    by at most one.  Never returns an empty range: with fewer lanes than
    workers the surplus workers simply receive no chunk (callers size their
    pools by ``len(shard_lanes(...))``, not by ``workers``).  Splitting is
    pure bookkeeping -- lane randomness is keyed on global lane index, so
    *any* partition merges back to the identical result; the evaluation
    service reuses the same splitter over request lists whose global
    indices it carries separately (``LaneChunk.lane_indices``).
    """
    workers = max(1, min(workers, total))
    base, extra = divmod(total, workers)
    ranges: list[tuple[int, int]] = []
    start = 0
    for worker in range(workers):
        size = base + (1 if worker < extra else 0)
        if size:
            ranges.append((start, start + size))
            start += size
    return ranges


def run_sharded(
    policies,
    system: str,
    layout: SceneLayout,
    seed: int,
    lane_jobs: list[list],
    fleet_size: int,
    workers: int,
    max_frames: int = MAX_EPISODE_FRAMES,
    lane_indices: Sequence[int] | None = None,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    chunk_timeout: float | None = None,
) -> list[list[EpisodeTrace]]:
    """Roll ``lane_jobs`` across a worker pool; traces merge in lane order.

    ``lane_jobs[k]`` rolls on global lane ``k``, or on lane
    ``lane_indices[k]`` when given (the result-cache path re-rolls only the
    lanes that missed).  Byte-identical to the in-process
    :func:`repro.analysis.evaluation.roll_lane_chunk` over the same lanes --
    including runs that survive injected or real worker crashes, because
    re-rolled chunks key their randomness on the same global lane indices
    (``retry`` / ``fault_plan`` / ``chunk_timeout`` feed
    :meth:`EvaluationPool.run_chunks_reliably`).
    """
    if lane_indices is not None and len(lane_indices) != len(lane_jobs):
        raise ValueError("lane_indices must map one global index per job")
    chunks = [
        LaneChunk(
            system=system,
            layout=layout,
            seed=seed,
            lane_start=start,
            instructions=tuple(
                tuple(task.instruction for task in job)
                for job in lane_jobs[start:stop]
            ),
            fleet_size=fleet_size,
            max_frames=max_frames,
            lane_indices=(
                None if lane_indices is None else tuple(lane_indices[start:stop])
            ),
        )
        for start, stop in shard_lanes(len(lane_jobs), workers)
    ]
    if not chunks:  # zero lanes: same empty result the in-process path yields
        return []
    # Fewer lanes than workers -> fewer chunks; don't spawn (and archive-
    # restore into) workers that could never receive one.
    pool = _cached_pool(policies, min(workers, len(chunks)))
    results = pool.run_chunks_reliably(
        chunks, retry=retry, fault_plan=fault_plan, chunk_timeout=chunk_timeout
    )
    merged = [lane_traces for chunk_result in results for lane_traces in chunk_result]
    if len(merged) != len(lane_jobs):
        raise RuntimeError(
            f"sharded evaluation returned {len(merged)} lanes for "
            f"{len(lane_jobs)} jobs; a worker dropped lanes"
        )
    return merged


def run_oracle_sharded(
    layout: SceneLayout,
    pairs: Sequence[tuple[int, int]],
    seed: int,
    workers: int,
) -> list[tuple[str, str, bool]]:
    """Shard the expert-oracle sweep; outcomes merge in sweep order."""
    chunks = [
        OracleChunk(layout=layout, seed=seed, pairs=tuple(pairs[start:stop]))
        for start, stop in shard_lanes(len(pairs), workers)
    ]
    if not chunks:
        return []
    results = _cached_pool(None, min(workers, len(chunks))).run_oracle_chunks(chunks)
    merged = [outcome for chunk_result in results for outcome in chunk_result]
    if len(merged) != len(pairs):
        raise RuntimeError(
            f"sharded oracle sweep returned {len(merged)} outcomes for "
            f"{len(pairs)} episodes; a worker dropped episodes"
        )
    return merged
