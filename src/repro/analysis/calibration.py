"""Dynamics-tier calibration: tracking quality and ACE behaviour.

The frame-level environment models actuation with a gain + noise pair
(:class:`repro.sim.env.ActuationModel`).  These routines ground those
constants in the full rigid-body tier: TS-CTC on the Panda tracking cubic
trajectories at a given control rate.  They also drive the paper's Fig. 15
(approximation threshold vs speedup and trajectory error) and the >51%
skip-rate claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.accelerator import CorkiAccelerator
from repro.accelerator.lanes import AcceleratorLanes
from repro.core.trajectory import CubicTrajectory, fit_cubic
from repro.robot.batched import pose_error_lanes, semi_implicit_euler_step_lanes
from repro.robot.control import TaskSpaceComputedTorqueController, TaskSpaceReference
from repro.robot.integrators import JointState, semi_implicit_euler_step
from repro.robot.kinematics import end_effector_pose
from repro.robot.model import RobotModel, panda

__all__ = [
    "TrackingReport",
    "sample_trajectory",
    "track_trajectory",
    "track_trajectories_lanes",
    "ThresholdPoint",
    "threshold_sweep",
]


def sample_trajectory(
    model: RobotModel, rng: np.random.Generator, steps: int = 9, step_dt: float = 1.0 / 30.0
) -> CubicTrajectory:
    """A CALVIN-speed cubic trajectory from the arm's current home pose.

    Waypoint spacing mirrors what the Corki policy emits: centimetre-scale
    translation per 33 ms step with small yaw adjustments.
    """
    origin = end_effector_pose(model, model.q_home)
    direction = rng.normal(size=3)
    direction /= np.linalg.norm(direction)
    speeds = rng.uniform(0.005, 0.012)  # metres per step
    offsets = np.zeros((steps, 6))
    for j in range(steps):
        offsets[j, :3] = direction * speeds * (j + 1)
        offsets[j, 5] = rng.uniform(-0.02, 0.02) * (j + 1)
    coefficients = fit_cubic(offsets)
    return CubicTrajectory(
        origin=origin,
        coefficients=coefficients,
        duration=steps * step_dt,
        gripper_open=np.ones(steps, dtype=bool),
    )


@dataclass(frozen=True)
class TrackingReport:
    """Closed-loop tracking quality at one control rate."""

    control_hz: float
    rmse_m: float
    max_error_m: float
    per_frame_gain: float
    skip_rate: float | None = None


MEASUREMENT_NOISE_Q = 2e-4  # encoder noise, radians
MEASUREMENT_NOISE_QD = 2e-3  # velocity estimate noise, radians/second
TORQUE_DISTURBANCE_NM = 2.0  # unmodelled friction / load disturbance


def track_trajectory(
    model: RobotModel,
    trajectory: CubicTrajectory,
    control_hz: float = 100.0,
    physics_hz: float = 500.0,
    accelerator: CorkiAccelerator | None = None,
    noise_seed: int = 0,
) -> TrackingReport:
    """Track one cubic trajectory with TS-CTC and report the error.

    With ``accelerator`` supplied, control ticks run through the accelerator
    model (including its ACE approximation); otherwise the plain software
    controller runs.  Physics integrates at ``physics_hz`` with semi-implicit
    Euler.  Sensor noise and torque disturbances are injected so control
    rate actually matters -- in a noise-free rigid-body world a 30 Hz
    zero-order-hold controller tracks slow references as well as a 100 Hz
    one, which is not true of real arms.
    """
    controller = TaskSpaceComputedTorqueController(model)
    # repro: allow[RNG-KEYED] reason=scalar reference semantics are frozen; the lane kernel replays this exact stream
    noise = np.random.default_rng(noise_seed)
    state = JointState(model.q_home.copy(), np.zeros(model.dof))
    dt = 1.0 / physics_hz
    control_interval = max(1, int(round(physics_hz / control_hz)))
    steps = int(trajectory.duration * physics_hz)

    tau = np.zeros(model.dof)
    errors = []
    for k in range(steps):
        t = k * dt
        reference = TaskSpaceReference(
            trajectory.pose(t), trajectory.velocity(t), trajectory.acceleration(t)
        )
        if k % control_interval == 0:
            q_measured = state.q + noise.normal(0.0, MEASUREMENT_NOISE_Q, model.dof)
            qd_measured = state.qd + noise.normal(0.0, MEASUREMENT_NOISE_QD, model.dof)
            if accelerator is None:
                tau = controller.torque(reference, q_measured, qd_measured)
            else:
                tau = accelerator.control_tick(reference, q_measured, qd_measured).torque
        disturbance = noise.normal(0.0, TORQUE_DISTURBANCE_NM, model.dof)
        state = semi_implicit_euler_step(model, state, tau + disturbance, dt)
        error = controller.pose_error(reference.pose, state.q)
        errors.append(float(np.linalg.norm(error[:3])))
    errors = np.asarray(errors)

    # Per-frame tracking gain: fraction of the commanded end-to-end motion
    # realised, the quantity ActuationModel.tracking_gain abstracts.
    final_pose = end_effector_pose(model, state.q)
    commanded = trajectory.pose(trajectory.duration)[:3] - trajectory.origin[:3]
    realised = final_pose[:3] - trajectory.origin[:3]
    denominator = float(np.linalg.norm(commanded))
    gain = float(np.dot(realised, commanded) / denominator**2) if denominator > 1e-9 else 1.0

    return TrackingReport(
        control_hz=control_hz,
        rmse_m=float(np.sqrt(np.mean(errors**2))),
        max_error_m=float(errors.max()),
        per_frame_gain=gain,
        skip_rate=None if accelerator is None else accelerator.skip_rate,
    )


def track_trajectories_lanes(
    model: RobotModel,
    trajectories: list[CubicTrajectory],
    control_hz: float = 100.0,
    physics_hz: float = 500.0,
    accelerators: list[CorkiAccelerator] | None = None,
    noise_seed: int = 0,
) -> list[TrackingReport]:
    """:func:`track_trajectory` for a whole fleet of lanes in lockstep.

    Lane ``i`` tracks ``trajectories[i]`` (through ``accelerators[i]`` when
    accelerators are supplied, otherwise through the software controller),
    and every report -- plus every accelerator's ACE state and cycle log --
    is bitwise what the scalar function would have produced for that lane.
    Each lane draws its noise from its own ``default_rng(noise_seed)`` in
    the scalar draw order, so lane streams are independent of fleet size.
    All lanes must share the physics step count (equal-duration
    trajectories); physics, control, and error evaluation then run as
    stacked ``(lanes, ...)`` kernels.
    """
    lanes = len(trajectories)
    if lanes == 0:
        return []
    if accelerators is not None and len(accelerators) != lanes:
        raise ValueError("need exactly one accelerator per trajectory lane")
    dt = 1.0 / physics_hz
    control_interval = max(1, int(round(physics_hz / control_hz)))
    step_counts = {int(trajectory.duration * physics_hz) for trajectory in trajectories}
    if len(step_counts) != 1:
        raise ValueError("lockstep lanes need trajectories of equal duration")
    steps = step_counts.pop()

    controller = TaskSpaceComputedTorqueController(model)
    bank = None if accelerators is None else AcceleratorLanes(accelerators)
    # repro: allow[RNG-KEYED] reason=each lane intentionally replays the scalar noise stream (documented bitwise equivalence)
    noises = [np.random.default_rng(noise_seed) for _ in range(lanes)]
    q = np.tile(model.q_home.copy(), (lanes, 1))
    qd = np.zeros((lanes, model.dof))

    tau = np.zeros((lanes, model.dof))
    reference_poses = np.zeros((lanes, 6))
    reference_velocities = np.zeros((lanes, 6))
    reference_accelerations = np.zeros((lanes, 6))
    errors: list[list[float]] = [[] for _ in range(lanes)]
    for k in range(steps):
        t = k * dt
        for lane, trajectory in enumerate(trajectories):
            reference_poses[lane] = trajectory.pose(t)
            reference_velocities[lane] = trajectory.velocity(t)
            reference_accelerations[lane] = trajectory.acceleration(t)
        if k % control_interval == 0:
            q_measured = np.stack(
                [
                    q[lane] + noises[lane].normal(0.0, MEASUREMENT_NOISE_Q, model.dof)
                    for lane in range(lanes)
                ]
            )
            qd_measured = np.stack(
                [
                    qd[lane] + noises[lane].normal(0.0, MEASUREMENT_NOISE_QD, model.dof)
                    for lane in range(lanes)
                ]
            )
            if bank is None:
                tau = controller.torque_lanes(
                    reference_poses,
                    reference_velocities,
                    reference_accelerations,
                    q_measured,
                    qd_measured,
                )
            else:
                tau = bank.control_tick_lanes(
                    reference_poses,
                    reference_velocities,
                    reference_accelerations,
                    q_measured,
                    qd_measured,
                ).torques
        disturbance = np.stack(
            [
                noises[lane].normal(0.0, TORQUE_DISTURBANCE_NM, model.dof)
                for lane in range(lanes)
            ]
        )
        q, qd = semi_implicit_euler_step_lanes(model, q, qd, tau + disturbance, dt)
        error = pose_error_lanes(model, q, reference_poses)
        for lane in range(lanes):
            errors[lane].append(float(np.linalg.norm(error[lane, :3])))

    reports = []
    for lane, trajectory in enumerate(trajectories):
        lane_errors = np.asarray(errors[lane])
        final_pose = end_effector_pose(model, q[lane])
        commanded = trajectory.pose(trajectory.duration)[:3] - trajectory.origin[:3]
        realised = final_pose[:3] - trajectory.origin[:3]
        denominator = float(np.linalg.norm(commanded))
        gain = (
            float(np.dot(realised, commanded) / denominator**2)
            if denominator > 1e-9
            else 1.0
        )
        reports.append(
            TrackingReport(
                control_hz=control_hz,
                rmse_m=float(np.sqrt(np.mean(lane_errors**2))),
                max_error_m=float(lane_errors.max()),
                per_frame_gain=gain,
                skip_rate=None if accelerators is None else accelerators[lane].skip_rate,
            )
        )
    return reports


@dataclass(frozen=True)
class ThresholdPoint:
    """One point of the Fig. 15 sweep."""

    threshold: float
    speedup: float
    trajectory_error_cm: float
    skip_rate: float


def threshold_sweep(
    thresholds: list[float] | None = None,
    trajectories: int = 3,
    seed: int = 3,
    control_hz: float = 100.0,
    physics_hz: float = 500.0,
    batched: bool = True,
) -> list[ThresholdPoint]:
    """Sweep the ACE threshold: speedup and trajectory error (paper Fig. 15).

    Speedup is the mean control-tick cycle count at threshold zero divided
    by the mean at the swept threshold; trajectory error is the RMSE of
    TS-CTC tracking with the approximating accelerator in the loop.

    With ``batched`` (the default) each threshold tracks all sampled
    trajectories as one lockstep fleet through the lane kernels;
    ``batched=False`` runs the scalar reference loop.  The outputs are
    bitwise identical either way -- the differential test harness pins
    that down.
    """
    thresholds = thresholds if thresholds is not None else [0.0, 0.2, 0.4, 0.6, 0.8]
    model = panda()
    # repro: allow[RNG-KEYED] reason=single sweep-wide sampling stream; Fig. 15 goldens pin its draws bitwise
    rng = np.random.default_rng(seed)
    samples = [sample_trajectory(model, rng) for _ in range(trajectories)]

    points = []
    reference_cycles: float | None = None
    for threshold in thresholds:
        cycle_counts: list[int] = []
        errors = []
        skip_rates = []
        if batched:
            accelerators = [
                CorkiAccelerator(model, threshold=threshold) for _ in samples
            ]
            reports = track_trajectories_lanes(
                model, samples, control_hz=control_hz, physics_hz=physics_hz,
                accelerators=accelerators,
            )
            for accelerator, report in zip(accelerators, reports):
                cycle_counts.extend(accelerator.cycle_log)
                errors.append(report.rmse_m)
                skip_rates.append(accelerator.skip_rate)
        else:
            for trajectory in samples:
                accelerator = CorkiAccelerator(model, threshold=threshold)
                report = track_trajectory(
                    model, trajectory, control_hz=control_hz, physics_hz=physics_hz,
                    accelerator=accelerator,
                )
                cycle_counts.extend(accelerator.cycle_log)
                errors.append(report.rmse_m)
                skip_rates.append(accelerator.skip_rate)
        mean_cycles = float(np.mean(cycle_counts))
        if reference_cycles is None:
            reference_cycles = mean_cycles
        points.append(
            ThresholdPoint(
                threshold=threshold,
                speedup=reference_cycles / mean_cycles,
                trajectory_error_cm=float(np.mean(errors)) * 100.0,
                skip_rate=float(np.mean(skip_rates)),
            )
        )
    return points
