"""End-to-end evaluation: train once, roll out every system, aggregate.

This is the driver behind Tbl. 1/2 and Fig. 11-14: it trains the baseline
and Corki policies on seen-layout demonstrations (cached on disk so repeated
experiments and benchmarks do not retrain), rolls out five-task jobs for
every variation on the requested layout, and aggregates success and
trajectory statistics.

Jobs roll out through :class:`repro.core.fleet.FleetRunner`: each job is
one fleet lane with its own environment and feedback generator (seeded from
``(seed, lane)`` so results stay paired across systems and deterministic
across runs), and lanes advance in lock-step with batched policy inference.
``fleet_size`` caps how many jobs fly at once, and ``workers`` shards the
lanes across OS processes (:mod:`repro.analysis.parallel`) -- both knobs
leave every byte of the result unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import JobStatistics, TrajectoryMetrics, job_statistics, trajectory_metrics
from repro.atomicio import atomic_save
from repro.core.config import VARIATIONS, CorkiVariation
from repro.core.fleet import FleetLane, FleetRunner
from repro.core.policy import BaselinePolicy, CorkiPolicy
from repro.core.runner import MAX_EPISODE_FRAMES, EpisodeTrace
from repro.core.training import TrainingConfig, train_baseline, train_corki
from repro.nn.serialization import load_module, save_module
from repro.pipeline.estimate import PipelineEstimate, estimate_lanes
from repro.sim.camera import OBSERVATION_DIM, RAW_FEATURE_DIM
from repro.sim.dataset import ActionNormalizer, collect_demonstrations
from repro.sim.env import (
    PERFECT_ACTUATION,
    TRACKING_100HZ,
    TRACKING_30HZ,
    BatchedManipulationEnv,
    ManipulationEnv,
)
from repro.sim.expert import render_keyframes
from repro.sim.tasks import TASK_FAMILIES, TASKS, sample_job
from repro.sim.world import SEEN_LAYOUT, SceneLayout

__all__ = [
    "TrainedPolicies",
    "SystemEvaluation",
    "FamilyCell",
    "get_trained_policies",
    "lane_estimates",
    "lane_generators",
    "roll_lane_chunk",
    "evaluate_system",
    "evaluate_all_systems",
    "evaluate_system_families",
    "expert_oracle_families",
    "oracle_episode_outcome",
]

DEFAULT_FLEET_SIZE = 32
"""Jobs advanced in lock-step per fleet; larger fleets amortise inference
further but see diminishing returns once the per-lane env stepping dominates."""

_CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "artifacts")

JOB_LENGTH = 5


@dataclass
class TrainedPolicies:
    """The trained baseline and Corki policies plus training metadata."""

    baseline: BaselinePolicy
    corki: CorkiPolicy
    demos_per_task: int
    epochs: int


def _cache_paths(tag: str) -> dict[str, str]:
    root = os.path.abspath(_CACHE_DIR)
    return {
        "baseline": os.path.join(root, f"baseline-{tag}.npz"),
        "corki": os.path.join(root, f"corki-{tag}.npz"),
        "normalizer": os.path.join(root, f"normalizer-{tag}.npy"),
    }


def get_trained_policies(
    demos_per_task: int = 24,
    epochs: int = 12,
    seed: int = 7,
    use_cache: bool = True,
    hidden_dim: int = 96,
    token_dim: int = 48,
) -> TrainedPolicies:
    """Train (or load cached) baseline and Corki policies on the seen layout.

    The cache key encodes every hyper-parameter, so changing any of them
    retrains rather than silently reusing stale weights.
    """
    # repro: allow[RNG-KEYED] reason=training master stream; rekeying would orphan every policy-cache tag
    rng = np.random.default_rng(seed)
    baseline = BaselinePolicy(
        OBSERVATION_DIM, len(TASKS), rng, token_dim=token_dim, hidden_dim=hidden_dim
    )
    corki = CorkiPolicy(
        OBSERVATION_DIM, len(TASKS), rng, token_dim=token_dim, hidden_dim=hidden_dim
    )
    # The registry size shapes the instruction head, and the camera optics
    # (raw descriptor width -> fixed projection -> observation width) shape
    # what every observation *means*, so all three belong in the cache key:
    # growing the task suite or the scene's sensor channels retrains instead
    # of silently loading weights trained under different optics.
    tag = (
        f"d{demos_per_task}-e{epochs}-s{seed}-h{hidden_dim}-t{token_dim}"
        f"-i{len(TASKS)}-r{RAW_FEATURE_DIM}-o{OBSERVATION_DIM}"
    )
    paths = _cache_paths(tag)

    if use_cache and all(os.path.exists(path) for path in paths.values()):
        load_module(baseline, paths["baseline"])
        load_module(corki, paths["corki"])
        scale = np.load(paths["normalizer"])
        baseline.set_normalizer(ActionNormalizer(scale))
        corki.set_normalizer(ActionNormalizer(scale))
        return TrainedPolicies(baseline, corki, demos_per_task, epochs)

    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=demos_per_task)
    config = TrainingConfig(epochs=epochs, seed=seed)
    train_baseline(baseline, demos, config)
    train_corki(corki, demos, config)
    if use_cache:
        os.makedirs(os.path.dirname(paths["baseline"]), exist_ok=True)
        save_module(baseline, paths["baseline"])
        save_module(corki, paths["corki"])
        atomic_save(paths["normalizer"], baseline.normalizer.scale)
    return TrainedPolicies(baseline, corki, demos_per_task, epochs)


@dataclass
class SystemEvaluation:
    """Everything one system produced over a batch of jobs."""

    name: str
    job_stats: JobStatistics
    traces: list[EpisodeTrace] = field(repr=False)
    completed_counts: list[int] = field(default_factory=list)
    estimates: list[PipelineEstimate] = field(default_factory=list)
    lane_steps: list[list[int]] = field(default_factory=list, repr=False)

    @property
    def mean_estimated_latency_ms(self) -> float:
        """Mean per-frame latency estimate across lanes (0.0 if none)."""
        if not self.estimates:
            return 0.0
        return float(np.mean([estimate.mean_latency_ms for estimate in self.estimates]))

    @property
    def mean_estimated_energy_j(self) -> float:
        """Mean per-frame energy estimate across lanes (0.0 if none)."""
        if not self.estimates:
            return 0.0
        return float(np.mean([estimate.mean_energy_j for estimate in self.estimates]))

    @property
    def executed_steps(self) -> list[int]:
        """Concatenated executed-steps sequence for the pipeline model."""
        steps: list[int] = []
        for trace in self.traces:
            steps.extend(trace.executed_steps)
        return steps

    @property
    def mean_steps_per_inference(self) -> float:
        steps = self.executed_steps
        return float(np.mean(steps)) if steps else 0.0

    def trajectory_stats(self) -> TrajectoryMetrics:
        executed = [trace.ee_path for trace in self.traces]
        reference = [trace.reference_path for trace in self.traces]
        return trajectory_metrics(executed, reference)


def lane_generators(
    seed: int, lane_index: int
) -> tuple[np.random.Generator, np.random.Generator]:
    """The (env, feedback) generators for one evaluation lane.

    Keyed ``[seed, 1, lane]`` / ``[seed, 2, lane]`` so the two streams of a
    lane are distinct from each other *and* from every stream of every other
    seed.  (The historical ``[seed + 1, lane]`` / ``[seed + 2, lane]`` keying
    made seed ``S``'s feedback streams bit-identical to seed ``S + 1``'s env
    streams, so adjacent evaluation seeds were not independent.)
    """
    return (
        np.random.default_rng([seed, 1, lane_index]),
        np.random.default_rng([seed, 2, lane_index]),
    )


def roll_lane_chunk(
    policies: TrainedPolicies,
    system: str,
    layout: SceneLayout,
    seed: int,
    lane_jobs: list[list],
    lane_start: int = 0,
    fleet_size: int = DEFAULT_FLEET_SIZE,
    max_frames: int = MAX_EPISODE_FRAMES,
    lane_indices: list[int] | None = None,
) -> list[list[EpisodeTrace]]:
    """Roll a block of evaluation lanes; one trace list per lane.

    ``lane_jobs[k]`` is the job (task list) of global lane ``lane_start + k``
    -- or of lane ``lane_indices[k]`` when explicit (not necessarily
    contiguous) indices are given, which is how the result cache re-rolls
    only the lanes that missed.  Each lane's randomness comes from
    :func:`lane_generators` at its *global* index, so a block's results do
    not depend on how the lane space was split.  This is the unit of work
    both the in-process path and the :mod:`repro.analysis.parallel` worker
    processes execute -- sharded and sequential evaluation run literally the
    same code.
    """
    variation: CorkiVariation | None = None
    if system != "roboflamingo":
        variation = VARIATIONS[system]
    if lane_indices is not None and len(lane_indices) != len(lane_jobs):
        raise ValueError("lane_indices must map one global index per job")

    envs = []
    lanes = []
    for offset, tasks in enumerate(lane_jobs):
        index = lane_start + offset if lane_indices is None else lane_indices[offset]
        env_rng, feedback_rng = lane_generators(seed, index)
        envs.append(ManipulationEnv(layout, env_rng))
        lanes.append(
            FleetLane(
                tasks=list(tasks),
                variation=variation,
                rng=feedback_rng,
                actuation=TRACKING_30HZ if variation is None else TRACKING_100HZ,
                max_frames=max_frames,
            )
        )

    runner = FleetRunner(baseline=policies.baseline, corki=policies.corki)
    per_lane: list[list[EpisodeTrace]] = []
    chunk = max(1, fleet_size)
    for start in range(0, len(lanes), chunk):
        fleet = BatchedManipulationEnv(envs[start : start + chunk])
        per_lane.extend(runner.run(fleet, lanes[start : start + chunk]))
    return per_lane


def _roll_lanes(
    policies: TrainedPolicies,
    system: str,
    layout: SceneLayout,
    seed: int,
    lane_jobs: list[list],
    fleet_size: int,
    workers: int,
    lane_indices: list[int] | None = None,
    retry=None,
    fault_plan=None,
    chunk_timeout: float | None = None,
) -> list[list[EpisodeTrace]]:
    """Dispatch lanes in-process (``workers <= 1``) or across a worker pool.

    ``retry`` / ``fault_plan`` / ``chunk_timeout`` configure the pool path's
    fault tolerance (see :func:`repro.analysis.parallel.run_sharded`); the
    in-process path has no worker processes to crash, so it ignores them --
    which is exactly what makes a ``workers=1`` run the fault-free reference
    a recovered sharded run must match byte for byte.
    """
    if workers <= 1:
        return roll_lane_chunk(
            policies, system, layout, seed, lane_jobs,
            fleet_size=fleet_size, lane_indices=lane_indices,
        )
    from repro.analysis.parallel import run_sharded

    return run_sharded(
        policies, system, layout, seed, lane_jobs,
        fleet_size=fleet_size, workers=workers, lane_indices=lane_indices,
        retry=retry, fault_plan=fault_plan, chunk_timeout=chunk_timeout,
    )


def _roll_lanes_cached(
    policies: TrainedPolicies,
    system: str,
    layout: SceneLayout,
    seed: int,
    lane_jobs: list[list],
    fleet_size: int,
    workers: int,
    cache,
    retry=None,
    fault_plan=None,
    chunk_timeout: float | None = None,
) -> list[list[EpisodeTrace]]:
    """:func:`_roll_lanes` behind a content-addressed result cache.

    Each lane is looked up under its full identity -- policy-weight digest,
    system, layout, seed, *global lane index*, job instructions -- and only
    the misses are rolled (at their original global indices, so their
    :func:`lane_generators` streams, and therefore their bytes, match what a
    cache-less run would produce).  Fresh results are stored back, so a
    repeated evaluation (``tbl1`` reruns, repeated service requests) is
    served without re-rolling anything.
    """
    if cache is None:
        return _roll_lanes(
            policies, system, layout, seed, lane_jobs, fleet_size, workers,
            retry=retry, fault_plan=fault_plan, chunk_timeout=chunk_timeout,
        )
    keys = [
        cache.lane_key(policies, system, layout, seed, index, job)
        for index, job in enumerate(lane_jobs)
    ]
    per_lane: list[list[EpisodeTrace] | None] = [cache.get(key) for key in keys]
    miss_indices = [index for index, hit in enumerate(per_lane) if hit is None]
    if miss_indices:
        rolled = _roll_lanes(
            policies, system, layout, seed,
            [lane_jobs[index] for index in miss_indices],
            fleet_size, workers, lane_indices=miss_indices,
            retry=retry, fault_plan=fault_plan, chunk_timeout=chunk_timeout,
        )
        for index, traces in zip(miss_indices, rolled):
            cache.put(keys[index], traces)
            per_lane[index] = traces
    return per_lane


def evaluate_system(
    policies: TrainedPolicies,
    system: str,
    layout: SceneLayout,
    jobs: int,
    seed: int = 1234,
    fleet_size: int = DEFAULT_FLEET_SIZE,
    workers: int = 1,
    cache=None,
    retry=None,
    fault_plan=None,
    chunk_timeout: float | None = None,
) -> SystemEvaluation:
    """Roll out ``jobs`` five-task jobs for one system on one layout.

    ``system`` is ``"roboflamingo"`` or a Corki variation name.  Jobs run as
    fleet lanes with batched inference, up to ``fleet_size`` at a time, and
    ``workers > 1`` shards the lanes across OS processes.  Every lane's scene
    and feedback randomness is seeded from ``(seed, lane)``, so all systems
    see identical job sequences and scene randomness for a given seed and
    comparisons are paired -- and the result depends on neither
    ``fleet_size`` nor ``workers``.  ``cache`` (a
    :class:`repro.serving.cache.ResultCache`) serves repeated lanes from
    their content-addressed entries instead of re-rolling; cached results
    are byte-identical to fresh ones, so the statistics cannot drift.
    ``retry`` / ``fault_plan`` / ``chunk_timeout`` configure worker-crash
    recovery (and injection, for chaos tests) on the sharded path; a run
    that survives an injected crash still matches the fault-free ``workers=1``
    result byte for byte, because re-rolled chunks keep their global lane
    keying.
    """
    # repro: allow[RNG-KEYED] reason=job-sampling master stream, not lane-scoped; lanes key via lane_generators
    job_rng = np.random.default_rng(seed)  # drives job/task sampling only
    lane_jobs = [sample_job(job_rng, JOB_LENGTH) for _ in range(jobs)]
    per_lane = _roll_lanes_cached(
        policies, system, layout, seed, lane_jobs, fleet_size, workers, cache,
        retry=retry, fault_plan=fault_plan, chunk_timeout=chunk_timeout,
    )
    completed = [sum(trace.success for trace in job_traces) for job_traces in per_lane]
    traces = [trace for job_traces in per_lane for trace in job_traces]
    lane_steps = [
        [step for trace in job_traces for step in trace.executed_steps]
        for job_traces in per_lane
    ]
    return SystemEvaluation(
        name=system,
        job_stats=job_statistics(completed, JOB_LENGTH),
        traces=traces,
        completed_counts=completed,
        estimates=lane_estimates(system, lane_steps, seed),
        lane_steps=lane_steps,
    )


def lane_estimates(
    system: str,
    lane_steps: list[list[int]],
    seed: int,
    lane_indices: list[int] | None = None,
) -> list[PipelineEstimate]:
    """Latency/energy estimates for rolled lanes, one batched kernel call.

    ``lane_steps[k]`` is lane ``k``'s concatenated ``executed_steps`` record;
    jitter is keyed ``(seed, global lane index)``, so an estimate depends
    only on the lane's own identity -- the same fleet-size/worker-count
    invariance the rollout itself guarantees.  Lanes that executed nothing
    are skipped.
    """
    if lane_indices is None:
        lane_indices = list(range(len(lane_steps)))
    kept = [(index, steps) for index, steps in zip(lane_indices, lane_steps) if steps]
    if not kept:
        return []
    return estimate_lanes(
        system, [steps for _, steps in kept], seed, [index for index, _ in kept]
    )


def evaluate_all_systems(
    policies: TrainedPolicies,
    layout: SceneLayout,
    jobs: int,
    seed: int = 1234,
    systems: list[str] | None = None,
    fleet_size: int = DEFAULT_FLEET_SIZE,
    workers: int = 1,
    cache=None,
    retry=None,
    fault_plan=None,
    chunk_timeout: float | None = None,
) -> dict[str, SystemEvaluation]:
    """Evaluate the baseline and every Corki variation on one layout.

    Corki-SW shares Corki-5's episodes (the paper: accuracy is identical
    because only the control substrate differs), so its rollout is reused
    rather than re-rolled.  It gets its *own* trace and count lists -- the
    underlying traces are shared read-only, but a caller mutating one
    system's lists must not silently corrupt the other's.  ``cache``
    (see :func:`evaluate_system`) makes reruns of the whole sweep cache
    hits.
    """
    names = systems or ["roboflamingo", "corki-1", "corki-3", "corki-5", "corki-7", "corki-9", "corki-adap"]
    results: dict[str, SystemEvaluation] = {}
    for name in names:
        results[name] = evaluate_system(
            policies, name, layout, jobs, seed,
            fleet_size=fleet_size, workers=workers, cache=cache,
            retry=retry, fault_plan=fault_plan, chunk_timeout=chunk_timeout,
        )
    if systems is None:
        corki5 = results["corki-5"]
        # Same episodes, different substrate: corki-sw's *estimates* are
        # re-priced under its CPU-control stage model, not copied.
        results["corki-sw"] = SystemEvaluation(
            name="corki-sw",
            job_stats=corki5.job_stats,
            traces=list(corki5.traces),
            completed_counts=list(corki5.completed_counts),
            estimates=lane_estimates("corki-sw", corki5.lane_steps, seed),
            lane_steps=[list(steps) for steps in corki5.lane_steps],
        )
    return results


# -- per-family task-suite reporting ------------------------------------------


@dataclass(frozen=True)
class FamilyCell:
    """Success aggregate of one task family (one cell of the family matrix)."""

    family: str
    episodes: int
    successes: int
    failed_instructions: tuple[str, ...] = ()

    @property
    def success_rate(self) -> float:
        return self.successes / self.episodes if self.episodes else 0.0


def _aggregate_families(
    outcomes: list[tuple[str, str, bool]]
) -> dict[str, FamilyCell]:
    """Fold (family, instruction, success) episode outcomes into cells."""
    episodes: dict[str, int] = {family: 0 for family in TASK_FAMILIES}
    successes: dict[str, int] = {family: 0 for family in TASK_FAMILIES}
    failed: dict[str, list[str]] = {family: [] for family in TASK_FAMILIES}
    for family, instruction, success in outcomes:
        episodes[family] += 1
        if success:
            successes[family] += 1
        elif instruction not in failed[family]:
            failed[family].append(instruction)
    return {
        family: FamilyCell(
            family=family,
            episodes=episodes[family],
            successes=successes[family],
            failed_instructions=tuple(failed[family]),
        )
        for family in TASK_FAMILIES
    }


def evaluate_system_families(
    policies: TrainedPolicies,
    system: str,
    layout: SceneLayout,
    episodes_per_task: int = 2,
    seed: int = 4321,
    fleet_size: int = DEFAULT_FLEET_SIZE,
    workers: int = 1,
    return_estimates: bool = False,
) -> dict[str, FamilyCell] | tuple[dict[str, FamilyCell], list[PipelineEstimate]]:
    """Per-family success matrix row for one system (the Tbl. 2-style view).

    Every registry task runs ``episodes_per_task`` single-task episodes as
    fleet lanes, rolled through :class:`FleetRunner` in ``fleet_size``
    chunks (sharded across processes when ``workers > 1``).  Lane seeding
    follows :func:`evaluate_system` -- ``(seed, lane)`` derived generators --
    so the matrix is deterministic, fleet-size invariant and worker-count
    invariant.  With ``return_estimates`` the per-lane latency/energy
    estimates (:func:`lane_estimates`) ride along as a second return value.
    """
    specs = [task for task in TASKS for _ in range(episodes_per_task)]
    lane_jobs = [[task] for task in specs]
    per_lane = _roll_lanes(policies, system, layout, seed, lane_jobs, fleet_size, workers)
    outcomes = [
        (task.family, task.instruction, bool(lane_traces[0].success))
        for task, lane_traces in zip(specs, per_lane)
    ]
    cells = _aggregate_families(outcomes)
    if not return_estimates:
        return cells
    lane_steps = [
        [step for trace in lane_traces for step in trace.executed_steps]
        for lane_traces in per_lane
    ]
    return cells, lane_estimates(system, lane_steps, seed)


def oracle_episode_outcome(
    layout: SceneLayout, index: int, episode: int, seed: int = 0
) -> tuple[str, str, bool]:
    """One jitter-free scripted-expert episode of registry task ``index``.

    Seeded ``[seed, 5, index, episode]`` -- keyed on the episode's identity,
    not on any draw order -- so any subset of the oracle sweep (e.g. one
    worker's shard) reproduces exactly the episodes the full sweep would
    run.  Domain tag 5 keeps the oracle family disjoint from the lane
    streams (tags 1/2), the jitter streams (3/4) and the fault-injection
    streams (6-10) for every seed assignment; RNG-PROVENANCE proves it.
    """
    task = TASKS[index]
    env = ManipulationEnv(
        layout,
        np.random.default_rng([seed, 5, index, episode]),
        actuation=PERFECT_ACTUATION,
        camera_noise_std=0.0,
    )
    env.reset(task)
    assert env.scene is not None
    trajectory = render_keyframes(
        env.scene.ee_pose, task.expert(env.scene), env.frame_dt
    )
    for t in range(1, len(trajectory)):
        env.step(trajectory.poses[t], bool(trajectory.gripper_open[t]))
    return (task.family, task.instruction, env.succeeded)


def expert_oracle_families(
    layout: SceneLayout,
    episodes_per_task: int = 2,
    seed: int = 0,
    workers: int = 1,
) -> dict[str, FamilyCell]:
    """Scripted-expert (jitter-free) success per family: the oracle matrix.

    Every registry task must score 1.0 here by construction -- its expert
    keyframes are supposed to achieve its own ``success`` predicate from any
    sampled scene.  A lower rate means a predicate, expert script or scene
    mechanic drifted; the CI task-suite smoke job gates on exactly this
    (sharded across ``workers`` processes there, which cannot change the
    matrix: episode seeding is keyed on task index and episode number).
    """
    pairs = [
        (index, episode)
        for index in range(len(TASKS))
        for episode in range(episodes_per_task)
    ]
    if workers <= 1:
        outcomes = [
            oracle_episode_outcome(layout, index, episode, seed)
            for index, episode in pairs
        ]
    else:
        from repro.analysis.parallel import run_oracle_sharded

        outcomes = run_oracle_sharded(layout, pairs, seed, workers)
    return _aggregate_families(outcomes)
