"""Statistical utilities: bootstrap confidence intervals and paired tests.

The paper reports point estimates over 1000 test sequences; at the smaller
job counts a laptop reproduction affords, interval estimates are the honest
way to read the tables.  These helpers quantify the uncertainty the
experiment drivers print alongside their success rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfidenceInterval", "bootstrap_mean_ci", "paired_bootstrap_difference"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided bootstrap interval around a point estimate."""

    point: float
    lower: float
    upper: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return f"{self.point:.3f} [{self.lower:.3f}, {self.upper:.3f}]"


def bootstrap_mean_ci(
    samples: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for the mean of ``samples``."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    # repro: allow[RNG-KEYED] reason=one bootstrap stream per call, seeded by the caller; nothing lane-scoped
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, samples.size, size=(resamples, samples.size))
    means = samples[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        point=float(samples.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def paired_bootstrap_difference(
    treatment: np.ndarray,
    control: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for the mean paired difference ``treatment - control``.

    Both arrays must be aligned (same jobs in the same order), which the
    evaluation harness guarantees by seeding job sampling identically across
    systems.  A CI excluding zero indicates a resolvable difference at the
    chosen confidence.
    """
    treatment = np.asarray(treatment, dtype=float)
    control = np.asarray(control, dtype=float)
    if treatment.shape != control.shape:
        raise ValueError("paired samples must have identical shapes")
    return bootstrap_mean_ci(
        treatment - control, confidence=confidence, resamples=resamples, seed=seed
    )
