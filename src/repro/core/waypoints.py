"""Waypoint extraction and identification -- the paper's Algorithm 1.

The adaptive variant of Corki terminates a predicted trajectory early at the
first waypoint showing "significant movement": either the curvature test
fails (an interior point subtends more than 90 degrees against the chord, or
lies farther than ``d`` from it) or the gripper state changes.  The routine
is deliberately cheap -- the paper reports under 500 FLOPs per invocation --
and this implementation mirrors its loop structure exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gripper_change_flags",
    "segment_angles",
    "point_line_distance",
    "adaptive_termination_step",
]

_ANGLE_LIMIT = np.pi / 2.0


def gripper_change_flags(gripper_open: np.ndarray, current_open: bool) -> np.ndarray:
    """Mark waypoints where the commanded gripper state changes.

    ``gripper_open`` is the per-waypoint schedule; a waypoint is flagged when
    its state differs from the state in force just before it (the paper's
    ``G`` sequence, e.g. ``0,0,0,1,0``).
    """
    states = np.concatenate([[current_open], np.asarray(gripper_open, dtype=bool)])
    return states[1:] != states[:-1]


def segment_angles(point: np.ndarray, start: np.ndarray, end: np.ndarray) -> tuple[float, float]:
    """Angles ``(angle at start, angle at end)`` of triangle start-point-end.

    These are the paper's ``angle(BAD)`` and ``angle(BDA)`` tests: how far the
    interior point swings away from the chord between the trajectory start
    and the candidate endpoint.
    """
    to_point_from_start = point - start
    to_point_from_end = point - end
    chord = end - start
    chord_norm = float(np.linalg.norm(chord))
    if chord_norm < 1e-12:
        # Degenerate chord: the candidate endpoint coincides with the start,
        # so any interior displacement is "significant".
        displaced = float(np.linalg.norm(to_point_from_start)) > 1e-12
        return (np.pi, np.pi) if displaced else (0.0, 0.0)

    def angle(vector: np.ndarray, reference: np.ndarray) -> float:
        norm = float(np.linalg.norm(vector))
        if norm < 1e-12:
            return 0.0
        cosine = float(np.dot(vector, reference)) / (norm * float(np.linalg.norm(reference)))
        return float(np.arccos(np.clip(cosine, -1.0, 1.0)))

    return angle(to_point_from_start, chord), angle(to_point_from_end, -chord)


def point_line_distance(point: np.ndarray, start: np.ndarray, end: np.ndarray) -> float:
    """Distance from ``point`` to the line through ``start`` and ``end``."""
    chord = end - start
    norm = float(np.linalg.norm(chord))
    if norm < 1e-12:
        return float(np.linalg.norm(point - start))
    projection = np.dot(point - start, chord) / norm
    closest = start + projection * chord / norm
    return float(np.linalg.norm(point - closest))


def adaptive_termination_step(
    start: np.ndarray,
    waypoints: np.ndarray,
    gripper_flags: np.ndarray,
    distance_threshold: float,
) -> int:
    """Algorithm 1: the earliest termination step (1-based).

    ``start`` is point A (3-D position), ``waypoints`` the positions of the
    trajectory's waypoints B..F (shape (steps, 3)), ``gripper_flags`` the
    change indicators from :func:`gripper_change_flags`.  Returns how many
    steps of the trajectory to execute before re-planning.
    """
    waypoints = np.asarray(waypoints, dtype=float)
    steps = len(waypoints)
    if gripper_flags.shape != (steps,):
        raise ValueError("gripper_flags must align with waypoints")

    for index in range(steps - 1):  # candidates B .. E (F always accepted)
        candidate = waypoints[index]
        # Gripper change at the candidate or the next waypoint ends the
        # trajectory here so the gripper acts on fresh observations.
        if gripper_flags[index] or gripper_flags[index + 1]:
            return index + 1
        # Curvature checks against every interior point (A, P].
        for interior_index in range(index):
            interior = waypoints[interior_index]
            angle_start, angle_end = segment_angles(interior, start, candidate)
            if angle_start > _ANGLE_LIMIT or angle_end > _ANGLE_LIMIT:
                return index + 1
            if point_line_distance(interior, start, candidate) > distance_threshold:
                return index + 1
    return steps
