"""The two policy heads the paper compares.

``BaselinePolicy`` reproduces RoboFlamingo's head (paper Fig. 3): at every
frame, the 12-token vision-language window runs through an LSTM and two MLP
heads emit the next-step 6-DoF pose delta and the gripper bit.

``CorkiPolicy`` is the paper's contribution (Sec. 3.2): the same backbone
predicts cubic trajectory coefficients for the next nine steps plus a
per-step gripper schedule.  Token slots for frames the deployed system never
encodes are filled by a learned mask embedding (Fig. 4), and slots carrying
a closed-loop feedback frame use a ViT-encoded feature instead (Sec. 3.4).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PREDICTION_HORIZON
from repro.core.trajectory import CubicTrajectory, polynomial_design_matrix
from repro.nn.layers import LSTM, MLP, Module
from repro.nn.tensor import Tensor, no_grad
from repro.nn.vit import PatchFeatureEncoder
from repro.nn.vlm import CompactVLM
from repro.sim.dataset import ActionNormalizer

__all__ = ["WINDOW_LENGTH", "BaselinePolicy", "CorkiPolicy"]

WINDOW_LENGTH = 12
"""The vision-language token window length (RoboFlamingo's queue of 12)."""


def _pad_singleton(array: np.ndarray) -> np.ndarray:
    """Duplicate a one-row batch so BLAS never takes its vector-path kernel.

    GEMM row results are bitwise identical for any batch size >= 2, but a
    one-row matmul dispatches to a differently-ordered kernel.  Padding
    singleton batches (and slicing the pad back off afterwards) keeps fleet
    evaluation bit-for-bit reproducible whether an episode runs alone or
    alongside 31 others -- the property ``tests/test_fleet.py`` locks in.
    """
    return np.concatenate([array, array], axis=0)


def _batched_forward(inputs, forward):
    """Run ``forward`` over a batch with the singleton-pad invariant applied.

    Pads every input to at least two rows (see :func:`_pad_singleton`), runs
    ``forward`` under ``no_grad`` and slices each returned array back to the
    true batch size.  Every batched deployment entry point routes through
    here so the determinism-critical pad/slice pairing lives in one place.
    ``forward`` is a raw-array ``infer`` chain (see :mod:`repro.nn.layers`):
    deployment needs no autodiff graph, and the graph bookkeeping is a large
    share of the fleet engine's per-tick cost; the ``no_grad`` guard stays as
    a belt-and-braces measure for any Tensor op a forward may still touch.
    """
    batch = inputs[0].shape[0]
    if batch == 1:
        inputs = tuple(_pad_singleton(array) for array in inputs)
    with no_grad():
        outputs = forward(*inputs)
    return tuple(output[:batch] for output in outputs)


class _PolicyBase(Module):
    """Shared backbone: VLM token encoder plus the window LSTM."""

    def __init__(
        self,
        observation_dim: int,
        num_instructions: int,
        token_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
    ):
        self.observation_dim = observation_dim
        self.token_dim = token_dim
        self.hidden_dim = hidden_dim
        self.vlm = CompactVLM(observation_dim, num_instructions, token_dim, rng)
        self.lstm = LSTM(token_dim, hidden_dim, rng)
        self.normalizer = ActionNormalizer(np.ones(6))

    def set_normalizer(self, normalizer: ActionNormalizer) -> None:
        """Attach the delta-scale normaliser fitted on the training demos."""
        self.normalizer = normalizer

    def encode_tokens(self, observations: Tensor | np.ndarray, instruction) -> Tensor:
        """Vision-language tokens for a (batch, window, obs) block."""
        return self.vlm(observations, instruction)

    def _run_lstm(self, tokens: list[Tensor] | Tensor) -> Tensor:
        """Final hidden state of the window LSTM.

        ``tokens`` is either a per-step list (the training-time masking path
        builds one) or a single ``(batch, window, token)`` tensor, which the
        LSTM slices itself so every gate matmul stays batched.
        """
        hidden_states, _ = self.lstm(tokens)
        return hidden_states[-1]

    def encode_frame_token_batch(
        self, observations: np.ndarray, instructions: np.ndarray
    ) -> np.ndarray:
        """VLM tokens for one frame per fleet lane, in one forward pass.

        ``observations`` is ``(batch, obs)`` and ``instructions`` an int
        array ``(batch,)``; returns ``(batch, token_dim)`` tokens.  Corki
        lanes call this at planning boundaries; baseline lanes call it every
        tick for the newest window frame.
        """
        return _batched_forward(
            (
                np.asarray(observations, dtype=float),
                np.asarray(instructions, dtype=int),
            ),
            lambda obs, instr: (self.vlm.infer(obs, instr),),
        )[0]


class BaselinePolicy(_PolicyBase):
    """RoboFlamingo-style per-frame action prediction."""

    def __init__(
        self,
        observation_dim: int,
        num_instructions: int,
        rng: np.random.Generator,
        token_dim: int = 32,
        hidden_dim: int = 64,
    ):
        super().__init__(observation_dim, num_instructions, token_dim, hidden_dim, rng)
        self.pose_head = MLP([hidden_dim, hidden_dim, 6], rng)
        self.gripper_head = MLP([hidden_dim, hidden_dim // 2, 1], rng)

    def forward(
        self, observations: np.ndarray | Tensor, instruction: int | np.ndarray
    ) -> tuple[Tensor, Tensor]:
        """Training forward pass on a (batch, window, obs) block.

        Returns ``(pose, gripper_logit)`` where ``pose`` is the *normalised*
        next-frame delta (batch, 6) and ``gripper_logit`` (batch, 1).
        """
        tokens = self.encode_tokens(observations, instruction)
        hidden = self._run_lstm(tokens)
        return self.pose_head(hidden), self.gripper_head(hidden)

    def predict_batch(
        self, observation_windows: np.ndarray, instructions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deployment inference for a fleet of episodes in one forward pass.

        ``observation_windows`` is ``(batch, window, obs)`` and
        ``instructions`` an int array ``(batch,)``; returns the physical
        ``(batch, 6)`` pose deltas and a ``(batch,)`` boolean gripper array.
        This is the hot path of :class:`repro.core.fleet.FleetRunner`: one
        set of matmuls replaces ``batch`` Python-level forward passes.
        """
        def forward(windows, instr):
            hidden = self.lstm.infer(self.vlm.infer(windows, instr))
            return self.pose_head.infer(hidden), self.gripper_head.infer(hidden)

        pose, gripper = _batched_forward(
            (
                np.asarray(observation_windows, dtype=float),
                np.asarray(instructions, dtype=int),
            ),
            forward,
        )
        return self.normalizer.denormalize(pose), gripper[:, 0] > 0.0

    def predict_token_batch(
        self, token_windows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deployment inference from already-encoded token windows.

        The VLM encodes each frame independently (no cross-frame mixing), so
        a sliding window only ever needs its *newest* frame encoded -- the
        fleet runner keeps a per-lane token ring, batch-encodes one frame
        per lane per tick (:meth:`encode_frame_token_batch`) and hands the
        stacked ``(batch, window, token_dim)`` rings here.  Encoding a frame
        once and reusing it is bitwise identical to re-encoding the full
        window every tick, at a twelfth of the VLM work.
        """
        def forward(tokens):
            hidden = self.lstm.infer(tokens)
            return self.pose_head.infer(hidden), self.gripper_head.infer(hidden)

        pose, gripper = _batched_forward(
            (np.asarray(token_windows, dtype=float),), forward
        )
        return self.normalizer.denormalize(pose), gripper[:, 0] > 0.0

    def predict(
        self, observation_window: np.ndarray, instruction: int
    ) -> tuple[np.ndarray, bool]:
        """Deployment inference: physical pose delta plus the gripper bit.

        Thin batch-of-one wrapper over :meth:`predict_batch`, so a standalone
        episode computes exactly what the same episode inside a fleet would.
        """
        deltas, grippers = self.predict_batch(
            np.asarray(observation_window, dtype=float)[None], np.array([instruction])
        )
        return deltas[0], bool(grippers[0])


class CorkiPolicy(_PolicyBase):
    """Corki's trajectory-prediction head (paper Sec. 3.2-3.4)."""

    def __init__(
        self,
        observation_dim: int,
        num_instructions: int,
        rng: np.random.Generator,
        token_dim: int = 32,
        hidden_dim: int = 64,
        horizon: int = PREDICTION_HORIZON,
        vit_patches: int = 8,
    ):
        super().__init__(observation_dim, num_instructions, token_dim, hidden_dim, rng)
        self.horizon = horizon
        self.coefficient_head = MLP([hidden_dim, hidden_dim, 6 * 4], rng)
        self.gripper_head = MLP([hidden_dim, hidden_dim, horizon], rng)
        self.mask_embedding = Tensor(rng.normal(0.0, 0.1, size=token_dim), requires_grad=True)
        self.feedback_encoder = PatchFeatureEncoder(
            observation_dim, vit_patches, token_dim, rng
        )
        # Normalised waypoint times tau_j = j / horizon for j = 0..horizon.
        # Eq. 5 sums from j = 0: the zero-offset sample pins the cubic's
        # constant term so the trajectory starts at the current pose.
        self._basis = polynomial_design_matrix(np.arange(0, horizon + 1) / horizon)

    # -- training ------------------------------------------------------------

    def forward(
        self,
        observations: np.ndarray | Tensor,
        instruction: int | np.ndarray,
        real_slots: np.ndarray,
        feedback_slots: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Training forward pass with token masking (paper Fig. 4).

        ``real_slots`` is a boolean (batch, window) array marking slots whose
        frames the deployed system would actually encode with the VLM;
        ``feedback_slots`` marks slots carrying a ViT closed-loop feature.
        Remaining slots use the learned mask embedding.  Returns
        ``(coefficients, gripper_logits)`` with shapes (batch, 6, 4) and
        (batch, horizon).
        """
        observations = (
            observations if isinstance(observations, Tensor) else Tensor(observations)
        )
        batch, window = observations.shape[0], observations.shape[1]
        real = np.asarray(real_slots, dtype=float)
        feedback = (
            np.zeros((batch, window))
            if feedback_slots is None
            else np.asarray(feedback_slots, dtype=float)
        )
        masked = 1.0 - np.clip(real + feedback, 0.0, 1.0)

        tokens = self.encode_tokens(observations, instruction)
        feedback_tokens = self.feedback_encoder(observations)
        sequence: list[Tensor] = []
        for t in range(window):
            keep = Tensor(real[:, t : t + 1])
            feed = Tensor(feedback[:, t : t + 1])
            drop = Tensor(masked[:, t : t + 1])
            mixed = (
                tokens[:, t, :] * keep
                + feedback_tokens[:, t, :] * feed
                + self.mask_embedding * drop
            )
            sequence.append(mixed)
        hidden = self._run_lstm(sequence)
        coefficients = self.coefficient_head(hidden).reshape(batch, 6, 4)
        gripper_logits = self.gripper_head(hidden)
        return coefficients, gripper_logits

    def waypoint_offsets(self, coefficients: Tensor) -> Tensor:
        """Sample the predicted cubic at the waypoint times (Eq. 5's r(j)).

        Input (batch, 6, 4) coefficients; output (batch, 6, horizon + 1) of
        normalised pose offsets for j = 0..horizon (j = 0 supervises the
        start-of-trajectory offset against zero, as in the paper's Eq. 5).
        """
        return coefficients @ Tensor(self._basis.T)

    # -- deployment -----------------------------------------------------------

    def encode_frame_token(self, observation: np.ndarray, instruction: int) -> np.ndarray:
        """Token for one frame the system chose to run VLM inference on."""
        return self.encode_frame_token_batch(
            np.asarray(observation, dtype=float)[None], np.array([instruction])
        )[0]

    def encode_feedback_token_batch(self, observations: np.ndarray) -> np.ndarray:
        """ViT closed-loop feature tokens for a ``(batch, obs)`` block."""
        return _batched_forward(
            (np.asarray(observations, dtype=float),),
            lambda obs: (self.feedback_encoder.infer(obs),),
        )[0]

    def encode_feedback_token(self, observation: np.ndarray) -> np.ndarray:
        """ViT-encoded closed-loop feature token for a mid-trajectory frame."""
        return self.encode_feedback_token_batch(
            np.asarray(observation, dtype=float)[None]
        )[0]

    def mask_token(self) -> np.ndarray:
        """The learned mask embedding used for never-encoded frames."""
        return self.mask_embedding.numpy()

    def predict_trajectory_batch(
        self,
        token_windows: np.ndarray,
        origin_poses: np.ndarray,
        step_dt: float,
    ) -> list[CubicTrajectory]:
        """Trajectory inference for every fleet lane at a planning boundary.

        ``token_windows`` is ``(batch, window, token_dim)`` with mask and
        feedback tokens already substituted per lane; ``origin_poses`` the
        ``(batch, 6)`` end-effector poses at inference time.  One batched
        LSTM sweep serves all lanes; returns one physical-unit
        :class:`CubicTrajectory` per lane.
        """
        def forward(windows):
            hidden = self.lstm.infer(windows)
            return (
                self.coefficient_head.infer(hidden),
                self.gripper_head.infer(hidden),
            )

        origins = np.asarray(origin_poses, dtype=float)
        coefficients, gripper_logits = _batched_forward(
            (np.asarray(token_windows, dtype=float),), forward
        )
        batch = coefficients.shape[0]
        physical = coefficients.reshape(batch, 6, 4) * self.normalizer.scale[None, :, None]
        duration = self.horizon * step_dt
        return [
            CubicTrajectory(
                origin=origins[i].copy(),
                coefficients=physical[i],
                duration=duration,
                gripper_open=gripper_logits[i] > 0.0,
            )
            for i in range(batch)
        ]

    def predict_trajectory(
        self,
        token_window: np.ndarray,
        origin_pose: np.ndarray,
        step_dt: float,
    ) -> CubicTrajectory:
        """Deployment inference from an already assembled token window.

        ``token_window`` has shape (window, token_dim) with mask/feedback
        tokens already substituted; ``origin_pose`` is the end-effector pose
        at inference time.  Thin batch-of-one wrapper over
        :meth:`predict_trajectory_batch`; returns the physical-unit cubic.
        """
        return self.predict_trajectory_batch(
            np.asarray(token_window, dtype=float)[None],
            np.asarray(origin_pose, dtype=float)[None],
            step_dt,
        )[0]
