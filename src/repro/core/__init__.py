"""Corki algorithm framework: the paper's primary contribution."""

from repro.core.closed_loop import (
    MIDPOINT_FEEDBACK,
    NO_FEEDBACK,
    RANDOM_FEEDBACK,
    FeedbackSchedule,
    schedule_by_name,
)
from repro.core.config import (
    ADAPTIVE_DISTANCE_THRESHOLD,
    PREDICTION_HORIZON,
    VARIATIONS,
    CorkiVariation,
    variation_by_name,
)
from repro.core.fleet import (
    FleetLane,
    FleetRunner,
    run_baseline_fleet,
    run_corki_fleet,
)
from repro.core.policy import WINDOW_LENGTH, BaselinePolicy, CorkiPolicy
from repro.core.runner import (
    MAX_EPISODE_FRAMES,
    EpisodeTrace,
    run_baseline_episode,
    run_corki_episode,
    run_job,
)
from repro.core.training import (
    TrainingConfig,
    build_baseline_dataset,
    build_corki_dataset,
    deployment_slot_pattern,
    train_baseline,
    train_corki,
)
from repro.core.trajectory import (
    CubicTrajectory,
    fit_cubic,
    polynomial_design_matrix,
    pose_batch,
)
from repro.core.waypoints import (
    adaptive_termination_step,
    gripper_change_flags,
    point_line_distance,
    segment_angles,
)

__all__ = [
    "ADAPTIVE_DISTANCE_THRESHOLD",
    "BaselinePolicy",
    "CorkiPolicy",
    "CorkiVariation",
    "CubicTrajectory",
    "EpisodeTrace",
    "FeedbackSchedule",
    "FleetLane",
    "FleetRunner",
    "MAX_EPISODE_FRAMES",
    "MIDPOINT_FEEDBACK",
    "NO_FEEDBACK",
    "PREDICTION_HORIZON",
    "RANDOM_FEEDBACK",
    "TrainingConfig",
    "VARIATIONS",
    "WINDOW_LENGTH",
    "adaptive_termination_step",
    "build_baseline_dataset",
    "build_corki_dataset",
    "deployment_slot_pattern",
    "fit_cubic",
    "gripper_change_flags",
    "point_line_distance",
    "polynomial_design_matrix",
    "pose_batch",
    "run_baseline_episode",
    "run_baseline_fleet",
    "run_corki_episode",
    "run_corki_fleet",
    "run_job",
    "schedule_by_name",
    "segment_angles",
    "train_baseline",
    "train_corki",
    "variation_by_name",
]
