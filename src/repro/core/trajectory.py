"""Cubic trajectory representation, the paper's core intermediate form.

Corki's policy predicts, for each of the six pose dimensions, a cubic
polynomial ``r(t) = a t^3 + b t^2 + c t + d`` (paper Eq. 4).  The cubic is
evaluated against ground-truth waypoints during training (Eq. 5) and sampled
by the controller at 100 Hz during execution.  Time is normalised to
``tau = t / duration`` inside the polynomial so that the four coefficients
have comparable magnitude -- the conditioning problem the paper reports when
supervising raw coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CubicTrajectory", "fit_cubic", "polynomial_design_matrix", "pose_batch"]


def polynomial_design_matrix(tau: np.ndarray) -> np.ndarray:
    """Vandermonde rows ``[tau^3, tau^2, tau, 1]`` for normalised times."""
    tau = np.asarray(tau, dtype=float)
    return np.stack([tau**3, tau**2, tau, np.ones_like(tau)], axis=-1)


@dataclass
class CubicTrajectory:
    """A 6-DoF cubic pose trajectory plus a per-step gripper schedule.

    Attributes:
        origin: Pose ``[x, y, z, roll, pitch, yaw]`` at ``t = 0``.
        coefficients: Array of shape (6, 4): per-dimension ``[a, b, c, d]``
            acting on normalised time; values are pose *offsets* in
            metres/radians relative to ``origin``.
        duration: Physical length of the trajectory in seconds.
        gripper_open: Boolean array (steps,), the commanded gripper state at
            each waypoint step.
    """

    origin: np.ndarray
    coefficients: np.ndarray
    duration: float
    gripper_open: np.ndarray

    @property
    def steps(self) -> int:
        """Number of waypoint steps the trajectory covers."""
        return len(self.gripper_open)

    def _tau(self, t: float | np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(t, dtype=float) / self.duration, 0.0, 1.0)

    def pose(self, t: float) -> np.ndarray:
        """Absolute pose at time ``t`` seconds into the trajectory."""
        basis = polynomial_design_matrix(self._tau(t))
        return self.origin + self.coefficients @ basis

    def velocity(self, t: float) -> np.ndarray:
        """Pose rate (d pose / dt) at time ``t`` (physical seconds)."""
        tau = float(self._tau(t))
        dbasis = np.array([3.0 * tau**2, 2.0 * tau, 1.0, 0.0]) / self.duration
        return self.coefficients @ dbasis

    def acceleration(self, t: float) -> np.ndarray:
        """Pose acceleration at time ``t`` (physical seconds)."""
        tau = float(self._tau(t))
        ddbasis = np.array([6.0 * tau, 2.0, 0.0, 0.0]) / self.duration**2
        return self.coefficients @ ddbasis

    def waypoints(self, steps: int | None = None) -> np.ndarray:
        """Sample ``steps`` equally spaced waypoints (shape (steps, 6)).

        Waypoint ``j`` (1-based) sits at ``t = j * duration / steps``; the
        starting pose is not included, matching Algorithm 1's labelling where
        point A is the start and B..F are the waypoints.
        """
        steps = steps or self.steps
        tau = np.arange(1, steps + 1) / steps
        return self.origin + polynomial_design_matrix(tau) @ self.coefficients.T

    @property
    def step_dt(self) -> float:
        """Physical time between consecutive waypoints."""
        return self.duration / self.steps

    def gripper_at_step(self, step: int) -> bool:
        """Commanded gripper state at 1-based waypoint ``step``.

        Early termination executes only a prefix of the waypoints; callers
        pass the original step index, so no re-slicing is ever needed.
        """
        return bool(self.gripper_open[min(step, self.steps) - 1])


def pose_batch(
    trajectories: Sequence[CubicTrajectory], times: np.ndarray
) -> np.ndarray:
    """Evaluate ``trajectories[k].pose(times[k])`` for all k in one call.

    This is the fleet runner's per-tick command evaluator: every Corki lane
    mid-trajectory needs its cubic sampled at its own execution time, and the
    normalised-time basis plus the stacked ``(N, 6, 4) @ (N, 4, 1)`` matmul
    replace N Python-level :meth:`CubicTrajectory.pose` calls.  The stacked
    matmul reduces over the same four coefficients in the same order as the
    scalar matvec, so each row is bitwise the scalar result
    (``tests/test_trajectory.py`` locks this in).
    """
    times = np.asarray(times, dtype=float)
    durations = np.array([trajectory.duration for trajectory in trajectories])
    tau = np.clip(times / durations, 0.0, 1.0)
    basis = polynomial_design_matrix(tau)  # (N, 4)
    coefficients = np.stack([trajectory.coefficients for trajectory in trajectories])
    origins = np.stack([trajectory.origin for trajectory in trajectories])
    return origins + (coefficients @ basis[:, :, None])[:, :, 0]


def fit_cubic(
    offsets: np.ndarray,
    constrain_start: bool = True,
) -> np.ndarray:
    """Least-squares cubic fit to waypoint offsets (the training-data view).

    ``offsets`` has shape (steps, dims): waypoint ``j`` (1-based, at
    ``tau = j / steps``) relative to the start pose.  When
    ``constrain_start`` is set the constant term is pinned to zero so the
    trajectory passes through the current pose.  Returns coefficients with
    shape (dims, 4).

    The fit is the smoothing mechanism the paper relies on: four coefficients
    regressed onto nine noisy waypoints average out recording jitter.
    """
    offsets = np.asarray(offsets, dtype=float)
    steps = offsets.shape[0]
    tau = np.arange(1, steps + 1) / steps
    basis = polynomial_design_matrix(tau)
    if constrain_start:
        solution, *_ = np.linalg.lstsq(basis[:, :3], offsets, rcond=None)
        coefficients = np.concatenate([solution, np.zeros((1, offsets.shape[1]))], axis=0)
    else:
        coefficients, *_ = np.linalg.lstsq(basis, offsets, rcond=None)
    return coefficients.T
