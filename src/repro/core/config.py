"""Named Corki variations evaluated in the paper (Sec. 5.2).

The model always predicts a nine-step trajectory; a variation fixes how many
steps are *executed* before the next inference (``Corki-T``), lets
Algorithm 1 choose at runtime (``Corki-ADAP``), or keeps Corki-5's algorithm
but runs control on the CPU instead of the accelerator (``Corki-SW``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PREDICTION_HORIZON", "CorkiVariation", "VARIATIONS", "variation_by_name"]

PREDICTION_HORIZON = 9
"""Steps predicted per inference ("we predict nine steps each time")."""

ADAPTIVE_DISTANCE_THRESHOLD = 0.02
"""Algorithm 1's chord-distance threshold ``d`` (metres)."""


@dataclass(frozen=True)
class CorkiVariation:
    """One evaluated configuration of the Corki framework.

    ``execute_steps`` is ``None`` for the adaptive variant.  ``control``
    selects the control substrate for the pipeline model ("fpga" or "cpu");
    it does not change algorithmic behaviour, matching the paper's finding
    that Corki-SW equals Corki-5 in accuracy.
    """

    name: str
    execute_steps: int | None
    control: str = "fpga"
    closed_loop: bool = True
    feedback: str = "random"  # schedule name, see repro.core.closed_loop

    @property
    def adaptive(self) -> bool:
        return self.execute_steps is None


VARIATIONS: dict[str, CorkiVariation] = {
    variation.name: variation
    for variation in (
        CorkiVariation("corki-1", execute_steps=1),
        CorkiVariation("corki-3", execute_steps=3),
        CorkiVariation("corki-5", execute_steps=5),
        CorkiVariation("corki-7", execute_steps=7),
        CorkiVariation("corki-9", execute_steps=9),
        CorkiVariation("corki-adap", execute_steps=None),
        CorkiVariation("corki-sw", execute_steps=5, control="cpu"),
    )
}
"""All Corki variations of Tbl. 1/2, keyed by name."""


def variation_by_name(name: str) -> CorkiVariation:
    """Look up a variation, accepting paper-style names like ``Corki-5``."""
    key = name.lower()
    if key not in VARIATIONS:
        raise KeyError(f"unknown variation {name!r}; known: {sorted(VARIATIONS)}")
    return VARIATIONS[key]
