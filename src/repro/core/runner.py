"""Closed-loop episode runners for the baseline and every Corki variation.

The runner is where the paper's execution models live:

* The **baseline** encodes every frame, predicts one action, and executes it
  with 30 Hz control (paper Fig. 1a).
* **Corki** runs inference only at trajectory boundaries, executes
  ``T`` waypoints of the predicted cubic with 100 Hz TS-CTC control, captures
  a random mid-trajectory feedback frame, and re-plans (paper Fig. 1b).
  The adaptive variation terminates early via Algorithm 1.

Each episode returns an :class:`EpisodeTrace` carrying everything the
pipeline latency/energy model and the trajectory metrics need; in
particular ``EpisodeTrace.executed_steps`` is the per-inference
executed-trajectory-length sequence that
:func:`repro.pipeline.executor.simulate_corki` consumes to place inference
latency on trajectory-boundary frames.

The loop bodies live in :mod:`repro.core.fleet`, which advances N episodes
in lock-step with batched inference; :func:`run_baseline_episode` and
:func:`run_corki_episode` are kept as thin N=1 wrappers so existing callers
(and the paper-figure experiments) keep their single-episode API, with
results element-wise identical to the same episode inside a larger fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import (
    ADAPTIVE_DISTANCE_THRESHOLD,
    CorkiVariation,
)
from repro.core.policy import WINDOW_LENGTH, BaselinePolicy, CorkiPolicy
from repro.core.waypoints import adaptive_termination_step, gripper_change_flags
from repro.sim.env import TRACKING_100HZ, TRACKING_30HZ, ActuationModel, ManipulationEnv
from repro.sim.expert import render_keyframes
from repro.sim.tasks import Task

__all__ = ["EpisodeTrace", "run_baseline_episode", "run_corki_episode", "run_job"]

MAX_EPISODE_FRAMES = 150
"""Frame budget per task; generous versus expert episodes of 45-80 frames."""


@dataclass
class EpisodeTrace:
    """Record of one closed-loop episode.

    ``executed_steps`` lists, per inference, how many trajectory steps were
    executed before re-planning (always ``[1, 1, ...]`` for the baseline);
    the pipeline model derives inference frequency from it.  ``ee_path`` is
    the realised end-effector pose per frame; ``reference_path`` the clean
    expert trajectory for the same scene (the metrics' ground truth).
    """

    success: bool
    frames: int
    executed_steps: list[int]
    ee_path: np.ndarray
    reference_path: np.ndarray
    gripper_path: np.ndarray

    @property
    def inference_count(self) -> int:
        return len(self.executed_steps)


def _reference_path(env: ManipulationEnv, task: Task) -> np.ndarray:
    """The clean expert trajectory for the episode's initial scene."""
    assert env.scene is not None
    keyframes = task.expert(env.scene)
    return render_keyframes(env.scene.ee_pose, keyframes, env.frame_dt).poses


def run_baseline_episode(
    env: ManipulationEnv,
    policy: BaselinePolicy,
    task: Task,
    actuation: ActuationModel = TRACKING_30HZ,
    max_frames: int = MAX_EPISODE_FRAMES,
    chained: bool = False,
) -> EpisodeTrace:
    """Frame-by-frame execution (paper Fig. 1a); a fleet of one."""
    from repro.core.fleet import FleetLane, FleetRunner

    lane = FleetLane(
        tasks=[task], actuation=actuation, max_frames=max_frames, chained_start=chained
    )
    return FleetRunner(baseline=policy).run([env], [lane])[0][0]


class _TokenWindow:
    """Deployment-side token bookkeeping for Corki.

    Tracks which frames were VLM-encoded (inference frames) or ViT-encoded
    (feedback frames); every other slot yields the learned mask embedding,
    mirroring the training-time pattern of
    :func:`repro.core.training.deployment_slot_pattern`.
    """

    def __init__(self, policy: CorkiPolicy):
        self._policy = policy
        self._tokens: dict[int, np.ndarray] = {}
        self._first_real: np.ndarray | None = None

    def add_inference_frame(self, frame: int, observation: np.ndarray, instruction: int) -> None:
        self.insert_inference_token(
            frame, self._policy.encode_frame_token(observation, instruction)
        )

    def add_feedback_frame(self, frame: int, observation: np.ndarray) -> None:
        self.insert_feedback_token(frame, self._policy.encode_feedback_token(observation))

    def insert_inference_token(self, frame: int, token: np.ndarray) -> None:
        """Record an already-encoded VLM token (the fleet runner encodes all
        planning lanes in one batch before inserting)."""
        if self._first_real is None:
            self._first_real = token
        self._tokens[frame] = token

    def insert_feedback_token(self, frame: int, token: np.ndarray) -> None:
        """Record an already-encoded ViT feedback token."""
        self._tokens[frame] = token

    def assemble(self, current_frame: int) -> np.ndarray:
        mask = self._policy.mask_token()
        rows = []
        for frame in range(current_frame - WINDOW_LENGTH + 1, current_frame + 1):
            if frame in self._tokens:
                rows.append(self._tokens[frame])
            elif frame < 0 and self._first_real is not None:
                rows.append(self._first_real)  # warm-up padding, as in training
            else:
                rows.append(mask)
        return np.array(rows)


def run_corki_episode(
    env: ManipulationEnv,
    policy: CorkiPolicy,
    task: Task,
    variation: CorkiVariation,
    rng: np.random.Generator,
    actuation: ActuationModel = TRACKING_100HZ,
    max_frames: int = MAX_EPISODE_FRAMES,
    chained: bool = False,
) -> EpisodeTrace:
    """Trajectory-level execution (paper Fig. 1b); a fleet of one.

    ``rng`` drives the closed-loop feedback schedule only (one draw per
    executed trajectory, as in the single-loop formulation of Sec. 3.4).
    """
    from repro.core.fleet import FleetLane, FleetRunner

    lane = FleetLane(
        tasks=[task],
        variation=variation,
        rng=rng,
        actuation=actuation,
        max_frames=max_frames,
        chained_start=chained,
    )
    return FleetRunner(corki=policy).run([env], [lane])[0][0]


def _decide_steps(trajectory, variation: CorkiVariation, gripper_open_now: bool) -> int:
    """Execution length: fixed for Corki-T, Algorithm 1 for Corki-ADAP."""
    if not variation.adaptive:
        return int(variation.execute_steps)
    waypoints = trajectory.waypoints()
    flags = gripper_change_flags(trajectory.gripper_open, gripper_open_now)
    return adaptive_termination_step(
        trajectory.origin[:3],
        waypoints[:, :3],
        flags,
        ADAPTIVE_DISTANCE_THRESHOLD,
    )


def run_job(
    env: ManipulationEnv,
    tasks: list[Task],
    run_episode,
) -> list[EpisodeTrace]:
    """Run a long-horizon job: consecutive tasks until the first failure.

    ``run_episode(task, chained)`` is a closure over the policy/variation;
    the environment's scene persists across tasks, as in CALVIN's rollouts.
    Returns the traces of the attempted tasks (the job's score is the number
    of successes, i.e. the index of the first failed trace).
    """
    traces = []
    for index, task in enumerate(tasks):
        trace = run_episode(task, index > 0)
        traces.append(trace)
        if not trace.success:
            break
    return traces
