"""Closed-loop episode runners for the baseline and every Corki variation.

The runner is where the paper's execution models live:

* The **baseline** encodes every frame, predicts one action, and executes it
  with 30 Hz control (paper Fig. 1a).
* **Corki** runs inference only at trajectory boundaries, executes
  ``T`` waypoints of the predicted cubic with 100 Hz TS-CTC control, captures
  a random mid-trajectory feedback frame, and re-plans (paper Fig. 1b).
  The adaptive variation terminates early via Algorithm 1.

Each episode returns an :class:`EpisodeTrace` carrying everything the
pipeline latency/energy model and the trajectory metrics need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.closed_loop import NO_FEEDBACK, schedule_by_name
from repro.core.config import (
    ADAPTIVE_DISTANCE_THRESHOLD,
    CorkiVariation,
)
from repro.core.policy import WINDOW_LENGTH, BaselinePolicy, CorkiPolicy
from repro.core.waypoints import adaptive_termination_step, gripper_change_flags
from repro.sim.env import TRACKING_100HZ, TRACKING_30HZ, ActuationModel, ManipulationEnv
from repro.sim.expert import render_keyframes
from repro.sim.tasks import Task

__all__ = ["EpisodeTrace", "run_baseline_episode", "run_corki_episode", "run_job"]

MAX_EPISODE_FRAMES = 150
"""Frame budget per task; generous versus expert episodes of 45-80 frames."""


@dataclass
class EpisodeTrace:
    """Record of one closed-loop episode.

    ``executed_steps`` lists, per inference, how many trajectory steps were
    executed before re-planning (always ``[1, 1, ...]`` for the baseline);
    the pipeline model derives inference frequency from it.  ``ee_path`` is
    the realised end-effector pose per frame; ``reference_path`` the clean
    expert trajectory for the same scene (the metrics' ground truth).
    """

    success: bool
    frames: int
    executed_steps: list[int]
    ee_path: np.ndarray
    reference_path: np.ndarray
    gripper_path: np.ndarray

    @property
    def inference_count(self) -> int:
        return len(self.executed_steps)


def _reference_path(env: ManipulationEnv, task: Task) -> np.ndarray:
    """The clean expert trajectory for the episode's initial scene."""
    assert env.scene is not None
    keyframes = task.expert(env.scene)
    return render_keyframes(env.scene.ee_pose, keyframes, env.frame_dt).poses


def run_baseline_episode(
    env: ManipulationEnv,
    policy: BaselinePolicy,
    task: Task,
    actuation: ActuationModel = TRACKING_30HZ,
    max_frames: int = MAX_EPISODE_FRAMES,
    chained: bool = False,
) -> EpisodeTrace:
    """Frame-by-frame execution (paper Fig. 1a)."""
    observation = env.continue_with(task) if chained else env.reset(task)
    assert env.scene is not None
    reference = _reference_path(env, task)
    observations = [observation] * WINDOW_LENGTH
    path = [env.scene.ee_pose.copy()]
    gripper_path = [env.scene.gripper_open]
    executed = []

    for _ in range(max_frames):
        window = np.array(observations[-WINDOW_LENGTH:])
        delta, gripper_open = policy.predict(window, task.instruction_id)
        target = env.scene.ee_pose + delta
        observation = env.step(target, gripper_open, actuation)
        observations.append(observation)
        path.append(env.scene.ee_pose.copy())
        gripper_path.append(env.scene.gripper_open)
        executed.append(1)
        if env.succeeded:
            break
    return EpisodeTrace(
        success=env.succeeded,
        frames=len(executed),
        executed_steps=executed,
        ee_path=np.array(path),
        reference_path=reference,
        gripper_path=np.array(gripper_path, dtype=bool),
    )


class _TokenWindow:
    """Deployment-side token bookkeeping for Corki.

    Tracks which frames were VLM-encoded (inference frames) or ViT-encoded
    (feedback frames); every other slot yields the learned mask embedding,
    mirroring the training-time pattern of
    :func:`repro.core.training.deployment_slot_pattern`.
    """

    def __init__(self, policy: CorkiPolicy):
        self._policy = policy
        self._tokens: dict[int, np.ndarray] = {}
        self._first_real: np.ndarray | None = None

    def add_inference_frame(self, frame: int, observation: np.ndarray, instruction: int) -> None:
        token = self._policy.encode_frame_token(observation, instruction)
        if self._first_real is None:
            self._first_real = token
        self._tokens[frame] = token

    def add_feedback_frame(self, frame: int, observation: np.ndarray) -> None:
        self._tokens[frame] = self._policy.encode_feedback_token(observation)

    def assemble(self, current_frame: int) -> np.ndarray:
        mask = self._policy.mask_token()
        rows = []
        for frame in range(current_frame - WINDOW_LENGTH + 1, current_frame + 1):
            if frame in self._tokens:
                rows.append(self._tokens[frame])
            elif frame < 0 and self._first_real is not None:
                rows.append(self._first_real)  # warm-up padding, as in training
            else:
                rows.append(mask)
        return np.array(rows)


def run_corki_episode(
    env: ManipulationEnv,
    policy: CorkiPolicy,
    task: Task,
    variation: CorkiVariation,
    rng: np.random.Generator,
    actuation: ActuationModel = TRACKING_100HZ,
    max_frames: int = MAX_EPISODE_FRAMES,
    chained: bool = False,
) -> EpisodeTrace:
    """Trajectory-level execution (paper Fig. 1b) for one Corki variation."""
    observation = env.continue_with(task) if chained else env.reset(task)
    assert env.scene is not None
    reference = _reference_path(env, task)
    window = _TokenWindow(policy)
    path = [env.scene.ee_pose.copy()]
    gripper_path = [env.scene.gripper_open]
    executed: list[int] = []

    schedule = (
        schedule_by_name(variation.feedback) if variation.closed_loop else NO_FEEDBACK
    )
    frame = 0
    while frame < max_frames:
        window.add_inference_frame(frame, observation, task.instruction_id)
        trajectory = policy.predict_trajectory(
            window.assemble(frame), env.scene.ee_pose, env.frame_dt
        )
        steps = _decide_steps(trajectory, variation, env.scene.gripper_open)
        steps = min(steps, max_frames - frame)
        feedback_step = schedule.feedback_step(steps, rng)

        for step in range(1, steps + 1):
            target = trajectory.pose(step * trajectory.step_dt)
            gripper_open = trajectory.gripper_at_step(step)
            observation = env.step(target, gripper_open, actuation)
            frame += 1
            path.append(env.scene.ee_pose.copy())
            gripper_path.append(env.scene.gripper_open)
            if step == feedback_step:
                window.add_feedback_frame(frame, observation)
            if env.succeeded:
                executed.append(step)
                return EpisodeTrace(
                    success=True,
                    frames=frame,
                    executed_steps=executed,
                    ee_path=np.array(path),
                    reference_path=reference,
                    gripper_path=np.array(gripper_path, dtype=bool),
                )
        executed.append(steps)

    return EpisodeTrace(
        success=env.succeeded,
        frames=frame,
        executed_steps=executed,
        ee_path=np.array(path),
        reference_path=reference,
        gripper_path=np.array(gripper_path, dtype=bool),
    )


def _decide_steps(trajectory, variation: CorkiVariation, gripper_open_now: bool) -> int:
    """Execution length: fixed for Corki-T, Algorithm 1 for Corki-ADAP."""
    if not variation.adaptive:
        return int(variation.execute_steps)
    waypoints = trajectory.waypoints()
    flags = gripper_change_flags(trajectory.gripper_open, gripper_open_now)
    return adaptive_termination_step(
        trajectory.origin[:3],
        waypoints[:, :3],
        flags,
        ADAPTIVE_DISTANCE_THRESHOLD,
    )


def run_job(
    env: ManipulationEnv,
    tasks: list[Task],
    run_episode,
) -> list[EpisodeTrace]:
    """Run a long-horizon job: consecutive tasks until the first failure.

    ``run_episode(task, chained)`` is a closure over the policy/variation;
    the environment's scene persists across tasks, as in CALVIN's rollouts.
    Returns the traces of the attempted tasks (the job's score is the number
    of successes, i.e. the index of the first failed trace).
    """
    traces = []
    for index, task in enumerate(tasks):
        trace = run_episode(task, index > 0)
        traces.append(trace)
        if not trace.success:
            break
    return traces
