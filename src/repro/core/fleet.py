"""Batched fleet evaluation: advance many closed-loop episodes in lock-step.

The single-episode runners in :mod:`repro.core.runner` reproduce the paper's
execution models one rollout at a time, which leaves the policy's matmuls
operating on one token window per Python-level forward pass.  This module is
the throughput path: a :class:`FleetRunner` drives N lanes (one environment
plus one job of chained tasks each) through shared *ticks*, where every tick

1. gathers the Corki lanes sitting at a trajectory boundary and runs **one**
   batched VLM encode plus **one** batched trajectory prediction for all of
   them (lanes de-synchronise because executed-trajectory lengths differ --
   the same per-inference bookkeeping ``EpisodeTrace.executed_steps``
   records);
2. gathers every baseline lane (which needs inference on *every* frame,
   paper Fig. 1a) into one ``predict_batch`` call;
3. advances each active lane one camera frame through
   :class:`repro.sim.env.BatchedManipulationEnv`; and
4. batch-encodes the closed-loop feedback frames captured this tick
   (paper Sec. 3.4).

Each lane owns its random generators, and the batched policy entry points
pad singleton batches (see ``repro.core.policy._pad_singleton``), so a
lane's episode is element-wise identical to the one the single-episode
runner would produce from the same seeds -- ``tests/test_fleet.py`` asserts
this for every policy kind, including job chaining.  Episodes in a batch
progress independently: a lane that finishes a task chains into the next
task of its job (or retires) without stalling its neighbours.

Determinism contract: the runner owns no randomness and keeps no state
across lanes, so a lane's traces are a pure function of its environment
generator, its :class:`FleetLane` specification and the policy weights --
never of fleet size, admission order or which other lanes run beside it.
That invariance is what makes both batch mode (:meth:`FleetRunner.run`) and
continuous batching (:meth:`FleetRunner.run_continuous`, where a finished
lane's slot is refilled from an open-ended stream at the next inference
boundary) interchangeable with single-episode rollouts, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.closed_loop import NO_FEEDBACK, schedule_by_name
from repro.core.config import CorkiVariation
from repro.core.policy import WINDOW_LENGTH, BaselinePolicy, CorkiPolicy
from repro.core.runner import (
    MAX_EPISODE_FRAMES,
    EpisodeTrace,
    _decide_steps,
    _reference_path,
    _TokenWindow,
)
from repro.core.trajectory import pose_batch
from repro.sim.env import (
    TRACKING_100HZ,
    TRACKING_30HZ,
    ActuationModel,
    BatchedManipulationEnv,
    ManipulationEnv,
)
from repro.sim.tasks import Task

__all__ = ["FleetLane", "FleetRunner", "run_baseline_fleet", "run_corki_fleet"]


@dataclass
class FleetLane:
    """Specification of one lane: a job of tasks on one environment.

    ``tasks`` is the lane's job, executed until the first failure exactly
    like :func:`repro.core.runner.run_job`; a single episode is a one-task
    job.  ``variation`` selects the Corki variation, or ``None`` for the
    baseline (RoboFlamingo-style) policy.  ``rng`` drives the Corki
    closed-loop feedback schedule and must be lane-private so that episode
    randomness never depends on which other lanes share the fleet.
    ``chained_start`` makes the first task enter via ``continue_with``
    instead of ``reset`` (the single-episode wrappers' ``chained`` flag).
    """

    tasks: list[Task]
    variation: CorkiVariation | None = None
    rng: np.random.Generator | None = None
    actuation: ActuationModel | None = None
    max_frames: int = MAX_EPISODE_FRAMES
    chained_start: bool = False

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a lane needs at least one task")
        if self.variation is not None and self.variation.closed_loop and self.rng is None:
            raise ValueError("closed-loop Corki lanes need a lane-private rng")


class _LaneState:
    """Per-lane episode bookkeeping shared by both policy kinds."""

    def __init__(self, index: int, env: ManipulationEnv, lane: FleetLane):
        self.index = index
        self.env = env
        self.lane = lane
        self.task_index = 0
        self.traces: list[EpisodeTrace] = []
        self.done = False
        self._start_episode(chained=lane.chained_start)

    @property
    def task(self) -> Task:
        return self.lane.tasks[self.task_index]

    def _start_episode(self, chained: bool) -> None:
        task = self.task
        self.observation = (
            self.env.continue_with(task) if chained else self.env.reset(task)
        )
        assert self.env.scene is not None
        self.reference = _reference_path(self.env, task)
        self.frame = 0
        self.path = [self.env.scene.ee_pose.copy()]
        self.gripper_path = [self.env.scene.gripper_open]
        self.executed: list[int] = []
        self._reset_episode_state()

    def _reset_episode_state(self) -> None:
        """Hook for per-episode policy state (token windows, trajectories)."""

    def _record_frame(self, observation: np.ndarray) -> None:
        assert self.env.scene is not None
        self.observation = observation
        self.frame += 1
        self.path.append(self.env.scene.ee_pose.copy())
        self.gripper_path.append(self.env.scene.gripper_open)

    def _finish_episode(self, success: bool) -> None:
        self.traces.append(
            EpisodeTrace(
                success=success,
                frames=self.frame,
                executed_steps=self.executed,
                ee_path=np.array(self.path),
                reference_path=self.reference,
                gripper_path=np.array(self.gripper_path, dtype=bool),
            )
        )
        if success and self.task_index + 1 < len(self.lane.tasks):
            self.task_index += 1
            self._start_episode(chained=True)
        else:
            self.done = True

    # -- tick protocol ---------------------------------------------------------

    def tick_command(self) -> tuple[np.ndarray, bool]:  # pragma: no cover - abstract
        """The (target pose, gripper) to execute this tick."""
        raise NotImplementedError

    def after_step(self, observation: np.ndarray, succeeded: bool) -> bool:
        """Advance bookkeeping after the env stepped; ``succeeded`` is this
        lane's entry in the tick's success mask.  True if a feedback frame
        was captured this tick and still needs encoding."""
        raise NotImplementedError  # pragma: no cover - abstract


class _BaselineLaneState(_LaneState):
    """Frame-by-frame execution (paper Fig. 1a): inference on every tick."""

    def __init__(self, index, env, lane, policy: BaselinePolicy):
        self.policy = policy
        self.actuation = lane.actuation or TRACKING_30HZ
        super().__init__(index, env, lane)

    def _reset_episode_state(self) -> None:
        # Rolling *token* window (RoboFlamingo's queue of 12): the VLM
        # encodes frames independently, so only the newest frame needs
        # encoding each tick; warm-up slots repeat the first frame's token.
        # ``None`` marks a fresh episode whose first token is still pending.
        self._tokens: np.ndarray | None = None
        self._command: tuple[np.ndarray, bool] | None = None

    def push_token(self, token: np.ndarray) -> None:
        """Shift this tick's newest-frame token into the window."""
        if self._tokens is None:
            self._tokens = np.repeat(token[None], WINDOW_LENGTH, axis=0)
        else:
            self._tokens[:-1] = self._tokens[1:]
            self._tokens[-1] = token

    def token_window(self) -> np.ndarray:
        assert self._tokens is not None
        return self._tokens

    def set_command(self, delta: np.ndarray, gripper_open: bool) -> None:
        assert self.env.scene is not None
        self._command = (self.env.scene.ee_pose + delta, gripper_open)

    def tick_command(self) -> tuple[np.ndarray, bool]:
        assert self._command is not None
        return self._command

    def after_step(self, observation: np.ndarray, succeeded: bool) -> bool:
        self._record_frame(observation)
        self.executed.append(1)
        self._command = None
        if succeeded or self.frame >= self.lane.max_frames:
            self._finish_episode(succeeded)
        return False


class _CorkiLaneState(_LaneState):
    """Trajectory-level execution (paper Fig. 1b) with per-lane re-planning."""

    def __init__(self, index, env, lane, policy: CorkiPolicy):
        self.policy = policy
        self.actuation = lane.actuation or TRACKING_100HZ
        variation = lane.variation
        assert variation is not None
        self.schedule = (
            schedule_by_name(variation.feedback) if variation.closed_loop else NO_FEEDBACK
        )
        super().__init__(index, env, lane)

    def _reset_episode_state(self) -> None:
        self.window = _TokenWindow(self.policy)
        self.trajectory = None
        self.steps_planned = 0
        self.step_in_traj = 0
        self.feedback_step: int | None = None
        self.pending_feedback: tuple[int, np.ndarray] | None = None

    @property
    def needs_plan(self) -> bool:
        return not self.done and self.trajectory is None

    def adopt_token(self, token: np.ndarray) -> None:
        self.window.insert_inference_token(self.frame, token)

    def assembled_window(self) -> np.ndarray:
        return self.window.assemble(self.frame)

    def adopt_plan(self, trajectory) -> None:
        variation = self.lane.variation
        assert variation is not None and self.env.scene is not None
        steps = _decide_steps(trajectory, variation, self.env.scene.gripper_open)
        self.steps_planned = min(steps, self.lane.max_frames - self.frame)
        self.trajectory = trajectory
        self.step_in_traj = 0
        self.feedback_step = self.schedule.feedback_step(self.steps_planned, self.lane.rng)

    def tick_command(self) -> tuple[np.ndarray, bool]:
        assert self.trajectory is not None
        step = self.step_in_traj + 1
        target = self.trajectory.pose(step * self.trajectory.step_dt)
        return target, self.trajectory.gripper_at_step(step)

    def after_step(self, observation: np.ndarray, succeeded: bool) -> bool:
        self.step_in_traj += 1
        step = self.step_in_traj
        self._record_frame(observation)
        captured = step == self.feedback_step
        if succeeded:
            # Mid-trajectory success ends the episode immediately; a feedback
            # frame captured on the same tick dies with the episode's window
            # (the single runner encodes it and then discards the window).
            self.executed.append(step)
            self._finish_episode(True)
            return False
        if captured:
            self.pending_feedback = (self.frame, observation)
        if step == self.steps_planned:
            self.executed.append(self.steps_planned)
            self.trajectory = None
            if self.frame >= self.lane.max_frames:
                self._finish_episode(succeeded)
                return False
        return captured


class FleetRunner:
    """Advance a fleet of independent episodes with batched inference.

    Construct with the policies the lanes reference (a homogeneous fleet
    needs only one of them; mixed fleets are supported) and call
    :meth:`run`.  The runner owns no randomness -- environments and lanes
    carry their own generators -- so results are a pure function of the
    lane specifications.
    """

    def __init__(
        self,
        baseline: BaselinePolicy | None = None,
        corki: CorkiPolicy | None = None,
        estimator=None,
    ):
        self.baseline = baseline
        self.corki = corki
        #: optional :class:`repro.pipeline.estimate.FleetEstimator`; when
        #: set, every tick hands it the lanes that advanced a camera frame
        #: so per-lane latency/energy estimates accumulate alongside the
        #: rollout (no effect on episode numerics).
        self.estimator = estimator

    def _make_state(self, index: int, env: ManipulationEnv, lane: FleetLane) -> _LaneState:
        """Admit one lane into slot ``index``: reset its env, build its state."""
        if lane.variation is None:
            if self.baseline is None:
                raise ValueError("fleet has baseline lanes but no baseline policy")
            return _BaselineLaneState(index, env, lane, self.baseline)
        if self.corki is None:
            raise ValueError("fleet has Corki lanes but no Corki policy")
        return _CorkiLaneState(index, env, lane, self.corki)

    def _build_states(
        self, fleet: BatchedManipulationEnv, lanes: list[FleetLane]
    ) -> list[_LaneState]:
        return [
            self._make_state(index, fleet.envs[index], lane)
            for index, lane in enumerate(lanes)
        ]

    def run(
        self,
        envs: BatchedManipulationEnv | list[ManipulationEnv],
        lanes: list[FleetLane],
    ) -> list[list[EpisodeTrace]]:
        """Run every lane's job to completion; returns traces per lane.

        ``envs`` supplies one environment per lane (a raw list is wrapped in
        a :class:`BatchedManipulationEnv`).  The result's lane ``i`` holds
        the attempted-task traces of ``lanes[i]`` in job order, exactly what
        :func:`repro.core.runner.run_job` returns for the same job.
        """
        fleet = (
            envs
            if isinstance(envs, BatchedManipulationEnv)
            else BatchedManipulationEnv(envs)
        )
        if len(lanes) != len(fleet):
            raise ValueError(
                f"{len(lanes)} lanes need {len(lanes)} environments, got {len(fleet)}"
            )
        states = self._build_states(fleet, lanes)
        active = [state for state in states if not state.done]
        while active:
            self._plan_corki_lanes(active, fleet.frame_dt)
            self._infer_baseline_lanes(active)
            self._step_lanes(active, fleet)
            active = [state for state in states if not state.done]
        return [state.traces for state in states]

    def run_continuous(
        self,
        source: Iterable[tuple[ManipulationEnv, FleetLane]],
        slots: int,
        on_complete: Callable[[FleetLane, list[EpisodeTrace]], None],
        should_cancel: Callable[[FleetLane], bool] | None = None,
        on_cancel: Callable[[FleetLane, list[EpisodeTrace]], None] | None = None,
    ) -> int:
        """Serve an open-ended stream of lanes with **continuous batching**.

        ``source`` yields ``(environment, lane)`` admissions; up to ``slots``
        of them fly at once.  Unlike :meth:`run` -- which admits a fixed
        fleet and waits for the whole fleet to drain -- a lane that finishes
        its job here *retires immediately*: its traces are handed to
        ``on_complete(lane, traces)`` and its slot is refilled from
        ``source`` at the next inference boundary, so the batched forward
        passes stay saturated while requests keep arriving.  This is the
        admission discipline a request-serving layer needs
        (:mod:`repro.serving`), and the reason it is safe is the module's
        determinism contract: lane randomness is lane-private and numerics
        are fleet-size invariant, so a lane admitted into a half-drained
        fleet produces byte-identical traces to one rolled in a fresh batch.

        ``should_cancel(lane)`` is polled at each inference boundary (the
        same tick granularity at which lanes are admitted); a lane it votes
        off is evicted *before* the tick's forward passes, its slot refilled
        from ``source``, and its partial traces handed to
        ``on_cancel(lane, traces)`` instead of ``on_complete``.  This is how
        the serving tier enforces request deadlines: one expired lane costs
        the batch a slot-refill, never a stall -- and because lane
        randomness is lane-private, evicting a lane leaves every surviving
        lane's bytes untouched.

        Returns the number of lanes served (cancelled lanes are not
        counted).  Completion callbacks fire in retirement order, which
        depends on episode lengths -- callers that need request order must
        key results off the ``lane`` object.
        """
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        stream: Iterator[tuple[ManipulationEnv, FleetLane]] = iter(source)
        admitted = []
        for env, lane in stream:
            admitted.append((env, lane))
            if len(admitted) == slots:
                break
        if not admitted:
            return 0
        fleet = BatchedManipulationEnv([env for env, _ in admitted])
        states: list[_LaneState | None] = [
            self._make_state(index, fleet.envs[index], lane)
            for index, (_, lane) in enumerate(admitted)
        ]
        served = 0

        def refill_slot(slot: int) -> None:
            states[slot] = None
            refill = next(stream, None)
            if refill is not None:
                env, lane = refill
                fleet.adopt_lane(slot, env)
                states[slot] = self._make_state(slot, env, lane)

        live = [state for state in states if state is not None and not state.done]
        while live:
            if should_cancel is not None:
                for slot, state in enumerate(states):
                    if state is None or state.done or not should_cancel(state.lane):
                        continue
                    if on_cancel is not None:
                        on_cancel(state.lane, state.traces)
                    refill_slot(slot)
                live = [state for state in states if state is not None and not state.done]
                if not live:
                    break
            self._plan_corki_lanes(live, fleet.frame_dt)
            self._infer_baseline_lanes(live)
            self._step_lanes(live, fleet)
            for slot, state in enumerate(states):
                if state is None or not state.done:
                    continue
                on_complete(state.lane, state.traces)
                served += 1
                refill_slot(slot)
            live = [state for state in states if state is not None and not state.done]
        return served

    def _plan_corki_lanes(self, active: list[_LaneState], frame_dt: float) -> None:
        """One batched encode + trajectory prediction for every lane at a
        planning boundary (episode start or executed-trajectory end)."""
        planners = [
            state
            for state in active
            if isinstance(state, _CorkiLaneState) and state.needs_plan
        ]
        if not planners:
            return
        assert self.corki is not None
        observations = np.stack([state.observation for state in planners])
        instructions = np.array([state.task.instruction_id for state in planners])
        tokens = self.corki.encode_frame_token_batch(observations, instructions)
        for state, token in zip(planners, tokens):
            state.adopt_token(token)
        windows = np.stack([state.assembled_window() for state in planners])
        origins = np.stack([state.env.scene.ee_pose for state in planners])
        trajectories = self.corki.predict_trajectory_batch(windows, origins, frame_dt)
        for state, trajectory in zip(planners, trajectories):
            state.adopt_plan(trajectory)

    def _infer_baseline_lanes(self, active: list[_LaneState]) -> None:
        """One batched per-frame action prediction for every baseline lane.

        Each lane's newest frame (the only window slot that changed since
        the last tick) is VLM-encoded in one batch and shifted into the
        lane's token ring; the LSTM and heads then run on the stacked rings.
        Re-encoding a frame would reproduce its token bit for bit, so this
        is a pure 12x cut of the per-tick VLM work.
        """
        lanes = [state for state in active if isinstance(state, _BaselineLaneState)]
        if not lanes:
            return
        assert self.baseline is not None
        observations = np.stack([state.observation for state in lanes])
        instructions = np.array([state.task.instruction_id for state in lanes])
        tokens = self.baseline.encode_frame_token_batch(observations, instructions)
        for state, token in zip(lanes, tokens):
            state.push_token(token)
        windows = np.stack([state.token_window() for state in lanes])
        deltas, grippers = self.baseline.predict_token_batch(windows)
        for state, delta, gripper in zip(lanes, deltas, grippers):
            state.set_command(delta, bool(gripper))

    def _step_lanes(self, active: list[_LaneState], fleet: BatchedManipulationEnv) -> None:
        """Advance every active lane one camera frame, then batch-encode the
        closed-loop feedback frames captured this tick.

        Corki lanes' targets are one batched cubic evaluation
        (:func:`repro.core.trajectory.pose_batch`) at each lane's own
        execution time; baseline lanes reuse the command computed by this
        tick's batched inference.  Success is evaluated as one per-tick mask
        before any lane advances its episode bookkeeping.
        """
        count = len(active)
        targets = np.empty((count, 6))
        grippers = np.zeros(count, dtype=bool)
        corki_rows: list[int] = []
        for k, state in enumerate(active):
            if isinstance(state, _CorkiLaneState):
                corki_rows.append(k)
            else:
                target, gripper = state.tick_command()
                targets[k] = target
                grippers[k] = gripper
        if corki_rows:
            rows = np.array(corki_rows)
            states = [active[k] for k in corki_rows]
            trajectories = [state.trajectory for state in states]
            steps = [state.step_in_traj + 1 for state in states]
            times = np.array(
                [step * trajectory.step_dt for step, trajectory in zip(steps, trajectories)]
            )
            targets[rows] = pose_batch(trajectories, times)
            grippers[rows] = [
                trajectory.gripper_at_step(step)
                for trajectory, step in zip(trajectories, steps)
            ]
        indices = [state.index for state in active]
        observations = fleet.step_many(
            targets,
            grippers,
            [state.actuation for state in active],
            indices,
        )
        succeeded = fleet.succeeded_mask(indices)
        feedback = [
            state
            for state, observation, success in zip(active, observations, succeeded)
            if state.after_step(observation, bool(success))
        ]
        if self.estimator is not None:
            self.estimator.observe(active)
        if not feedback:
            return
        assert self.corki is not None
        captured = [state.pending_feedback for state in feedback]
        tokens = self.corki.encode_feedback_token_batch(
            np.stack([observation for _, observation in captured])
        )
        for state, (frame, _), token in zip(feedback, captured, tokens):
            state.window.insert_feedback_token(frame, token)
            state.pending_feedback = None


def run_baseline_fleet(
    envs: BatchedManipulationEnv | list[ManipulationEnv],
    policy: BaselinePolicy,
    tasks: list[Task],
    actuation: ActuationModel = TRACKING_30HZ,
    max_frames: int = MAX_EPISODE_FRAMES,
) -> list[EpisodeTrace]:
    """Run one baseline episode per lane (task ``i`` on environment ``i``).

    Convenience wrapper for homogeneous single-task fleets (benchmarks, the
    quickstart); evaluation drivers build :class:`FleetLane` lists directly.
    Each lane's episode equals ``run_baseline_episode`` on the same
    environment and task, element for element.
    """
    lanes = [
        FleetLane(tasks=[task], actuation=actuation, max_frames=max_frames)
        for task in tasks
    ]
    return [traces[0] for traces in FleetRunner(baseline=policy).run(envs, lanes)]


def run_corki_fleet(
    envs: BatchedManipulationEnv | list[ManipulationEnv],
    policy: CorkiPolicy,
    tasks: list[Task],
    variation: CorkiVariation,
    rngs: list[np.random.Generator],
    actuation: ActuationModel = TRACKING_100HZ,
    max_frames: int = MAX_EPISODE_FRAMES,
) -> list[EpisodeTrace]:
    """Run one Corki episode per lane with lane-private feedback rngs.

    ``rngs[i]`` drives only lane ``i``'s closed-loop feedback schedule
    (``FleetLane.rng``); scene randomness lives in each environment's own
    generator.  Each lane's episode equals ``run_corki_episode`` with the
    same seeds, element for element, for every variation including ADAP.
    """
    lanes = [
        FleetLane(
            tasks=[task],
            variation=variation,
            rng=rng,
            actuation=actuation,
            max_frames=max_frames,
        )
        for task, rng in zip(tasks, rngs)
    ]
    return [traces[0] for traces in FleetRunner(corki=policy).run(envs, lanes)]
