"""Closed-loop feedback scheduling (paper Sec. 3.4) and its ablations.

During trajectory execution Corki "randomly sends images back before the
endpoint"; the ViT-encoded feature conditions the next prediction.  The
paper fixes the random policy; this module exposes it as one of several
schedules so the design choice can be ablated:

* ``random`` -- the paper's policy: one uniformly random step per trajectory.
* ``midpoint`` -- deterministic middle of the executed window.
* ``none`` -- open-loop: no feedback at all (the paper's motivation case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FeedbackSchedule", "RANDOM_FEEDBACK", "MIDPOINT_FEEDBACK", "NO_FEEDBACK", "schedule_by_name"]


@dataclass(frozen=True)
class FeedbackSchedule:
    """Chooses which executed step (1-based) sends a feedback image."""

    name: str

    def feedback_step(self, steps: int, rng: np.random.Generator) -> int | None:
        """The step index carrying a feedback frame, or ``None`` for open loop.

        Only steps strictly before the final one qualify ("before the
        endpoint of the trajectory"), so single-step executions never
        produce feedback.
        """
        if steps <= 1:
            return None
        if self.name == "none":
            return None
        if self.name == "midpoint":
            return steps // 2 if steps // 2 >= 1 else None
        if self.name == "random":
            return int(rng.integers(1, steps))
        raise ValueError(f"unknown feedback schedule {self.name!r}")


RANDOM_FEEDBACK = FeedbackSchedule("random")
MIDPOINT_FEEDBACK = FeedbackSchedule("midpoint")
NO_FEEDBACK = FeedbackSchedule("none")

_SCHEDULES = {
    schedule.name: schedule
    for schedule in (RANDOM_FEEDBACK, MIDPOINT_FEEDBACK, NO_FEEDBACK)
}


def schedule_by_name(name: str) -> FeedbackSchedule:
    """Look up a feedback schedule by name."""
    if name not in _SCHEDULES:
        raise KeyError(f"unknown feedback schedule {name!r}; known: {sorted(_SCHEDULES)}")
    return _SCHEDULES[name]
