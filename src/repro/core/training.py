"""Training loops for the baseline and Corki policy heads.

Both heads train on the same demonstrations with the losses of paper Eq. 3
(per-frame MSE + lambda BCE) and Eq. 5 (trajectory-waypoint MSE + lambda
BCE on the gripper schedule).  Corki's windows are additionally masked with
deployment-realistic patterns (paper Fig. 4): only the frames an executing
system would encode are visible; the rest see the learned mask embedding or
a ViT closed-loop feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import WINDOW_LENGTH, BaselinePolicy, CorkiPolicy
from repro.nn.functional import bce_with_logits, mse_loss
from repro.nn.optim import Adam, clip_gradients
from repro.sim.dataset import ActionNormalizer, Demonstration

__all__ = [
    "TrainingConfig",
    "deployment_slot_pattern",
    "build_baseline_dataset",
    "build_corki_dataset",
    "train_baseline",
    "train_corki",
]


@dataclass
class TrainingConfig:
    """Hyper-parameters shared by both trainers."""

    epochs: int = 4
    batch_size: int = 32
    learning_rate: float = 3e-3
    gripper_weight: float = 0.5  # the paper's lambda in Eq. 3
    grad_clip: float = 5.0
    seed: int = 7
    log_every: int = 0  # 0 disables progress printing


def deployment_slot_pattern(
    window: int,
    period: int,
    rng: np.random.Generator,
    closed_loop: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Which window slots a deployed Corki system would actually encode.

    With inference every ``period`` frames and the newest slot being an
    inference frame, real slots lie at ``window-1, window-1-period, ...``.
    With closed-loop feedback enabled, one random slot inside each executed
    segment carries a ViT feature instead of the mask embedding
    (paper Sec. 3.4).  Returns boolean arrays ``(real, feedback)``.
    """
    real = np.zeros(window, dtype=bool)
    feedback = np.zeros(window, dtype=bool)
    slot = window - 1
    while slot >= 0:
        real[slot] = True
        if closed_loop and period > 1:
            low = max(slot - period + 1, 0)
            if low < slot:
                feedback[int(rng.integers(low, slot))] = True
        slot -= period
    feedback &= ~real
    return real, feedback


def _window_index_matrix(length: int) -> np.ndarray:
    """Window indices for every supervisable frame of one demonstration.

    Row ``t`` holds the ``WINDOW_LENGTH`` frame indices ending at ``t``,
    clipped at the episode start (frames before it repeat the first
    observation, matching RoboFlamingo's warm-up behaviour with a partially
    filled queue) -- one fancy-indexing gather materialises what the
    historical code assembled window by window.
    """
    frames = np.arange(length - 1)
    offsets = np.arange(-WINDOW_LENGTH + 1, 1)
    return np.clip(frames[:, None] + offsets[None, :], 0, length - 1)


def build_baseline_dataset(
    demonstrations: list[Demonstration], normalizer: ActionNormalizer
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Materialise all per-frame supervision windows for the baseline.

    Returns ``(windows, instructions, pose_targets, gripper_targets)``.
    Pose targets are normalised next-frame deltas.  Each demonstration's
    windows and targets come from array indexing (sample order stays
    demo-major, frame-minor).
    """
    windows, instructions, poses, grippers = [], [], [], []
    for demo in demonstrations:
        length = len(demo)
        windows.append(demo.observations[_window_index_matrix(length)])
        instructions.append(np.full(length - 1, demo.instruction_id, dtype=int))
        poses.append(normalizer.normalize(demo.poses[1:] - demo.poses[:-1]))
        grippers.append(demo.gripper_open[1:].astype(float))
    return (
        np.concatenate(windows),
        np.concatenate(instructions),
        np.concatenate(poses),
        np.concatenate(grippers)[:, None],
    )


def build_corki_dataset(
    demonstrations: list[Demonstration],
    normalizer: ActionNormalizer,
    horizon: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Materialise all trajectory-supervision tensors for Corki (Eq. 5).

    Returns ``(windows, instructions, offset_targets, gripper_targets)``
    with shapes ``(P, window, obs)``, ``(P,)``, ``(P, horizon + 1, 6)`` and
    ``(P, horizon)``; offset row 0 is the zero start offset and rows 1..
    are normalised future waypoint offsets.  Everything is gathered with
    array indexing -- element for element what per-row
    :func:`repro.sim.dataset.corki_targets` calls produced -- so one build
    per training run replaces the historical per-batch Python assembly.
    Sample order is demo-major, frame-minor.
    """
    windows, instructions, offsets, grippers = [], [], [], []
    future_offsets = np.arange(1, horizon + 1)
    for demo in demonstrations:
        length = len(demo)
        frames = np.arange(length - 1)
        windows.append(demo.observations[_window_index_matrix(length)])
        instructions.append(np.full(length - 1, demo.instruction_id, dtype=int))
        # Beyond the episode end the trajectory holds its final pose.
        future = np.minimum(frames[:, None] + future_offsets[None, :], length - 1)
        offsets.append(demo.poses[future] - demo.poses[frames][:, None, :])
        grippers.append(demo.gripper_open[future].astype(float))
    count = sum(len(demo) - 1 for demo in demonstrations)
    offset_targets = np.zeros((count, horizon + 1, 6))
    offset_targets[:, 1:] = np.concatenate(offsets) / normalizer.scale
    return (
        np.concatenate(windows),
        np.concatenate(instructions),
        offset_targets,
        np.concatenate(grippers),
    )


def train_baseline(
    policy: BaselinePolicy,
    demonstrations: list[Demonstration],
    config: TrainingConfig | None = None,
) -> list[float]:
    """Train the RoboFlamingo-style head; returns per-epoch mean losses."""
    config = config or TrainingConfig()
    # repro: allow[RNG-KEYED] reason=frozen training stream; rekeying would orphan every cached policy tag
    rng = np.random.default_rng(config.seed)
    normalizer = ActionNormalizer.fit(demonstrations)
    policy.set_normalizer(normalizer)
    windows, instructions, poses, grippers = build_baseline_dataset(demonstrations, normalizer)

    # One walk of the module tree per run: Adam and the per-batch gradient
    # clip share this list instead of re-collecting parameters every batch.
    parameters = policy.parameters()
    optimizer = Adam(parameters, lr=config.learning_rate)
    history = []
    for epoch in range(config.epochs):
        order = rng.permutation(len(windows))
        losses = []
        for start in range(0, len(order), config.batch_size):
            batch = order[start : start + config.batch_size]
            pose_pred, gripper_pred = policy(windows[batch], instructions[batch])
            loss = mse_loss(pose_pred, poses[batch]) + config.gripper_weight * bce_with_logits(
                gripper_pred, grippers[batch]
            )
            optimizer.zero_grad()
            loss.backward()
            clip_gradients(parameters, config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
        if config.log_every:
            print(f"[baseline] epoch {epoch + 1}/{config.epochs} loss {history[-1]:.4f}")
    return history


def train_corki(
    policy: CorkiPolicy,
    demonstrations: list[Demonstration],
    config: TrainingConfig | None = None,
) -> list[float]:
    """Train the Corki trajectory head; returns per-epoch mean losses.

    Every sample draws a random execution period in [1, horizon] and masks
    the window with the corresponding deployment pattern, so one model
    serves every Corki-T variation (paper Sec. 5.2).
    """
    config = config or TrainingConfig()
    # repro: allow[RNG-KEYED] reason=frozen training stream; rekeying would orphan every cached policy tag
    rng = np.random.default_rng(config.seed)
    normalizer = ActionNormalizer.fit(demonstrations)
    policy.set_normalizer(normalizer)

    horizon = policy.horizon
    # Windows and targets are deterministic: one array-indexed build per run
    # (the historical code re-assembled them row by row in every batch).
    windows, instructions, offset_targets, gripper_targets = build_corki_dataset(
        demonstrations, normalizer, horizon
    )
    total = len(windows)
    parameters = policy.parameters()
    optimizer = Adam(parameters, lr=config.learning_rate)
    history = []
    for epoch in range(config.epochs):
        order = rng.permutation(total)
        # Deployment-pattern masks are the epoch's only random supervision
        # input.  Drawing them per sample in epoch order consumes the
        # generator in exactly the sequence the per-batch assembly did, so
        # training is seed-for-seed unchanged; row ``p`` masks sample
        # ``order[p]``.
        real = np.zeros((total, WINDOW_LENGTH), dtype=bool)
        feedback = np.zeros((total, WINDOW_LENGTH), dtype=bool)
        for position in range(total):
            period = int(rng.integers(1, horizon + 1))
            real[position], feedback[position] = deployment_slot_pattern(
                WINDOW_LENGTH, period, rng
            )
        losses = []
        for start in range(0, total, config.batch_size):
            batch = order[start : start + config.batch_size]
            rows = slice(start, start + len(batch))
            coefficients, gripper_logits = policy(
                windows[batch], instructions[batch], real[rows], feedback[rows]
            )
            waypoints = policy.waypoint_offsets(coefficients)  # (batch, 6, horizon + 1)
            target = np.transpose(offset_targets[batch], (0, 2, 1))
            loss = mse_loss(waypoints, target) + config.gripper_weight * bce_with_logits(
                gripper_logits, gripper_targets[batch]
            )
            optimizer.zero_grad()
            loss.backward()
            clip_gradients(parameters, config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
        if config.log_every:
            print(f"[corki] epoch {epoch + 1}/{config.epochs} loss {history[-1]:.4f}")
    return history
