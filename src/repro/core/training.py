"""Training loops for the baseline and Corki policy heads.

Both heads train on the same demonstrations with the losses of paper Eq. 3
(per-frame MSE + lambda BCE) and Eq. 5 (trajectory-waypoint MSE + lambda
BCE on the gripper schedule).  Corki's windows are additionally masked with
deployment-realistic patterns (paper Fig. 4): only the frames an executing
system would encode are visible; the rest see the learned mask embedding or
a ViT closed-loop feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import WINDOW_LENGTH, BaselinePolicy, CorkiPolicy
from repro.nn.functional import bce_with_logits, mse_loss
from repro.nn.optim import Adam, clip_gradients
from repro.sim.dataset import ActionNormalizer, Demonstration, corki_targets

__all__ = [
    "TrainingConfig",
    "deployment_slot_pattern",
    "build_baseline_dataset",
    "train_baseline",
    "train_corki",
]


@dataclass
class TrainingConfig:
    """Hyper-parameters shared by both trainers."""

    epochs: int = 4
    batch_size: int = 32
    learning_rate: float = 3e-3
    gripper_weight: float = 0.5  # the paper's lambda in Eq. 3
    grad_clip: float = 5.0
    seed: int = 7
    log_every: int = 0  # 0 disables progress printing


def deployment_slot_pattern(
    window: int,
    period: int,
    rng: np.random.Generator,
    closed_loop: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Which window slots a deployed Corki system would actually encode.

    With inference every ``period`` frames and the newest slot being an
    inference frame, real slots lie at ``window-1, window-1-period, ...``.
    With closed-loop feedback enabled, one random slot inside each executed
    segment carries a ViT feature instead of the mask embedding
    (paper Sec. 3.4).  Returns boolean arrays ``(real, feedback)``.
    """
    real = np.zeros(window, dtype=bool)
    feedback = np.zeros(window, dtype=bool)
    slot = window - 1
    while slot >= 0:
        real[slot] = True
        if closed_loop and period > 1:
            low = max(slot - period + 1, 0)
            if low < slot:
                feedback[int(rng.integers(low, slot))] = True
        slot -= period
    feedback &= ~real
    return real, feedback


def _window_indices(demo_lengths: list[int]) -> list[tuple[int, int]]:
    """(demo index, frame index) pairs for every supervisable frame."""
    pairs = []
    for demo_index, length in enumerate(demo_lengths):
        pairs.extend((demo_index, t) for t in range(length - 1))
    return pairs


def _observation_window(demo: Demonstration, t: int) -> np.ndarray:
    """The last ``WINDOW_LENGTH`` observations ending at frame ``t``.

    Frames before the episode start repeat the first observation, matching
    RoboFlamingo's warm-up behaviour with a partially filled queue.
    """
    indices = np.arange(t - WINDOW_LENGTH + 1, t + 1)
    indices = np.clip(indices, 0, len(demo) - 1)
    return demo.observations[indices]


def build_baseline_dataset(
    demonstrations: list[Demonstration], normalizer: ActionNormalizer
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Materialise all per-frame supervision windows for the baseline.

    Returns ``(windows, instructions, pose_targets, gripper_targets)``.
    Pose targets are normalised next-frame deltas.
    """
    windows, instructions, poses, grippers = [], [], [], []
    for demo in demonstrations:
        for t in range(len(demo) - 1):
            windows.append(_observation_window(demo, t))
            instructions.append(demo.instruction_id)
            poses.append(normalizer.normalize(demo.poses[t + 1] - demo.poses[t]))
            grippers.append(float(demo.gripper_open[t + 1]))
    return (
        np.array(windows),
        np.array(instructions),
        np.array(poses),
        np.array(grippers)[:, None],
    )


def train_baseline(
    policy: BaselinePolicy,
    demonstrations: list[Demonstration],
    config: TrainingConfig | None = None,
) -> list[float]:
    """Train the RoboFlamingo-style head; returns per-epoch mean losses."""
    config = config or TrainingConfig()
    rng = np.random.default_rng(config.seed)
    normalizer = ActionNormalizer.fit(demonstrations)
    policy.set_normalizer(normalizer)
    windows, instructions, poses, grippers = build_baseline_dataset(demonstrations, normalizer)

    optimizer = Adam(policy.parameters(), lr=config.learning_rate)
    history = []
    for epoch in range(config.epochs):
        order = rng.permutation(len(windows))
        losses = []
        for start in range(0, len(order), config.batch_size):
            batch = order[start : start + config.batch_size]
            pose_pred, gripper_pred = policy(windows[batch], instructions[batch])
            loss = mse_loss(pose_pred, poses[batch]) + config.gripper_weight * bce_with_logits(
                gripper_pred, grippers[batch]
            )
            optimizer.zero_grad()
            loss.backward()
            clip_gradients(policy.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
        if config.log_every:
            print(f"[baseline] epoch {epoch + 1}/{config.epochs} loss {history[-1]:.4f}")
    return history


def train_corki(
    policy: CorkiPolicy,
    demonstrations: list[Demonstration],
    config: TrainingConfig | None = None,
) -> list[float]:
    """Train the Corki trajectory head; returns per-epoch mean losses.

    Every sample draws a random execution period in [1, horizon] and masks
    the window with the corresponding deployment pattern, so one model
    serves every Corki-T variation (paper Sec. 5.2).
    """
    config = config or TrainingConfig()
    rng = np.random.default_rng(config.seed)
    normalizer = ActionNormalizer.fit(demonstrations)
    policy.set_normalizer(normalizer)

    pairs = _window_indices([len(demo) for demo in demonstrations])
    horizon = policy.horizon
    optimizer = Adam(policy.parameters(), lr=config.learning_rate)
    history = []
    for epoch in range(config.epochs):
        order = rng.permutation(len(pairs))
        losses = []
        for start in range(0, len(order), config.batch_size):
            batch_pairs = [pairs[i] for i in order[start : start + config.batch_size]]
            batch = len(batch_pairs)
            windows = np.zeros((batch, WINDOW_LENGTH, policy.observation_dim))
            instructions = np.zeros(batch, dtype=int)
            # Targets cover j = 0..horizon; row 0 is the zero start offset.
            offset_targets = np.zeros((batch, horizon + 1, 6))
            gripper_targets = np.zeros((batch, horizon))
            real = np.zeros((batch, WINDOW_LENGTH), dtype=bool)
            feedback = np.zeros((batch, WINDOW_LENGTH), dtype=bool)
            for row, (demo_index, t) in enumerate(batch_pairs):
                demo = demonstrations[demo_index]
                windows[row] = _observation_window(demo, t)
                instructions[row] = demo.instruction_id
                offsets, gripper = corki_targets(demo, t, horizon)
                offset_targets[row, 1:] = offsets / normalizer.scale
                gripper_targets[row] = gripper
                period = int(rng.integers(1, horizon + 1))
                real[row], feedback[row] = deployment_slot_pattern(
                    WINDOW_LENGTH, period, rng
                )

            coefficients, gripper_logits = policy(windows, instructions, real, feedback)
            waypoints = policy.waypoint_offsets(coefficients)  # (batch, 6, horizon + 1)
            target = np.transpose(offset_targets, (0, 2, 1))
            loss = mse_loss(waypoints, target) + config.gripper_weight * bce_with_logits(
                gripper_logits, gripper_targets
            )
            optimizer.zero_grad()
            loss.backward()
            clip_gradients(policy.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
        if config.log_every:
            print(f"[corki] epoch {epoch + 1}/{config.epochs} loss {history[-1]:.4f}")
    return history
