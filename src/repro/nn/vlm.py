"""A compact stand-in for the RoboFlamingo vision-language model.

The real system runs a 3-billion-parameter OpenFlamingo VLM whose only role
in the Corki pipeline is to turn (image, instruction) pairs into
vision-language tokens ``X_t`` consumed by the policy head; its *cost* is
what the paper measures (181.3 ms per frame on a V100).  This module
reproduces the interface -- a learned encoder from synthetic camera features
and an instruction id to a token vector -- while the cost is modelled by
:mod:`repro.pipeline`.  Substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["CompactVLM"]


class CompactVLM(Module):
    """Encode (observation features, instruction id) into a fused token.

    Architecture: a two-layer observation encoder and an instruction
    embedding fused additively and layer-normalised.  Additive fusion keeps
    gradients flowing through numpy broadcasting when a (batch, window)
    block of observations shares one instruction per row.

    Accepts observations of shape ``(obs,)``, ``(batch, obs)`` or
    ``(batch, window, obs)``; the instruction may be an int or an int array
    of shape ``(batch,)`` aligned with the leading axis.
    """

    def __init__(
        self,
        observation_dim: int,
        num_instructions: int,
        token_dim: int,
        rng: np.random.Generator,
        hidden_dim: int | None = None,
    ):
        hidden_dim = hidden_dim or 2 * token_dim
        self.observation_dim = observation_dim
        self.token_dim = token_dim
        self.num_instructions = num_instructions
        self.obs_in = Linear(observation_dim, hidden_dim, rng)
        self.obs_out = Linear(hidden_dim, token_dim, rng)
        self.instruction_embedding = Embedding(num_instructions, token_dim, rng)
        self.norm = LayerNorm(token_dim)

    def forward(self, observation: np.ndarray | Tensor, instruction: int | np.ndarray) -> Tensor:
        """One VLM "inference": returns the vision-language token ``X_t``."""
        obs = observation if isinstance(observation, Tensor) else Tensor(observation)
        visual = self.obs_out(self.obs_in(obs).tanh())
        text = self.instruction_embedding(instruction)
        if visual.ndim == 3 and text.ndim == 2:
            # One instruction per batch row, shared across the token window.
            text = text.reshape(text.shape[0], 1, self.token_dim)
        return self.norm((visual + text).tanh())

    def infer(self, observation: np.ndarray, instruction: int | np.ndarray) -> np.ndarray:
        """Raw-array forward for deployment; bitwise the Tensor ``forward``."""
        visual = self.obs_out.infer(np.tanh(self.obs_in.infer(observation)))
        text = self.instruction_embedding.infer(instruction)
        if visual.ndim == 3 and text.ndim == 2:
            text = text.reshape(text.shape[0], 1, self.token_dim)
        return self.norm.infer(np.tanh(visual + text))
