"""Numpy neural substrate: autograd, layers, optimisers, and the VLM stack."""

from repro.nn.attention import MultiHeadSelfAttention, TransformerBlock, TransformerVLM
from repro.nn.functional import (
    bce_with_logits,
    combined_action_loss,
    huber_loss,
    mse_loss,
    softmax,
)
from repro.nn.layers import (
    LSTM,
    MLP,
    Embedding,
    LayerNorm,
    Linear,
    LSTMCell,
    Module,
    Sequential,
)
from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.serialization import load_module, load_state_dict, save_module, state_dict
from repro.nn.tensor import Tensor, as_tensor, concat, no_grad, stack
from repro.nn.vit import PatchFeatureEncoder
from repro.nn.vlm import CompactVLM

__all__ = [
    "Adam",
    "CompactVLM",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "Linear",
    "MLP",
    "Module",
    "MultiHeadSelfAttention",
    "PatchFeatureEncoder",
    "SGD",
    "Sequential",
    "Tensor",
    "TransformerBlock",
    "TransformerVLM",
    "as_tensor",
    "bce_with_logits",
    "clip_gradients",
    "combined_action_loss",
    "concat",
    "huber_loss",
    "load_module",
    "load_state_dict",
    "mse_loss",
    "no_grad",
    "save_module",
    "softmax",
    "stack",
    "state_dict",
]
