"""A small transformer encoder, offered as an alternative VLM backbone.

RoboFlamingo's real backbone is a transformer VLM; :class:`CompactVLM`
replaces it with an MLP fusion for speed.  This module provides a
self-attention variant (:class:`TransformerVLM`) for studies where token
mixing matters, built entirely from the autograd ops in
:mod:`repro.nn.tensor` -- attention weights, softmax and projections are all
differentiable.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor, concat

__all__ = ["MultiHeadSelfAttention", "TransformerBlock", "TransformerVLM"]


class MultiHeadSelfAttention(Module):
    """Multi-head scaled dot-product self-attention over the last two axes.

    Input shape ``(..., tokens, dim)``; heads split the channel dimension.
    """

    def __init__(self, dim: int, heads: int, rng: np.random.Generator):
        if dim % heads != 0:
            raise ValueError(f"dim ({dim}) must be divisible by heads ({heads})")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.query = Linear(dim, dim, rng)
        self.key = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)
        self.output = Linear(dim, dim, rng)

    def _split_heads(self, x: Tensor, tokens: int) -> list[Tensor]:
        """Slice the channel axis into per-head tensors (keeps autograd simple)."""
        return [
            x[..., :, h * self.head_dim : (h + 1) * self.head_dim]
            for h in range(self.heads)
        ]

    def forward(self, x: Tensor) -> Tensor:
        tokens = x.shape[-2]
        queries = self._split_heads(self.query(x), tokens)
        keys = self._split_heads(self.key(x), tokens)
        values = self._split_heads(self.value(x), tokens)
        scale = 1.0 / np.sqrt(self.head_dim)

        head_outputs = []
        for q, k, v in zip(queries, keys, values):
            # scores: (..., tokens, tokens)
            scores = (q @ _swap_last_two(k)) * scale
            weights = softmax(scores)
            head_outputs.append(weights @ v)
        return self.output(concat(head_outputs, axis=-1))


def _swap_last_two(x: Tensor) -> Tensor:
    """Transpose the last two axes, differentiable at any rank.

    ``Tensor.swapaxes`` records a single graph node whose backward swaps the
    gradient back, replacing the earlier per-slice ``stack`` of 2-D
    transposes that grew the autograd graph linearly with the batch size.
    """
    if x.ndim < 2:
        raise ValueError(f"unsupported rank {x.ndim} for attention transpose")
    return x.swapaxes(-1, -2)


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + MLP with residuals."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator):
        self.attention = MultiHeadSelfAttention(dim, heads, rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.expand = Linear(dim, 2 * dim, rng)
        self.contract = Linear(2 * dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        return x + self.contract(self.expand(self.norm2(x)).tanh())


class TransformerVLM(Module):
    """Transformer-based vision-language encoder.

    The observation vector is split into patches, each projected to the
    model width; the instruction embedding is prepended as a [CLS]-style
    token; transformer blocks mix them; the instruction token's final state
    is the fused vision-language token, matching :class:`CompactVLM`'s
    interface for single observations.
    """

    def __init__(
        self,
        observation_dim: int,
        num_instructions: int,
        token_dim: int,
        rng: np.random.Generator,
        num_patches: int = 8,
        depth: int = 2,
        heads: int = 4,
    ):
        if observation_dim % num_patches != 0:
            raise ValueError("observation_dim must divide into num_patches")
        self.observation_dim = observation_dim
        self.token_dim = token_dim
        self.num_patches = num_patches
        self.patch_dim = observation_dim // num_patches
        self.patch_projection = Linear(self.patch_dim, token_dim, rng)
        self.instruction_embedding = Embedding(num_instructions, token_dim, rng)
        self.position_embedding = Tensor(
            rng.normal(0.0, 0.02, size=(num_patches + 1, token_dim)), requires_grad=True
        )
        self.blocks = [TransformerBlock(token_dim, heads, rng) for _ in range(depth)]
        self.norm = LayerNorm(token_dim)

    def forward(self, observation: np.ndarray | Tensor, instruction: int) -> Tensor:
        obs = observation if isinstance(observation, Tensor) else Tensor(observation)
        if obs.ndim != 1:
            raise ValueError("TransformerVLM encodes one observation at a time")
        patches = obs.reshape(self.num_patches, self.patch_dim)
        projected = self.patch_projection(patches)
        cls = self.instruction_embedding(instruction).reshape(1, self.token_dim)
        sequence = concat([cls, projected], axis=0) + self.position_embedding
        for block in self.blocks:
            sequence = block(sequence)
        return self.norm(sequence[0])
