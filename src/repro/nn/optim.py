"""Optimisers and gradient utilities for training the policy heads."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["SGD", "Adam", "clip_gradients"]


def clip_gradients(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, which training loops log to spot divergence.
    """
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float(np.sum(parameter.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad *= scale
    return norm


class SGD:
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: list[Tensor], lr: float, momentum: float = 0.0):
        self.parameters = parameters
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * parameter.grad
            parameter.data += velocity

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()


class Adam:
    """Adam with bias correction (Kingma & Ba), the trainer's default."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.parameters = parameters
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()
