"""Save and load module parameters as flat name->array mappings (npz on disk)."""

from __future__ import annotations

import numpy as np

from repro.atomicio import atomic_savez
from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = ["state_dict", "load_state_dict", "save_module", "load_module"]


def _walk(obj, prefix: str, out: dict[str, Tensor]) -> None:
    if isinstance(obj, Tensor):
        if obj.requires_grad:
            out[prefix] = obj
    elif isinstance(obj, Module):
        for name, value in sorted(vars(obj).items()):
            _walk(value, f"{prefix}.{name}" if prefix else name, out)
    elif isinstance(obj, (list, tuple)):
        for index, item in enumerate(obj):
            _walk(item, f"{prefix}[{index}]", out)
    elif isinstance(obj, dict):
        for key in sorted(obj):
            _walk(obj[key], f"{prefix}[{key}]", out)


def state_dict(module: Module) -> dict[str, np.ndarray]:
    """Named parameter arrays of a module tree (copies, safe to serialise)."""
    tensors: dict[str, Tensor] = {}
    _walk(module, "", tensors)
    return {name: tensor.data.copy() for name, tensor in tensors.items()}


def load_state_dict(module: Module, state: dict[str, np.ndarray]) -> None:
    """Load parameters saved by :func:`state_dict` into ``module`` in place.

    Raises ``KeyError`` on missing entries and ``ValueError`` on shape
    mismatches, so silent architecture drift is impossible.
    """
    tensors: dict[str, Tensor] = {}
    _walk(module, "", tensors)
    for name, tensor in tensors.items():
        if name not in state:
            raise KeyError(f"missing parameter {name!r} in saved state")
        value = np.asarray(state[name])
        if value.shape != tensor.data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: saved {value.shape}, model {tensor.data.shape}"
            )
        tensor.data = value.astype(float).copy()


def save_module(module: Module, path: str) -> None:
    """Serialise a module's parameters to an ``.npz`` file.

    The write is atomic (temp file + rename), so a crash mid-save can
    never leave a torn archive a later cache hit would try to load.
    """
    atomic_savez(path, **state_dict(module))


def load_module(module: Module, path: str) -> None:
    """Restore parameters written by :func:`save_module`."""
    with np.load(path) as archive:
        load_state_dict(module, dict(archive.items()))
