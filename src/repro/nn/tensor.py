"""A compact reverse-mode automatic differentiation engine on numpy arrays.

PyTorch is not available in the reproduction environment, so the policy
networks (the RoboFlamingo-style LSTM policy head and the Corki trajectory
head) are trained with this engine.  It implements exactly the operator set
those models need -- dense algebra, the LSTM gate nonlinearities, reductions,
concatenation and slicing -- with full broadcasting support.

Design notes:

* A :class:`Tensor` stores its value, an optional gradient accumulator and a
  backward closure capturing its parents.  :meth:`Tensor.backward` runs a
  topological sweep, so graphs may share subexpressions freely.
* Gradients through broadcast operations are reduced back to the parent's
  shape by :func:`_unbroadcast`, the standard trick.
* The engine is eager and single-threaded; everything is float64 to make
  finite-difference gradient checks tight.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Union

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "stack",
    "concat",
    "no_grad",
    "is_grad_enabled",
    "sigmoid_values",
]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (for inference loops)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled() -> bool:
    """Whether operations currently record the autodiff graph."""
    return _GRAD_ENABLED


def sigmoid_values(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic on a raw array.

    The exponent ``-|z|`` is always the non-positive side of ``z`` (negation
    is exact, so this matches a two-sided branch bit for bit) and ``exp``
    never overflows; each branch then evaluates the same closed form as the
    historical masked implementation over a shared denominator, so results
    are bitwise unchanged.  Shared by :meth:`Tensor.sigmoid` and the
    raw-array deployment path in :mod:`repro.nn.layers`.
    """
    z = np.asarray(z)
    exp_z = np.exp(-np.abs(z))
    denominator = 1.0 + exp_z
    return np.where(z >= 0, 1.0 / denominator, exp_z / denominator)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were expanded from size one.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autodiff graph wrapping a numpy array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=float)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _result(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # -- basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy); do not mutate while training."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._result(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._result(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike | "Tensor") -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike | "Tensor") -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._result(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / other.data**2, other.shape)
                )

        return Tensor._result(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike | "Tensor") -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._result(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    self._accumulate(_unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if other.data.ndim == 2 else grad * self.data)
                else:
                    other._accumulate(_unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape))

        return Tensor._result(data, (self, other), backward)

    # -- elementwise nonlinearities ----------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._result(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._result(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._result(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = sigmoid_values(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._result(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._result(self.data * mask, (self,), backward)

    # -- reductions and shape ops --------------------------------------------------

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._result(data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._result(data, (self,), backward)

    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._result(self.data.T, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Exchange two axes (a batched transpose), differentiable.

        One graph node regardless of batch size -- the backward pass swaps
        the gradient's axes back -- unlike a per-slice ``stack`` of 2-D
        transposes, whose graph grows with the leading dimension.
        """
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._result(np.swapaxes(self.data, axis1, axis2), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._result(data, (self,), backward)

    # -- backward pass ---------------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (i.e. this tensor is a scalar loss).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        order: list[Tensor] = []
        seen: set[int] = set()
        # Iterative DFS to avoid recursion limits on long LSTM chains.
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if id(node) in seen or not node.requires_grad:
                continue
            if processed:
                seen.add(id(node))
                order.append(node)
            else:
                stack.append((node, True))
                for parent in node._parents:
                    if id(parent) not in seen and parent.requires_grad:
                        stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=float))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def as_tensor(value: ArrayLike | Tensor) -> Tensor:
    """Wrap ``value`` in a constant :class:`Tensor` unless it already is one."""
    return value if isinstance(value, Tensor) else Tensor(value)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable in every input."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._result(data, tuple(tensors), backward)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an existing axis, differentiable in every input."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(index)])

    return Tensor._result(data, tuple(tensors), backward)
