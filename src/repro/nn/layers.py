"""Neural network layers: Linear, MLP, LSTM, Embedding, LayerNorm.

These mirror the structure of the RoboFlamingo policy head (paper Fig. 3):
an LSTM over the 12-token vision-language window followed by two MLP heads.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Module", "Linear", "MLP", "LSTMCell", "LSTM", "Embedding", "LayerNorm", "Sequential"]


class Module:
    """Base class providing parameter discovery and train/eval bookkeeping."""

    def parameters(self) -> list[Tensor]:
        """All trainable tensors reachable from this module, depth-first."""
        found: list[Tensor] = []
        seen: set[int] = set()

        def collect(obj) -> None:
            if isinstance(obj, Tensor):
                if obj.requires_grad and id(obj) not in seen:
                    seen.add(id(obj))
                    found.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    collect(value)
            elif isinstance(obj, (list, tuple)):
                for item in obj:
                    collect(item)
            elif isinstance(obj, dict):
                for item in obj.values():
                    collect(item)

        collect(self)
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def parameter_count(self) -> int:
        """Total number of scalar parameters (for model-size reporting)."""
        return sum(p.data.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class Linear(Module):
    """Affine layer ``y = x W + b`` with Glorot-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(_glorot(rng, in_features, out_features), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class Sequential(Module):
    """Apply a list of modules/callables in order."""

    def __init__(self, *stages):
        self.stages = list(stages)

    def forward(self, x: Tensor) -> Tensor:
        for stage in self.stages:
            x = stage(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with tanh hidden activations.

    ``sizes`` lists layer widths including input and output, e.g.
    ``MLP([64, 64, 7], rng)`` builds one hidden layer of width 64.
    """

    def __init__(self, sizes: list[int], rng: np.random.Generator):
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output width")
        self.layers = [Linear(a, b, rng) for a, b in zip(sizes[:-1], sizes[1:])]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = layer(x).tanh()
        return self.layers[-1](x)


class LSTMCell(Module):
    """A single LSTM cell with fused gate weights.

    Gate layout in the fused matrices is ``[input, forget, cell, output]``.
    The forget-gate bias is initialised to one, the standard fix for
    vanishing memory early in training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Tensor(_glorot(rng, input_size, 4 * hidden_size), requires_grad=True)
        self.weight_hh = Tensor(_glorot(rng, hidden_size, 4 * hidden_size), requires_grad=True)
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.weight_ih + h_prev @ self.weight_hh + self.bias
        hs = self.hidden_size
        i_gate = gates[..., 0:hs].sigmoid()
        f_gate = gates[..., hs : 2 * hs].sigmoid()
        g_gate = gates[..., 2 * hs : 3 * hs].tanh()
        o_gate = gates[..., 3 * hs : 4 * hs].sigmoid()
        c_next = f_gate * c_prev + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch_shape: tuple[int, ...] = ()) -> tuple[Tensor, Tensor]:
        shape = batch_shape + (self.hidden_size,)
        return Tensor(np.zeros(shape)), Tensor(np.zeros(shape))


class LSTM(Module):
    """Unidirectional LSTM unrolled over the token window.

    The policy head runs this over the 12-token vision-language window
    ("LSTM x12 loops" in paper Fig. 3) and reads out the final hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.cell = LSTMCell(input_size, hidden_size, rng)

    def forward(
        self,
        sequence: list[Tensor] | Tensor,
        state: tuple[Tensor, Tensor] | None = None,
    ) -> tuple[list[Tensor], tuple[Tensor, Tensor]]:
        """Run over ``sequence``: a list of ``[batch?, input]`` tensors or one
        ``(batch, window, input)`` tensor sliced along the window axis.

        The recurrence is inherently sequential over the window, but with a
        batched ``sequence`` every gate matmul sees ``(batch, ...)`` operands,
        which is what makes fleet evaluation amortise Python overhead.
        Returns all hidden states plus the final ``(h, c)``.
        """
        if isinstance(sequence, Tensor):
            sequence = [sequence[:, t, :] for t in range(sequence.shape[1])]
        if state is None:
            batch_shape = sequence[0].shape[:-1]
            state = self.cell.initial_state(batch_shape)
        hidden_states = []
        for token in sequence:
            h, c = self.cell(token, state)
            state = (h, c)
            hidden_states.append(h)
        return hidden_states, state


class Embedding(Module):
    """Lookup table for instruction ids and the mask token (paper Fig. 4)."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        self.table = Tensor(rng.normal(0.0, 0.1, size=(num_embeddings, dim)), requires_grad=True)

    def forward(self, index: int | np.ndarray) -> Tensor:
        return self.table[index]


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gain = Tensor(np.ones(dim), requires_grad=True)
        self.shift = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred * (variance + self.eps) ** -0.5
        return normalised * self.gain + self.shift
