"""Neural network layers: Linear, MLP, LSTM, Embedding, LayerNorm.

These mirror the structure of the RoboFlamingo policy head (paper Fig. 3):
an LSTM over the 12-token vision-language window followed by two MLP heads.

Each layer has two forward paths:

* ``forward`` builds the autodiff graph on :class:`Tensor` nodes (training);
* ``infer`` runs the identical numpy operations, in the identical order, on
  raw arrays.  Deployment inference needs no graph, and skipping the
  per-operation ``Tensor`` bookkeeping is a large share of the fleet
  engine's tick budget.  The two paths must stay bitwise equal --
  ``tests/test_nn.py`` asserts ``forward(x).numpy() == infer(x)`` exactly
  for every layer, and the fleet equivalence suite pins it end to end.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, sigmoid_values

__all__ = ["Module", "Linear", "MLP", "LSTMCell", "LSTM", "Embedding", "LayerNorm", "Sequential"]


class Module:
    """Base class providing parameter discovery and train/eval bookkeeping."""

    def parameters(self) -> list[Tensor]:
        """All trainable tensors reachable from this module, depth-first."""
        found: list[Tensor] = []
        seen: set[int] = set()

        def collect(obj) -> None:
            if isinstance(obj, Tensor):
                if obj.requires_grad and id(obj) not in seen:
                    seen.add(id(obj))
                    found.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    collect(value)
            elif isinstance(obj, (list, tuple)):
                for item in obj:
                    collect(item)
            elif isinstance(obj, dict):
                for item in obj.values():
                    collect(item)

        collect(self)
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def parameter_count(self) -> int:
        """Total number of scalar parameters (for model-size reporting)."""
        return sum(p.data.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class Linear(Module):
    """Affine layer ``y = x W + b`` with Glorot-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(_glorot(rng, in_features, out_features), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Raw-array forward; bitwise the Tensor ``forward``.

        Stacked inputs collapse to one 2-D GEMM: BLAS row results match the
        batched-matmul loop bit for bit (pinned by ``tests/test_nn.py``) and
        one large product beats many small ones.
        """
        if x.ndim > 2:
            lead = x.shape[:-1]
            flat = x.reshape(-1, x.shape[-1]) @ self.weight.data
            return flat.reshape(*lead, self.out_features) + self.bias.data
        return x @ self.weight.data + self.bias.data


class Sequential(Module):
    """Apply a list of modules/callables in order."""

    def __init__(self, *stages):
        self.stages = list(stages)

    def forward(self, x: Tensor) -> Tensor:
        for stage in self.stages:
            x = stage(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with tanh hidden activations.

    ``sizes`` lists layer widths including input and output, e.g.
    ``MLP([64, 64, 7], rng)`` builds one hidden layer of width 64.
    """

    def __init__(self, sizes: list[int], rng: np.random.Generator):
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output width")
        self.layers = [Linear(a, b, rng) for a, b in zip(sizes[:-1], sizes[1:])]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = layer(x).tanh()
        return self.layers[-1](x)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Raw-array forward; bitwise the Tensor ``forward``."""
        for layer in self.layers[:-1]:
            x = np.tanh(layer.infer(x))
        return self.layers[-1].infer(x)


class LSTMCell(Module):
    """A single LSTM cell with fused gate weights.

    Gate layout in the fused matrices is ``[input, forget, cell, output]``.
    The forget-gate bias is initialised to one, the standard fix for
    vanishing memory early in training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Tensor(_glorot(rng, input_size, 4 * hidden_size), requires_grad=True)
        self.weight_hh = Tensor(_glorot(rng, hidden_size, 4 * hidden_size), requires_grad=True)
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.weight_ih + h_prev @ self.weight_hh + self.bias
        hs = self.hidden_size
        i_gate = gates[..., 0:hs].sigmoid()
        f_gate = gates[..., hs : 2 * hs].sigmoid()
        g_gate = gates[..., 2 * hs : 3 * hs].tanh()
        o_gate = gates[..., 3 * hs : 4 * hs].sigmoid()
        c_next = f_gate * c_prev + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def infer(
        self,
        gate_inputs: np.ndarray,
        state: tuple[np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw-array cell update from a precomputed input projection.

        ``gate_inputs`` is this step's ``x @ weight_ih`` (the input half of
        the fused gate pre-activations, hoisted out of the recurrence by
        :meth:`LSTM.infer`); adding the recurrent projection and bias in the
        same order as ``forward`` keeps every gate bitwise identical.
        """
        h_prev, c_prev = state
        gates = gate_inputs + h_prev @ self.weight_hh.data + self.bias.data
        hs = self.hidden_size
        # One logistic over the fused pre-activations (sigmoid is elementwise,
        # so the i/f/o bands of the fused result equal three per-band calls);
        # the cell-gate band alone takes the tanh.
        squashed = sigmoid_values(gates)
        i_gate = squashed[..., 0:hs]
        f_gate = squashed[..., hs : 2 * hs]
        g_gate = np.tanh(gates[..., 2 * hs : 3 * hs])
        o_gate = squashed[..., 3 * hs : 4 * hs]
        c_next = f_gate * c_prev + i_gate * g_gate
        h_next = o_gate * np.tanh(c_next)
        return h_next, c_next

    def initial_state(self, batch_shape: tuple[int, ...] = ()) -> tuple[Tensor, Tensor]:
        shape = batch_shape + (self.hidden_size,)
        return Tensor(np.zeros(shape)), Tensor(np.zeros(shape))


class LSTM(Module):
    """Unidirectional LSTM unrolled over the token window.

    The policy head runs this over the 12-token vision-language window
    ("LSTM x12 loops" in paper Fig. 3) and reads out the final hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.cell = LSTMCell(input_size, hidden_size, rng)

    def forward(
        self,
        sequence: list[Tensor] | Tensor,
        state: tuple[Tensor, Tensor] | None = None,
    ) -> tuple[list[Tensor], tuple[Tensor, Tensor]]:
        """Run over ``sequence``: a list of ``[batch?, input]`` tensors or one
        ``(batch, window, input)`` tensor sliced along the window axis.

        The recurrence is inherently sequential over the window, but with a
        batched ``sequence`` every gate matmul sees ``(batch, ...)`` operands,
        which is what makes fleet evaluation amortise Python overhead.
        Returns all hidden states plus the final ``(h, c)``.
        """
        if isinstance(sequence, Tensor):
            sequence = [sequence[:, t, :] for t in range(sequence.shape[1])]
        if state is None:
            batch_shape = sequence[0].shape[:-1]
            state = self.cell.initial_state(batch_shape)
        hidden_states = []
        for token in sequence:
            h, c = self.cell(token, state)
            state = (h, c)
            hidden_states.append(h)
        return hidden_states, state

    def infer(self, sequence: np.ndarray) -> np.ndarray:
        """Final hidden state over a ``(batch, window, input)`` raw block.

        The input projections of every window step are one stacked matmul
        (row-for-row bitwise equal to the per-step products); only the
        recurrent half stays inside the loop.  Together with the raw-array
        cell this removes all per-operation graph bookkeeping from
        deployment inference.
        """
        cell = self.cell
        gate_inputs = sequence @ cell.weight_ih.data
        shape = sequence.shape[:-2] + (cell.hidden_size,)
        h, c = np.zeros(shape), np.zeros(shape)
        for t in range(sequence.shape[-2]):
            h, c = cell.infer(gate_inputs[..., t, :], (h, c))
        return h


class Embedding(Module):
    """Lookup table for instruction ids and the mask token (paper Fig. 4)."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        self.table = Tensor(rng.normal(0.0, 0.1, size=(num_embeddings, dim)), requires_grad=True)

    def forward(self, index: int | np.ndarray) -> Tensor:
        return self.table[index]

    def infer(self, index: int | np.ndarray) -> np.ndarray:
        """Raw-array lookup; bitwise the Tensor ``forward``."""
        return self.table.data[index]


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gain = Tensor(np.ones(dim), requires_grad=True)
        self.shift = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred * (variance + self.eps) ** -0.5
        return normalised * self.gain + self.shift

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Raw-array forward; bitwise the Tensor ``forward`` (whose ``mean``
        is ``sum / count``, replicated here rather than ``np.mean``)."""
        count = float(x.shape[-1])
        mean = x.sum(axis=-1, keepdims=True) / count
        centred = x - mean
        variance = (centred * centred).sum(axis=-1, keepdims=True) / count
        normalised = centred * (variance + self.eps) ** -0.5
        return normalised * self.gain.data + self.shift.data
