"""Patch encoder for Corki's closed-loop features (paper Sec. 3.4).

During trajectory execution, Corki randomly sends an intermediate image back
to the server; the paper encodes it with a ViT and concatenates the result
with the LLM tokens to condition the next prediction.  This module mirrors
that: the synthetic camera feature vector is split into patches, linearly
projected, mean-pooled and normalised into a fixed-width feedback feature.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import LayerNorm, Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["PatchFeatureEncoder"]


class PatchFeatureEncoder(Module):
    """A minimal ViT-style encoder: patchify -> project -> pool -> norm."""

    def __init__(
        self,
        observation_dim: int,
        num_patches: int,
        feature_dim: int,
        rng: np.random.Generator,
    ):
        if observation_dim % num_patches != 0:
            raise ValueError(
                f"observation_dim ({observation_dim}) must divide into "
                f"num_patches ({num_patches}) equal patches"
            )
        self.num_patches = num_patches
        self.patch_dim = observation_dim // num_patches
        self.projection = Linear(self.patch_dim, feature_dim, rng)
        self.norm = LayerNorm(feature_dim)

    def forward(self, observation: np.ndarray | Tensor) -> Tensor:
        obs = observation if isinstance(observation, Tensor) else Tensor(observation)
        patches = obs.reshape(*obs.shape[:-1], self.num_patches, self.patch_dim)
        projected = self.projection(patches).tanh()
        pooled = projected.mean(axis=-2)
        return self.norm(pooled)

    def infer(self, observation: np.ndarray) -> np.ndarray:
        """Raw-array forward for deployment; bitwise the Tensor ``forward``
        (the pooling replicates ``Tensor.mean``'s ``sum / count``)."""
        patches = observation.reshape(*observation.shape[:-1], self.num_patches, self.patch_dim)
        projected = np.tanh(self.projection.infer(patches))
        pooled = projected.sum(axis=-2) / float(projected.shape[-2])
        return self.norm.infer(pooled)
