"""Loss functions and stateless ops used by the policy heads.

The paper's training objective (Eq. 3 and Eq. 5) combines a mean-squared
error on poses/trajectories with a binary cross-entropy on the gripper
channel, weighted by ``lambda``; both are provided here in autograd form.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

__all__ = ["mse_loss", "bce_with_logits", "softmax", "huber_loss", "combined_action_loss"]


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements."""
    diff = prediction - as_tensor(target)
    return (diff * diff).mean()


def bce_with_logits(logits: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Binary cross-entropy on logits, the gripper-channel loss of Eq. 3.

    Uses the numerically stable form
    ``max(z, 0) - z t + log(1 + exp(-|z|))`` expressed through the stable
    sigmoid: ``-t log p - (1 - t) log (1 - p)`` with clamped probabilities.
    """
    target = as_tensor(target)
    probs = logits.sigmoid()
    eps = 1e-7
    probs = probs * (1.0 - 2.0 * eps) + eps  # clamp away from {0, 1}
    loss = -(target * probs.log() + (1.0 - target) * (1.0 - probs).log())
    return loss.mean()


def softmax(logits: Tensor) -> Tensor:
    """Softmax over the last axis (shift-stabilised)."""
    shifted = logits - Tensor(logits.data.max(axis=-1, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=-1, keepdims=True)


def huber_loss(prediction: Tensor, target: Tensor | np.ndarray, delta: float = 1.0) -> Tensor:
    """Smooth L1 loss; offered for ablations of the trajectory objective."""
    diff = prediction - as_tensor(target)
    abs_diff = np.abs(diff.data)
    quadratic_mask = (abs_diff <= delta).astype(float)
    quadratic = diff * diff * 0.5
    linear = (diff * diff + delta * delta) * (delta / 2.0) / as_tensor(np.maximum(abs_diff, 1e-12))
    blended = quadratic * Tensor(quadratic_mask) + linear * Tensor(1.0 - quadratic_mask)
    return blended.mean()


def combined_action_loss(
    pose_prediction: Tensor,
    pose_target: np.ndarray,
    gripper_logits: Tensor,
    gripper_target: np.ndarray,
    gripper_weight: float,
) -> Tensor:
    """Paper Eq. 3: ``MSE(pose) + lambda * BCE(gripper)``."""
    return mse_loss(pose_prediction, pose_target) + gripper_weight * bce_with_logits(
        gripper_logits, gripper_target
    )
