"""Rigid-body robot model and the Franka Emika Panda instantiation.

A :class:`RobotModel` is a serial kinematic chain of revolute joints
described by modified Denavit-Hartenberg parameters plus per-link inertial
parameters (mass, centre of mass, rotational inertia about the COM).  The
Panda factory uses Franka's published MDH table and the dynamic parameters
identified by Gaz et al. (2019), which is the robot the paper characterises
(Sec. 2.2, Fig. 9, Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LinkParameters", "RobotModel", "panda", "two_link_planar"]


@dataclass(frozen=True)
class LinkParameters:
    """Kinematic and inertial description of one link and its parent joint.

    ``a``, ``alpha`` and ``d`` are modified-DH constants; the joint variable
    is the rotation about the link frame's z axis.  ``com`` and
    ``inertia_com`` are expressed in the link frame.
    """

    a: float
    alpha: float
    d: float
    mass: float
    com: np.ndarray
    inertia_com: np.ndarray
    theta_offset: float = 0.0


@dataclass
class RobotModel:
    """A serial-chain robot arm with revolute joints.

    Attributes:
        name: Human-readable robot name.
        links: One :class:`LinkParameters` per joint, base to tip.
        flange: Fixed transform from the last link frame to the end-effector
            (tool) frame.
        q_home: A reference "home" configuration used by characterisation
            experiments.
        q_lower / q_upper: Joint position limits (radians).
        qd_limit: Joint velocity limits (radians / second).
        tau_limit: Joint torque limits (newton-metres).
        gravity: Gravity vector in the world frame.
    """

    name: str
    links: list[LinkParameters]
    flange: np.ndarray
    q_home: np.ndarray
    q_lower: np.ndarray
    q_upper: np.ndarray
    qd_limit: np.ndarray
    tau_limit: np.ndarray
    gravity: np.ndarray = field(default_factory=lambda: np.array([0.0, 0.0, -9.81]))

    @property
    def dof(self) -> int:
        """Number of actuated joints."""
        return len(self.links)

    def clamp_configuration(self, q: np.ndarray) -> np.ndarray:
        """Clamp a joint configuration to the position limits."""
        return np.clip(np.asarray(q, dtype=float), self.q_lower, self.q_upper)

    def clamp_torque(self, tau: np.ndarray) -> np.ndarray:
        """Clamp a joint torque vector to the actuator limits."""
        return np.clip(np.asarray(tau, dtype=float), -self.tau_limit, self.tau_limit)

    def random_configuration(self, rng: np.random.Generator, margin: float = 0.1) -> np.ndarray:
        """Sample a uniformly random configuration inside the joint limits.

        ``margin`` shrinks the sampled interval proportionally at both ends,
        keeping samples away from the hard stops.
        """
        span = self.q_upper - self.q_lower
        lo = self.q_lower + margin * span
        hi = self.q_upper - margin * span
        return rng.uniform(lo, hi)


def _inertia_matrix(
    ixx: float, ixy: float, ixz: float, iyy: float, iyz: float, izz: float
) -> np.ndarray:
    return np.array([[ixx, ixy, ixz], [ixy, iyy, iyz], [ixz, iyz, izz]])


# Dynamic parameters identified by Gaz et al., "Dynamic Identification of the
# Franka Emika Panda Robot With Retrieval of Feasible Parameters Using
# Penalty-Based Optimization", RA-L 2019 -- the same parameter set the paper's
# Fig. 9 experiment relies on.  COM positions are in the link frames of the
# modified-DH convention; inertia tensors are about the COM.
_PANDA_MASSES = [4.970684, 0.646926, 3.228604, 3.587895, 1.225946, 1.666555, 0.735522]

_PANDA_COMS = [
    (3.875e-03, 2.081e-03, -0.1750),
    (-3.141e-03, -2.872e-02, 3.495e-03),
    (2.7518e-02, 3.9252e-02, -6.6502e-02),
    (-5.317e-02, 1.04419e-01, 2.7454e-02),
    (-1.1953e-02, 4.1065e-02, -3.8437e-02),
    (6.0149e-02, -1.4117e-02, -1.0517e-02),
    (1.0517e-02, -4.252e-03, 6.1597e-02),
]

_PANDA_INERTIAS = [
    (7.0337e-01, -1.3900e-04, 6.7720e-03, 7.0661e-01, 1.9169e-02, 9.1170e-03),
    (7.9620e-03, -3.9250e-03, 1.0254e-02, 2.8110e-02, 7.0400e-04, 2.5995e-02),
    (3.7242e-02, -4.7610e-03, -1.1396e-02, 3.6155e-02, -1.2805e-02, 1.0830e-02),
    (2.5853e-02, 7.7960e-03, -1.3320e-03, 1.9552e-02, 8.6410e-03, 2.8323e-02),
    (3.5549e-02, -2.1170e-03, -4.0370e-03, 2.9474e-02, 2.2900e-04, 8.6270e-03),
    (1.9640e-03, 1.0900e-04, -1.1580e-03, 4.3540e-03, 3.4100e-04, 5.4330e-03),
    (1.2516e-02, -4.2800e-04, -1.1960e-03, 1.0027e-02, -7.4100e-04, 4.8150e-03),
]

# Franka's published modified-DH table: (a_{i-1}, alpha_{i-1}, d_i).
_PANDA_MDH = [
    (0.0, 0.0, 0.333),
    (0.0, -np.pi / 2.0, 0.0),
    (0.0, np.pi / 2.0, 0.316),
    (0.0825, np.pi / 2.0, 0.0),
    (-0.0825, -np.pi / 2.0, 0.384),
    (0.0, np.pi / 2.0, 0.0),
    (0.088, np.pi / 2.0, 0.0),
]


def panda() -> RobotModel:
    """Build the 7-DoF Franka Emika Panda model used throughout the paper."""
    links = []
    for (a, alpha, d), mass, com, inertia in zip(
        _PANDA_MDH, _PANDA_MASSES, _PANDA_COMS, _PANDA_INERTIAS
    ):
        links.append(
            LinkParameters(
                a=a,
                alpha=alpha,
                d=d,
                mass=mass,
                com=np.array(com),
                inertia_com=_inertia_matrix(*inertia),
            )
        )
    flange = np.eye(4)
    flange[2, 3] = 0.107  # flange offset along the last joint axis
    return RobotModel(
        name="franka-panda",
        links=links,
        flange=flange,
        q_home=np.array([0.0, -0.3, 0.0, -1.8, 0.0, 1.5, np.pi / 4.0]),
        q_lower=np.array([-2.8973, -1.7628, -2.8973, -3.0718, -2.8973, -0.0175, -2.8973]),
        q_upper=np.array([2.8973, 1.7628, 2.8973, -0.0698, 2.8973, 3.7525, 2.8973]),
        qd_limit=np.array([2.175, 2.175, 2.175, 2.175, 2.61, 2.61, 2.61]),
        tau_limit=np.array([87.0, 87.0, 87.0, 87.0, 12.0, 12.0, 12.0]),
    )


def two_link_planar(
    link_length: float = 0.5, link_mass: float = 1.0
) -> RobotModel:
    """A 2-DoF planar arm with closed-form dynamics, used as a test oracle.

    Both links are point masses at their tips rotating about parallel z axes,
    so the mass matrix and bias forces have textbook closed forms that the
    generic RNEA/CRBA implementations can be validated against.
    """
    links = [
        LinkParameters(
            a=0.0,
            alpha=0.0,
            d=0.0,
            mass=link_mass,
            com=np.array([link_length, 0.0, 0.0]),
            inertia_com=np.zeros((3, 3)),
        ),
        LinkParameters(
            a=link_length,
            alpha=0.0,
            d=0.0,
            mass=link_mass,
            com=np.array([link_length, 0.0, 0.0]),
            inertia_com=np.zeros((3, 3)),
        ),
    ]
    flange = np.eye(4)
    flange[0, 3] = link_length
    big = np.full(2, 1e3)
    return RobotModel(
        name="two-link-planar",
        links=links,
        flange=flange,
        q_home=np.zeros(2),
        q_lower=-np.pi * np.ones(2),
        q_upper=np.pi * np.ones(2),
        qd_limit=big,
        tau_limit=big,
        gravity=np.array([0.0, -9.81, 0.0]),
    )
