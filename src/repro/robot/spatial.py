"""Spatial algebra primitives for rigid-body kinematics and dynamics.

This module implements the small set of SO(3)/SE(3) and 6-D spatial-vector
operations that the rest of :mod:`repro.robot` is built on.  Conventions:

* Homogeneous transforms are 4x4 matrices mapping points from the child
  frame to the parent frame.
* Spatial motion vectors are ordered ``[angular; linear]`` (Featherstone
  convention).  Task-space vectors used by the controller are ordered
  ``[linear; angular]``; helpers that cross that boundary say so explicitly.
* Rotations about principal axes follow the right-hand rule.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rotx",
    "roty",
    "rotz",
    "rpy_to_matrix",
    "matrix_to_rpy",
    "skew",
    "unskew",
    "so3_exp",
    "so3_log",
    "transform",
    "transform_inverse",
    "transform_point",
    "mdh_transform",
    "spatial_transform",
    "spatial_inertia",
    "crm",
    "crf",
    "rotation_error",
]

_EPS = 1e-12


def rotx(angle: float) -> np.ndarray:
    """Rotation matrix about the x axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def roty(angle: float) -> np.ndarray:
    """Rotation matrix about the y axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotz(angle: float) -> np.ndarray:
    """Rotation matrix about the z axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def rpy_to_matrix(rpy: np.ndarray) -> np.ndarray:
    """Convert extrinsic roll-pitch-yaw angles to a rotation matrix.

    The convention is ``R = Rz(yaw) @ Ry(pitch) @ Rx(roll)``, matching the
    XYZ extrinsic (ZYX intrinsic) convention used by the CALVIN action space.
    """
    roll, pitch, yaw = np.asarray(rpy, dtype=float)
    return rotz(yaw) @ roty(pitch) @ rotx(roll)


def matrix_to_rpy(rotation: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rpy_to_matrix`; returns ``[roll, pitch, yaw]``.

    At the pitch singularity (``|pitch| == pi/2``) the roll/yaw split is not
    unique; roll is set to zero there, which keeps the function total.
    """
    r = np.asarray(rotation, dtype=float)
    pitch = np.arcsin(np.clip(-r[2, 0], -1.0, 1.0))
    if abs(abs(pitch) - np.pi / 2.0) < 1e-9:
        roll = 0.0
        yaw = np.arctan2(-r[0, 1], r[1, 1])
    else:
        roll = np.arctan2(r[2, 1], r[2, 2])
        yaw = np.arctan2(r[1, 0], r[0, 0])
    return np.array([roll, pitch, yaw])


def skew(vector: np.ndarray) -> np.ndarray:
    """Return the 3x3 skew-symmetric matrix such that ``skew(a) @ b == a x b``."""
    x, y, z = np.asarray(vector, dtype=float)
    return np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])


def unskew(matrix: np.ndarray) -> np.ndarray:
    """Extract the vector from a skew-symmetric matrix (inverse of :func:`skew`)."""
    m = np.asarray(matrix, dtype=float)
    return np.array([m[2, 1], m[0, 2], m[1, 0]])


def so3_exp(omega: np.ndarray) -> np.ndarray:
    """Exponential map from a rotation vector to a rotation matrix (Rodrigues)."""
    omega = np.asarray(omega, dtype=float)
    angle = float(np.linalg.norm(omega))
    if angle < _EPS:
        return np.eye(3) + skew(omega)
    axis = omega / angle
    k = skew(axis)
    return np.eye(3) + np.sin(angle) * k + (1.0 - np.cos(angle)) * (k @ k)


def so3_log(rotation: np.ndarray) -> np.ndarray:
    """Logarithm map from a rotation matrix to a rotation vector."""
    r = np.asarray(rotation, dtype=float)
    cos_angle = np.clip((np.trace(r) - 1.0) / 2.0, -1.0, 1.0)
    angle = float(np.arccos(cos_angle))
    if angle < 1e-9:
        return unskew(r - r.T) / 2.0
    if abs(np.pi - angle) < 1e-6:
        # Near pi the antisymmetric part vanishes; recover the axis from the
        # diagonal of the symmetric part instead.
        diag = np.clip((np.diag(r) + 1.0) / 2.0, 0.0, None)
        axis = np.sqrt(diag)
        # Fix signs using the off-diagonal terms relative to the largest axis
        # component, which is numerically safe.
        i = int(np.argmax(axis))
        if axis[i] > _EPS:
            j, k = (i + 1) % 3, (i + 2) % 3
            axis[j] = np.copysign(axis[j], r[i, j] + r[j, i])
            axis[k] = np.copysign(axis[k], r[i, k] + r[k, i])
        return angle * axis / max(np.linalg.norm(axis), _EPS)
    return angle / (2.0 * np.sin(angle)) * unskew(r - r.T)


def transform(rotation: np.ndarray, translation: np.ndarray) -> np.ndarray:
    """Build a homogeneous transform from a rotation matrix and a translation."""
    t = np.eye(4)
    t[:3, :3] = rotation
    t[:3, 3] = translation
    return t


def transform_inverse(t: np.ndarray) -> np.ndarray:
    """Invert a homogeneous transform without a general matrix inverse."""
    r = t[:3, :3]
    inv = np.eye(4)
    inv[:3, :3] = r.T
    inv[:3, 3] = -r.T @ t[:3, 3]
    return inv


def transform_point(t: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Apply a homogeneous transform to a 3-D point."""
    return t[:3, :3] @ np.asarray(point, dtype=float) + t[:3, 3]


def mdh_transform(a: float, alpha: float, d: float, theta: float) -> np.ndarray:
    """Modified Denavit-Hartenberg (Craig) transform from frame i-1 to frame i.

    ``T = Rx(alpha) Tx(a) Rz(theta) Tz(d)`` with the parameters attached to
    the *preceding* link, which is the convention Franka publishes for the
    Panda arm.
    """
    ct, st = np.cos(theta), np.sin(theta)
    ca, sa = np.cos(alpha), np.sin(alpha)
    return np.array(
        [
            [ct, -st, 0.0, a],
            [st * ca, ct * ca, -sa, -d * sa],
            [st * sa, ct * sa, ca, d * ca],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )


def spatial_transform(rotation: np.ndarray, translation: np.ndarray) -> np.ndarray:
    """Spatial motion transform ``X`` mapping motion vectors between frames.

    Given the pose of frame B expressed in frame A (``rotation``,
    ``translation``), the returned 6x6 matrix maps spatial motion vectors
    from A coordinates to B coordinates (Featherstone's ``X = [R 0; -R p^ R]``
    with vectors ordered ``[angular; linear]``).
    """
    r = np.asarray(rotation, dtype=float)
    x = np.zeros((6, 6))
    x[:3, :3] = r.T
    x[3:, 3:] = r.T
    x[3:, :3] = -r.T @ skew(translation)
    return x


def spatial_inertia(mass: float, com: np.ndarray, inertia_com: np.ndarray) -> np.ndarray:
    """Spatial inertia of a rigid body about its link frame origin.

    ``mass`` is the link mass, ``com`` the centre of mass in the link frame
    and ``inertia_com`` the 3x3 rotational inertia about the centre of mass.
    The result acts on ``[angular; linear]`` motion vectors.
    """
    c = skew(com)
    inertia = np.zeros((6, 6))
    inertia[:3, :3] = np.asarray(inertia_com, dtype=float) + mass * (c @ c.T)
    inertia[:3, 3:] = mass * c
    inertia[3:, :3] = mass * c.T
    inertia[3:, 3:] = mass * np.eye(3)
    return inertia


def crm(v: np.ndarray) -> np.ndarray:
    """Spatial cross-product operator for motion vectors (``v x``)."""
    omega, linear = v[:3], v[3:]
    m = np.zeros((6, 6))
    m[:3, :3] = skew(omega)
    m[3:, :3] = skew(linear)
    m[3:, 3:] = skew(omega)
    return m


def crf(v: np.ndarray) -> np.ndarray:
    """Spatial cross-product operator for force vectors (``v x*``)."""
    return -crm(v).T


def rotation_error(desired: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Orientation error as a world-frame rotation vector.

    Returns the rotation vector ``log(R_d R^T)``: the angular displacement
    that takes the actual orientation to the desired one, expressed in the
    world frame.  This is the standard error signal for task-space control.
    """
    return so3_log(np.asarray(desired) @ np.asarray(actual).T)
