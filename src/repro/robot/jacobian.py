"""Geometric Jacobian of the end-effector and its directional derivative.

The Jacobian maps joint velocities to the end-effector spatial velocity
``[v; omega]`` (linear on top, angular below) expressed in the world frame.
This is one of the five key computing blocks of the TS-CTC control law that
the Corki accelerator implements (paper Fig. 6).

The public functions are the N=1 case of the lane-batched kernels in
:mod:`repro.robot.batched`; the ``*_reference`` twins keep the frozen
scalar formulations those kernels are differential-tested against bitwise.
"""

from __future__ import annotations

import numpy as np

from repro.robot.batched import geometric_jacobian_lanes, jacobian_dot_qd_lanes
from repro.robot.kinematics import link_transforms
from repro.robot.model import RobotModel

__all__ = [
    "geometric_jacobian",
    "geometric_jacobian_reference",
    "jacobian_dot_qd",
    "jacobian_dot_qd_reference",
    "end_effector_velocity",
]


def geometric_jacobian(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """The 6xN world-frame geometric Jacobian at the end-effector."""
    return geometric_jacobian_lanes(model, np.asarray(q, dtype=float)[None])[0]


def geometric_jacobian_reference(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Frozen scalar Jacobian construction (one column per joint)."""
    transforms = link_transforms(model, q)
    p_ee = (transforms[-1] @ model.flange)[:3, 3]
    jac = np.zeros((6, model.dof))
    # Joint i rotates link i about the z axis of link frame i.  The frame
    # origin itself is placed by the *preceding* joints, so the axis point for
    # column i is the origin of frame i.
    for i, t in enumerate(transforms):
        z_axis = t[:3, 2]
        origin = t[:3, 3]
        jac[:3, i] = np.cross(z_axis, p_ee - origin)
        jac[3:, i] = z_axis
    return jac


def jacobian_dot_qd(
    model: RobotModel, q: np.ndarray, qd: np.ndarray, step: float = 1e-6
) -> np.ndarray:
    """The bias acceleration ``Jdot(q, qd) @ qd`` of the end-effector.

    Computed as the directional derivative of the Jacobian along the current
    joint velocity using a central difference, which avoids carrying the full
    rank-3 Jacobian derivative tensor: ``Jdot @ qd = d/ds J(q + s qd)|_0 @ qd``.
    """
    q = np.asarray(q, dtype=float)
    qd = np.asarray(qd, dtype=float)
    return jacobian_dot_qd_lanes(model, q[None], qd[None], step)[0]


def jacobian_dot_qd_reference(
    model: RobotModel, q: np.ndarray, qd: np.ndarray, step: float = 1e-6
) -> np.ndarray:
    """Frozen scalar central-difference ``Jdot @ qd`` (early-out at rest)."""
    qd = np.asarray(qd, dtype=float)
    speed = float(np.linalg.norm(qd))
    if speed < 1e-12:
        return np.zeros(6)
    direction = qd / speed
    j_plus = geometric_jacobian_reference(model, q + step * direction)
    j_minus = geometric_jacobian_reference(model, q - step * direction)
    jdot = (j_plus - j_minus) / (2.0 * step) * speed
    return jdot @ qd


def end_effector_velocity(model: RobotModel, q: np.ndarray, qd: np.ndarray) -> np.ndarray:
    """World-frame end-effector twist ``[v; omega]`` for joint velocities ``qd``."""
    return geometric_jacobian(model, q) @ np.asarray(qd, dtype=float)
