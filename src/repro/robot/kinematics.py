"""Forward kinematics for serial-chain robot models."""

from __future__ import annotations

import numpy as np

from repro.robot.model import RobotModel
from repro.robot.spatial import matrix_to_rpy, mdh_transform

__all__ = ["link_transforms", "forward_kinematics", "end_effector_pose"]


def link_transforms(model: RobotModel, q: np.ndarray) -> list[np.ndarray]:
    """World-frame homogeneous transforms of every link frame.

    Returns one 4x4 transform per joint, base to tip.  The end-effector
    frame is *not* included; use :func:`forward_kinematics` for it.
    """
    q = np.asarray(q, dtype=float)
    if q.shape != (model.dof,):
        raise ValueError(f"expected configuration of shape ({model.dof},), got {q.shape}")
    transforms = []
    current = np.eye(4)
    for link, angle in zip(model.links, q):
        current = current @ mdh_transform(link.a, link.alpha, link.d, angle + link.theta_offset)
        transforms.append(current)
    return transforms


def forward_kinematics(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """World-frame pose of the end-effector (tool) frame as a 4x4 transform."""
    return link_transforms(model, q)[-1] @ model.flange


def end_effector_pose(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """End-effector pose as a 6-vector ``[x, y, z, roll, pitch, yaw]``.

    This is the representation the CALVIN-style action space and the Corki
    trajectories use for the first six degrees of freedom.
    """
    t = forward_kinematics(model, q)
    return np.concatenate([t[:3, 3], matrix_to_rpy(t[:3, :3])])
