"""Rigid-body dynamics: RNEA, CRBA, and the task-space quantities of TS-CTC.

These are the four computationally heavy blocks the Corki accelerator is
built around (paper Fig. 6 and Fig. 7): forward kinematics, the Jacobian,
the task-space mass matrix ``M_x(theta)`` and the task-space bias force
``h_x(theta, theta_dot)``.  The implementations follow Featherstone's
spatial-vector formulation so that the per-link pose/velocity/acceleration/
force structure the accelerator pipelines (Sec. 4.2) is explicit in the code.
"""

from __future__ import annotations

import numpy as np

from repro.robot.batched import mass_matrix_lanes, rnea_lanes
from repro.robot.jacobian import geometric_jacobian, jacobian_dot_qd
from repro.robot.model import RobotModel
from repro.robot.spatial import (
    crf,
    crm,
    mdh_transform,
    spatial_inertia,
    spatial_transform,
)

__all__ = [
    "joint_spatial_quantities",
    "rnea",
    "rnea_reference",
    "bias_forces",
    "gravity_forces",
    "mass_matrix",
    "mass_matrix_reference",
    "forward_dynamics",
    "task_space_mass_matrix",
    "task_space_bias_force",
    "operational_space_quantities",
]

# Revolute joint about the link-frame z axis, in [angular; linear] coordinates.
_REVOLUTE_AXIS = np.array([0.0, 0.0, 1.0, 0.0, 0.0, 0.0])


def joint_spatial_quantities(
    model: RobotModel, q: np.ndarray
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-joint spatial transforms and inertias for the current configuration.

    Returns ``(xup, inertias)`` where ``xup[i]`` maps spatial motion vectors
    from the parent link frame into link i's frame and ``inertias[i]`` is the
    link's spatial inertia about its own frame.  Shared by RNEA and CRBA --
    this is exactly the intermediate-result reuse the accelerator exploits.
    """
    q = np.asarray(q, dtype=float)
    xup, inertias = [], []
    for link, angle in zip(model.links, q):
        t = mdh_transform(link.a, link.alpha, link.d, angle + link.theta_offset)
        xup.append(spatial_transform(t[:3, :3], t[:3, 3]))
        inertias.append(spatial_inertia(link.mass, link.com, link.inertia_com))
    return xup, inertias


def rnea(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    qdd: np.ndarray,
    gravity: np.ndarray | None = None,
) -> np.ndarray:
    """Inverse dynamics via the recursive Newton-Euler algorithm.

    Returns the joint torques that realise accelerations ``qdd`` at state
    ``(q, qd)``.  Gravity defaults to the model's gravity vector; pass a zero
    vector to compute pure inertial/Coriolis torques.

    The N=1 case of :func:`repro.robot.batched.rnea_lanes`; the recursion
    itself lives there, and :func:`rnea_reference` keeps the frozen scalar
    formulation the batched kernel is tested against bitwise.
    """
    q = np.asarray(q, dtype=float)
    qd = np.asarray(qd, dtype=float)
    qdd = np.asarray(qdd, dtype=float)
    return rnea_lanes(model, q[None], qd[None], qdd[None], gravity)[0]


def rnea_reference(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    qdd: np.ndarray,
    gravity: np.ndarray | None = None,
) -> np.ndarray:
    """Frozen scalar RNEA: the per-joint loop exactly as the paper derives it.

    Kept verbatim as the differential-test reference for
    :func:`repro.robot.batched.rnea_lanes` (and, transitively, for
    :func:`rnea`, which delegates to the batched kernel).
    """
    qd = np.asarray(qd, dtype=float)
    qdd = np.asarray(qdd, dtype=float)
    if gravity is None:
        gravity = model.gravity
    xup, inertias = joint_spatial_quantities(model, q)

    n = model.dof
    velocities = [np.zeros(6)] * n
    accelerations = [np.zeros(6)] * n
    forces = [np.zeros(6)] * n
    # The classic trick: a fictitious upward base acceleration -g makes
    # gravity fall out of the recursion for free.
    a_base = np.concatenate([np.zeros(3), -np.asarray(gravity, dtype=float)])

    for i in range(n):
        vj = _REVOLUTE_AXIS * qd[i]
        if i == 0:
            velocities[i] = vj
            accelerations[i] = xup[i] @ a_base + _REVOLUTE_AXIS * qdd[i]
        else:
            velocities[i] = xup[i] @ velocities[i - 1] + vj
            accelerations[i] = (
                xup[i] @ accelerations[i - 1]
                + _REVOLUTE_AXIS * qdd[i]
                + crm(velocities[i]) @ vj
            )
        forces[i] = inertias[i] @ accelerations[i] + crf(velocities[i]) @ (
            inertias[i] @ velocities[i]
        )

    tau = np.zeros(n)
    for i in range(n - 1, -1, -1):
        tau[i] = _REVOLUTE_AXIS @ forces[i]
        if i > 0:
            forces[i - 1] = forces[i - 1] + xup[i].T @ forces[i]
    return tau


def bias_forces(model: RobotModel, q: np.ndarray, qd: np.ndarray) -> np.ndarray:
    """Coriolis, centrifugal and gravity torques ``h(q, qd)``."""
    return rnea(model, q, qd, np.zeros(model.dof))


def gravity_forces(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Gravity torques ``g(q)``."""
    zeros = np.zeros(model.dof)
    return rnea(model, q, zeros, zeros)


def mass_matrix(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Joint-space mass matrix ``M(q)`` via the composite rigid body algorithm.

    The N=1 case of :func:`repro.robot.batched.mass_matrix_lanes`;
    :func:`mass_matrix_reference` keeps the frozen scalar CRBA.
    """
    return mass_matrix_lanes(model, np.asarray(q, dtype=float)[None])[0]


def mass_matrix_reference(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Frozen scalar CRBA, the differential-test reference for
    :func:`repro.robot.batched.mass_matrix_lanes`."""
    xup, inertias = joint_spatial_quantities(model, q)
    n = model.dof
    composite = [inertia.copy() for inertia in inertias]
    for i in range(n - 1, 0, -1):
        composite[i - 1] += xup[i].T @ composite[i] @ xup[i]

    m = np.zeros((n, n))
    for i in range(n):
        force = composite[i] @ _REVOLUTE_AXIS
        m[i, i] = _REVOLUTE_AXIS @ force
        j = i
        while j > 0:
            force = xup[j].T @ force
            j -= 1
            m[i, j] = m[j, i] = _REVOLUTE_AXIS @ force
    return m


def forward_dynamics(
    model: RobotModel, q: np.ndarray, qd: np.ndarray, tau: np.ndarray
) -> np.ndarray:
    """Joint accelerations produced by torques ``tau`` at state ``(q, qd)``."""
    m = mass_matrix(model, q)
    h = bias_forces(model, q, qd)
    return np.linalg.solve(m, np.asarray(tau, dtype=float) - h)


def task_space_mass_matrix(
    m: np.ndarray, jac: np.ndarray, damping: float = 1e-6
) -> np.ndarray:
    """Task-space (operational-space) mass matrix ``M_x = (J M^-1 J^T)^-1``.

    A small Tikhonov damping keeps the inverse well conditioned near
    kinematic singularities, where ``J M^-1 J^T`` loses rank.
    """
    m_inv_jt = np.linalg.solve(m, jac.T)
    core = jac @ m_inv_jt
    return np.linalg.inv(core + damping * np.eye(core.shape[0]))


def task_space_bias_force(
    m: np.ndarray,
    jac: np.ndarray,
    h: np.ndarray,
    jdot_qd: np.ndarray,
    lambda_x: np.ndarray,
) -> np.ndarray:
    """Task-space bias force ``h_x = M_x (J M^-1 h - Jdot qd)``.

    With ``tau = J^T F`` the task-space dynamics read
    ``xdd = J M^-1 J^T F - J M^-1 h + Jdot qd``; solving for the force that
    realises a desired ``xdd`` yields this bias term (paper Fig. 6).
    """
    return lambda_x @ (jac @ np.linalg.solve(m, h) - jdot_qd)


def operational_space_quantities(
    model: RobotModel, q: np.ndarray, qd: np.ndarray
) -> dict[str, np.ndarray]:
    """All task-space quantities TS-CTC needs, computed with full data reuse.

    This is the software mirror of the accelerator's datapath: forward
    kinematics feeds the Jacobian, which feeds the task-space mass matrix,
    which feeds the bias force (paper Fig. 7).  Returns a dict with keys
    ``jacobian``, ``mass_matrix``, ``bias``, ``lambda_x``, ``h_x``,
    ``jdot_qd``.
    """
    jac = geometric_jacobian(model, q)
    m = mass_matrix(model, q)
    h = bias_forces(model, q, qd)
    jdot_qd = jacobian_dot_qd(model, q, qd)
    lambda_x = task_space_mass_matrix(m, jac)
    h_x = task_space_bias_force(m, jac, h, jdot_qd, lambda_x)
    return {
        "jacobian": jac,
        "mass_matrix": m,
        "bias": h,
        "lambda_x": lambda_x,
        "h_x": h_x,
        "jdot_qd": jdot_qd,
    }
