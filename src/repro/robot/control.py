"""Task-space computed torque control (TS-CTC), the paper's Eq. 6.

``tau = J^T(theta) [ M_x(theta) (xdd_d + Kp e + Kv edot) + h_x(theta, theta_dot) ]``

The reference input is a task-space trajectory sample (pose, velocity,
acceleration); the feedback input is the measured joint state.  The same
computation runs on three substrates in this repository: this plain numpy
implementation (the robot's CPU), the accelerator functional model, and the
accelerator's approximate-computing mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.robot.batched import (
    _matvec,
    operational_space_quantities_lanes,
    pose_error_lanes,
)
from repro.robot.dynamics import operational_space_quantities
from repro.robot.jacobian import geometric_jacobian
from repro.robot.kinematics import forward_kinematics
from repro.robot.model import RobotModel
from repro.robot.spatial import rotation_error, rpy_to_matrix

__all__ = ["TaskSpaceReference", "ControlGains", "TaskSpaceComputedTorqueController"]


@dataclass(frozen=True)
class TaskSpaceReference:
    """One sample of the reference trajectory in task space.

    ``pose`` is ``[x, y, z, roll, pitch, yaw]``; ``velocity`` and
    ``acceleration`` are 6-vectors ``[v; omega_rate]`` where the rotational
    part is the RPY rate treated as a world angular velocity (valid for the
    small per-step rotations the CALVIN action space produces).
    """

    pose: np.ndarray
    velocity: np.ndarray
    acceleration: np.ndarray


@dataclass(frozen=True)
class ControlGains:
    """Diagonal task-space PD gains.

    Defaults are tuned for the Panda at a 100 Hz control rate: critically
    damped (``kv = 2 sqrt(kp)``) with stiffer translation than rotation.
    """

    kp: np.ndarray = field(
        default_factory=lambda: np.array([400.0, 400.0, 400.0, 100.0, 100.0, 100.0])
    )
    kv: np.ndarray = field(
        default_factory=lambda: np.array([40.0, 40.0, 40.0, 20.0, 20.0, 20.0])
    )
    nullspace_damping: float = 2.0


class TaskSpaceComputedTorqueController:
    """The TS-CTC control law of paper Fig. 6.

    Each call to :meth:`torque` performs one control cycle: it computes the
    five key blocks (forward kinematics, Jacobian, task-space mass matrix,
    task-space bias force, joint torque) and returns motor torques.  The
    redundant seventh degree of freedom is damped in the Jacobian nullspace,
    which keeps internal motion bounded without disturbing the task.
    """

    def __init__(self, model: RobotModel, gains: ControlGains | None = None):
        self.model = model
        self.gains = gains or ControlGains()

    def pose_error(self, reference_pose: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Task-space error ``e = x_d - x`` with a proper SO(3) orientation error."""
        actual = forward_kinematics(self.model, q)
        position_error = np.asarray(reference_pose[:3]) - actual[:3, 3]
        desired_rotation = rpy_to_matrix(reference_pose[3:])
        orientation_error = rotation_error(desired_rotation, actual[:3, :3])
        return np.concatenate([position_error, orientation_error])

    def torque(
        self,
        reference: TaskSpaceReference,
        q: np.ndarray,
        qd: np.ndarray,
        quantities: dict[str, np.ndarray] | None = None,
    ) -> np.ndarray:
        """One TS-CTC cycle: reference sample + measured state -> joint torques.

        ``quantities`` optionally supplies precomputed operational-space
        terms (as returned by
        :func:`repro.robot.dynamics.operational_space_quantities`); the
        accelerator model uses this hook to substitute approximate values.
        """
        if quantities is None:
            quantities = operational_space_quantities(self.model, q, qd)
        jac = quantities["jacobian"]
        lambda_x = quantities["lambda_x"]
        h_x = quantities["h_x"]

        error = self.pose_error(reference.pose, q)
        velocity_error = np.asarray(reference.velocity) - jac @ np.asarray(qd)
        command = (
            np.asarray(reference.acceleration)
            + self.gains.kp * error
            + self.gains.kv * velocity_error
        )
        force = lambda_x @ command + h_x
        tau = jac.T @ force

        # Nullspace damping: project joint damping through (I - J^T Jbar^T).
        jbar_t = lambda_x @ jac @ np.linalg.inv(quantities["mass_matrix"])
        nullspace = np.eye(self.model.dof) - jac.T @ jbar_t
        tau = tau - nullspace @ (self.gains.nullspace_damping * np.asarray(qd))
        return self.model.clamp_torque(tau)

    def torque_lanes(
        self,
        reference_poses: np.ndarray,
        reference_velocities: np.ndarray,
        reference_accelerations: np.ndarray,
        q: np.ndarray,
        qd: np.ndarray,
        quantities: dict[str, np.ndarray] | None = None,
    ) -> np.ndarray:
        """One TS-CTC cycle for N lanes at once; returns ``(N, dof)`` torques.

        The lane-batched twin of :meth:`torque`: every input carries a
        leading lane axis, ``quantities`` (when supplied, e.g. by the
        accelerator's lane model) holds stacked operational-space terms, and
        the arithmetic mirrors the scalar method operation for operation so
        each lane's torques are bitwise those of the scalar call.
        """
        q = np.asarray(q, dtype=float)
        qd = np.asarray(qd, dtype=float)
        if quantities is None:
            quantities = operational_space_quantities_lanes(self.model, q, qd)
        jac = quantities["jacobian"]
        jac_t = np.transpose(jac, (0, 2, 1))
        lambda_x = quantities["lambda_x"]
        h_x = quantities["h_x"]

        error = pose_error_lanes(self.model, q, reference_poses)
        velocity_error = np.asarray(reference_velocities, dtype=float) - _matvec(jac, qd)
        command = (
            np.asarray(reference_accelerations, dtype=float)
            + self.gains.kp * error
            + self.gains.kv * velocity_error
        )
        force = _matvec(lambda_x, command) + h_x
        tau = _matvec(jac_t, force)

        jbar_t = lambda_x @ jac @ np.linalg.inv(quantities["mass_matrix"])
        nullspace = np.eye(self.model.dof) - jac_t @ jbar_t
        tau = tau - _matvec(nullspace, self.gains.nullspace_damping * qd)
        return self.model.clamp_torque(tau)

    def tracking_twist(self, q: np.ndarray, qd: np.ndarray) -> np.ndarray:
        """Measured end-effector twist, convenience for logging and tests."""
        return geometric_jacobian(self.model, q) @ np.asarray(qd)
