"""Joint-state integration for closed-loop dynamics simulation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.robot.dynamics import forward_dynamics
from repro.robot.model import RobotModel

__all__ = ["JointState", "semi_implicit_euler_step", "simulate_torque_steps"]


@dataclass
class JointState:
    """Joint positions and velocities of the arm."""

    q: np.ndarray
    qd: np.ndarray

    def copy(self) -> "JointState":
        return JointState(self.q.copy(), self.qd.copy())


def semi_implicit_euler_step(
    model: RobotModel, state: JointState, tau: np.ndarray, dt: float
) -> JointState:
    """Advance the arm one time step under torques ``tau``.

    Semi-implicit (symplectic) Euler: velocities are updated first and the
    new velocity advances the positions, which is stable for stiff PD-style
    torque controllers at modest step sizes.  Velocities are clamped to the
    actuator limits and positions to the joint limits (hard stops absorb the
    impact by zeroing the offending velocity component).
    """
    qdd = forward_dynamics(model, state.q, state.qd, tau)
    qd_next = np.clip(state.qd + dt * qdd, -model.qd_limit, model.qd_limit)
    q_next = state.q + dt * qd_next
    below = q_next < model.q_lower
    above = q_next > model.q_upper
    if below.any() or above.any():
        q_next = model.clamp_configuration(q_next)
        qd_next = np.where(below | above, 0.0, qd_next)
    return JointState(q_next, qd_next)


def simulate_torque_steps(
    model: RobotModel,
    state: JointState,
    torque_fn,
    dt: float,
    steps: int,
) -> list[JointState]:
    """Roll the dynamics forward, querying ``torque_fn(state, k)`` each step.

    Returns the list of visited states (length ``steps + 1``, including the
    initial state).
    """
    trajectory = [state.copy()]
    current = state.copy()
    for k in range(steps):
        tau = torque_fn(current, k)
        current = semi_implicit_euler_step(model, current, tau, dt)
        trajectory.append(current.copy())
    return trajectory
