"""Inverse kinematics: damped least squares with a nullspace posture task.

The Corki pipeline itself never solves IK (TS-CTC consumes task-space
references directly), but a joint-space view of a predicted trajectory is
needed whenever the arm substrate replaces the frame-level environment --
e.g. the dynamics-tier examples and the trajectory-to-joint-space utilities.
The solver is the standard Levenberg-Marquardt-damped Jacobian iteration
with joint-limit clamping and a secondary posture objective projected into
the Jacobian nullspace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.robot.jacobian import geometric_jacobian
from repro.robot.kinematics import forward_kinematics
from repro.robot.model import RobotModel
from repro.robot.spatial import rotation_error, rpy_to_matrix

__all__ = ["IkResult", "ik_step", "solve_ik", "trajectory_to_joint_path"]


@dataclass(frozen=True)
class IkResult:
    """Outcome of an IK solve."""

    q: np.ndarray
    converged: bool
    iterations: int
    position_error: float
    orientation_error: float


def _pose_error(model: RobotModel, q: np.ndarray, target_pose: np.ndarray) -> np.ndarray:
    current = forward_kinematics(model, q)
    position_error = target_pose[:3] - current[:3, 3]
    orientation_error = rotation_error(rpy_to_matrix(target_pose[3:]), current[:3, :3])
    return np.concatenate([position_error, orientation_error])


def ik_step(
    model: RobotModel,
    q: np.ndarray,
    target_pose: np.ndarray,
    damping: float = 1e-3,
    step_scale: float = 0.8,
    posture_weight: float = 0.05,
) -> np.ndarray:
    """One damped-least-squares IK update toward ``target_pose``.

    The iteration body of :func:`solve_ik`, exposed as the scalar reference
    for :func:`repro.robot.batched.ik_step_lanes`: Jacobian-transpose step
    through the damped gram matrix, posture pull through the nullspace
    projector, then a joint-limit clamp.
    """
    error = _pose_error(model, q, target_pose)
    jac = geometric_jacobian(model, q)
    gram = jac @ jac.T + damping**2 * np.eye(6)
    dq_task = jac.T @ np.linalg.solve(gram, error)
    # Nullspace posture task toward home keeps the elbow from drifting.
    pseudo_inverse = jac.T @ np.linalg.inv(gram)
    nullspace = np.eye(model.dof) - pseudo_inverse @ jac
    dq_posture = posture_weight * (model.q_home - q)
    return model.clamp_configuration(q + step_scale * dq_task + nullspace @ dq_posture)


def solve_ik(
    model: RobotModel,
    target_pose: np.ndarray,
    q_initial: np.ndarray | None = None,
    position_tolerance: float = 1e-4,
    orientation_tolerance: float = 1e-3,
    max_iterations: int = 200,
    damping: float = 1e-3,
    step_scale: float = 0.8,
    posture_weight: float = 0.05,
) -> IkResult:
    """Solve for joint angles reaching ``target_pose`` (``[xyz, rpy]``).

    Damped least squares: ``dq = J^T (J J^T + lambda^2 I)^-1 e``, with a
    posture task pulling toward the home configuration through the nullspace
    projector ``(I - J^+ J)`` -- the standard way to keep the redundant
    seventh degree of freedom well conditioned.  Joint limits are enforced by
    clamping each iterate.
    """
    q = (model.q_home if q_initial is None else np.asarray(q_initial, dtype=float)).copy()
    target_pose = np.asarray(target_pose, dtype=float)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        error = _pose_error(model, q, target_pose)
        position_error = float(np.linalg.norm(error[:3]))
        orientation_error = float(np.linalg.norm(error[3:]))
        if position_error < position_tolerance and orientation_error < orientation_tolerance:
            return IkResult(q, True, iterations, position_error, orientation_error)
        q = ik_step(model, q, target_pose, damping, step_scale, posture_weight)

    error = _pose_error(model, q, target_pose)
    return IkResult(
        q,
        converged=False,
        iterations=iterations,
        position_error=float(np.linalg.norm(error[:3])),
        orientation_error=float(np.linalg.norm(error[3:])),
    )


def trajectory_to_joint_path(
    model: RobotModel,
    poses: np.ndarray,
    q_initial: np.ndarray | None = None,
) -> tuple[np.ndarray, bool]:
    """Convert a dense task-space pose path into a joint-space path.

    Each pose seeds the next solve with the previous solution, so the path
    stays on one IK branch.  Returns ``(joint_path, all_converged)``.
    """
    poses = np.asarray(poses, dtype=float)
    q = model.q_home if q_initial is None else np.asarray(q_initial, dtype=float)
    path = np.zeros((len(poses), model.dof))
    all_converged = True
    for index, pose in enumerate(poses):
        result = solve_ik(model, pose, q_initial=q)
        q = result.q
        path[index] = q
        all_converged = all_converged and result.converged
    return path, all_converged
