"""Lane-batched spatial algebra and rigid-body dynamics.

Every kernel here evaluates N independent robot states ("lanes") as stacked
``(N, ...)`` arithmetic: homogeneous transforms become ``(N, 4, 4)``,
spatial transforms ``(N, 6, 6)``, and the RNEA/CRBA recursions run their
per-joint loops once while BLAS sweeps all lanes per step.  This is the
architecture-half counterpart of the fleet physics in
:func:`repro.sim.scene.step_lanes`: the per-episode control/dynamics math
the Corki accelerator models, lifted onto the fleet path.

Equivalence contract: each batched kernel is **bitwise** equal, lane for
lane, to its frozen scalar reference (``rnea_reference``,
``mass_matrix_reference``, ``geometric_jacobian_reference``, ...) -- not
merely close.  The kernels only use operations verified to reduce in the
same order as their scalar counterparts: stacked ``matmul`` against a
``(N, k, 1)`` column equals the scalar matvec, stacked ``solve``/``inv``
equal their per-slice calls, and elementwise ops are order-free.  Scalar
entry points in :mod:`repro.robot.dynamics` and
:mod:`repro.robot.jacobian` are the N=1 case of these kernels;
``tests/test_batched_equivalence.py`` holds both facts down across fleet
sizes.

Branchy 3x3 trigonometry (``so3_log``, ``matrix_to_rpy``) stays scalar and
is applied per lane: the branches depend on the data, the matrices are
tiny, and reusing the scalar code is what keeps the contract bitwise.
"""

from __future__ import annotations

import numpy as np

from repro.robot.model import RobotModel
from repro.robot.spatial import rotation_error, rpy_to_matrix, spatial_inertia

__all__ = [
    "crf_lanes",
    "crm_lanes",
    "forward_kinematics_lanes",
    "geometric_jacobian_lanes",
    "ik_step_lanes",
    "jacobian_dot_qd_lanes",
    "joint_spatial_quantities_lanes",
    "link_transforms_lanes",
    "mass_matrix_lanes",
    "mdh_transform_lanes",
    "pose_error_lanes",
    "rnea_lanes",
    "bias_forces_lanes",
    "gravity_forces_lanes",
    "semi_implicit_euler_step_lanes",
    "skew_lanes",
    "spatial_transform_lanes",
    "task_space_bias_force_lanes",
    "task_space_mass_matrix_lanes",
    "operational_space_quantities_lanes",
]

# Revolute joint about the link-frame z axis (duplicated from
# repro.robot.dynamics, which imports this module).
_REVOLUTE_AXIS = np.array([0.0, 0.0, 1.0, 0.0, 0.0, 0.0])


def _matvec(mats: np.ndarray, vecs: np.ndarray) -> np.ndarray:
    """Stacked matrix-vector product, bitwise equal to per-lane ``A @ v``."""
    return (mats @ vecs[..., None])[..., 0]


def _lane_configs(model: RobotModel, q: np.ndarray) -> np.ndarray:
    q = np.asarray(q, dtype=float)
    if q.ndim != 2 or q.shape[1] != model.dof:
        raise ValueError(
            f"expected configurations of shape (lanes, {model.dof}), got {q.shape}"
        )
    return q


# -- spatial primitives over lanes ---------------------------------------------


def skew_lanes(vectors: np.ndarray) -> np.ndarray:
    """Stacked :func:`repro.robot.spatial.skew`: ``(N, 3) -> (N, 3, 3)``."""
    v = np.asarray(vectors, dtype=float)
    m = np.zeros((len(v), 3, 3))
    m[:, 0, 1] = -v[:, 2]
    m[:, 0, 2] = v[:, 1]
    m[:, 1, 0] = v[:, 2]
    m[:, 1, 2] = -v[:, 0]
    m[:, 2, 0] = -v[:, 1]
    m[:, 2, 1] = v[:, 0]
    return m


def mdh_transform_lanes(a: float, alpha: float, d: float, theta: np.ndarray) -> np.ndarray:
    """Stacked modified-DH transforms for one joint across lanes.

    ``a``/``alpha``/``d`` are the joint's constants; ``theta`` carries one
    joint angle per lane.  Mirrors
    :func:`repro.robot.spatial.mdh_transform` element for element.
    """
    theta = np.asarray(theta, dtype=float)
    ct, st = np.cos(theta), np.sin(theta)
    ca, sa = np.cos(alpha), np.sin(alpha)
    t = np.zeros((len(theta), 4, 4))
    t[:, 0, 0] = ct
    t[:, 0, 1] = -st
    t[:, 0, 3] = a
    t[:, 1, 0] = st * ca
    t[:, 1, 1] = ct * ca
    t[:, 1, 2] = -sa
    t[:, 1, 3] = -d * sa
    t[:, 2, 0] = st * sa
    t[:, 2, 1] = ct * sa
    t[:, 2, 2] = ca
    t[:, 2, 3] = d * ca
    t[:, 3, 3] = 1.0
    return t


def spatial_transform_lanes(rotation: np.ndarray, translation: np.ndarray) -> np.ndarray:
    """Stacked spatial motion transforms ``X = [R^T 0; -R^T p^ R^T]``."""
    rt = np.transpose(np.asarray(rotation, dtype=float), (0, 2, 1))
    x = np.zeros((len(rt), 6, 6))
    x[:, :3, :3] = rt
    x[:, 3:, 3:] = rt
    x[:, 3:, :3] = (-rt) @ skew_lanes(translation)
    return x


def crm_lanes(v: np.ndarray) -> np.ndarray:
    """Stacked motion cross-product operators ``v x``: ``(N, 6) -> (N, 6, 6)``."""
    v = np.asarray(v, dtype=float)
    m = np.zeros((len(v), 6, 6))
    m[:, :3, :3] = skew_lanes(v[:, :3])
    m[:, 3:, :3] = skew_lanes(v[:, 3:])
    m[:, 3:, 3:] = skew_lanes(v[:, :3])
    return m


def crf_lanes(v: np.ndarray) -> np.ndarray:
    """Stacked force cross-product operators ``v x*`` (``-crm(v).T``)."""
    return -np.transpose(crm_lanes(v), (0, 2, 1))


# -- kinematics over lanes -----------------------------------------------------


def link_transforms_lanes(model: RobotModel, q: np.ndarray) -> list[np.ndarray]:
    """World-frame link transforms for every lane: one ``(N, 4, 4)`` per joint."""
    q = _lane_configs(model, q)
    transforms = []
    current = np.tile(np.eye(4), (len(q), 1, 1))
    for i, link in enumerate(model.links):
        step = mdh_transform_lanes(link.a, link.alpha, link.d, q[:, i] + link.theta_offset)
        current = current @ step
        transforms.append(current)
    return transforms


def forward_kinematics_lanes(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Stacked end-effector poses ``(N, 4, 4)``."""
    return link_transforms_lanes(model, q)[-1] @ model.flange


def geometric_jacobian_lanes(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Stacked world-frame geometric Jacobians ``(N, 6, dof)``."""
    q = _lane_configs(model, q)
    transforms = link_transforms_lanes(model, q)
    p_ee = (transforms[-1] @ model.flange)[:, :3, 3]
    jac = np.zeros((len(q), 6, model.dof))
    for i, t in enumerate(transforms):
        z_axis = t[:, :3, 2]
        origin = t[:, :3, 3]
        jac[:, :3, i] = np.cross(z_axis, p_ee - origin)
        jac[:, 3:, i] = z_axis
    return jac


def jacobian_dot_qd_lanes(
    model: RobotModel, q: np.ndarray, qd: np.ndarray, step: float = 1e-6
) -> np.ndarray:
    """Stacked bias accelerations ``Jdot(q, qd) @ qd``: ``(N, 6)``.

    The per-lane speeds come from the same 1-D ``np.linalg.norm`` call the
    scalar reference makes (the axis-reduced norm sums in a different order
    and is not bitwise identical); lanes at rest short-circuit to zero
    exactly like the scalar early return.
    """
    q = _lane_configs(model, q)
    qd = np.asarray(qd, dtype=float)
    speeds = np.array([float(np.linalg.norm(row)) for row in qd])
    moving = speeds >= 1e-12
    if not moving.any():
        return np.zeros((len(q), 6))
    safe = np.where(moving, speeds, 1.0)
    direction = qd / safe[:, None]
    j_plus = geometric_jacobian_lanes(model, q + step * direction)
    j_minus = geometric_jacobian_lanes(model, q - step * direction)
    jdot = (j_plus - j_minus) / (2.0 * step) * safe[:, None, None]
    out = _matvec(jdot, qd)
    out[~moving] = 0.0
    return out


# -- dynamics over lanes -------------------------------------------------------


def joint_spatial_quantities_lanes(
    model: RobotModel, q: np.ndarray
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-joint ``(N, 6, 6)`` parent-to-link transforms plus link inertias.

    The inertias are configuration independent, so one ``(6, 6)`` per joint
    is shared across lanes (matmul broadcasts it).
    """
    q = _lane_configs(model, q)
    xup, inertias = [], []
    for i, link in enumerate(model.links):
        t = mdh_transform_lanes(link.a, link.alpha, link.d, q[:, i] + link.theta_offset)
        xup.append(spatial_transform_lanes(t[:, :3, :3], t[:, :3, 3]))
        inertias.append(spatial_inertia(link.mass, link.com, link.inertia_com))
    return xup, inertias


def rnea_lanes(
    model: RobotModel,
    q: np.ndarray,
    qd: np.ndarray,
    qdd: np.ndarray,
    gravity: np.ndarray | None = None,
) -> np.ndarray:
    """Stacked recursive Newton-Euler: joint torques ``(N, dof)``."""
    q = _lane_configs(model, q)
    qd = np.asarray(qd, dtype=float)
    qdd = np.asarray(qdd, dtype=float)
    if gravity is None:
        gravity = model.gravity
    xup, inertias = joint_spatial_quantities_lanes(model, q)
    lanes, n = q.shape
    a_base = np.broadcast_to(
        np.concatenate([np.zeros(3), -np.asarray(gravity, dtype=float)]), (lanes, 6)
    )
    velocities: list[np.ndarray] = [np.zeros((lanes, 6))] * n
    forces: list[np.ndarray] = [np.zeros((lanes, 6))] * n
    acceleration = np.zeros((lanes, 6))
    for i in range(n):
        vj = _REVOLUTE_AXIS[None, :] * qd[:, i, None]
        if i == 0:
            velocities[0] = vj
            acceleration = _matvec(xup[0], a_base) + _REVOLUTE_AXIS[None, :] * qdd[:, 0, None]
        else:
            velocities[i] = _matvec(xup[i], velocities[i - 1]) + vj
            acceleration = (
                _matvec(xup[i], acceleration)
                + _REVOLUTE_AXIS[None, :] * qdd[:, i, None]
                + _matvec(crm_lanes(velocities[i]), vj)
            )
        forces[i] = _matvec(inertias[i], acceleration) + _matvec(
            crf_lanes(velocities[i]), _matvec(inertias[i], velocities[i])
        )
    tau = np.zeros((lanes, n))
    for i in range(n - 1, -1, -1):
        tau[:, i] = forces[i] @ _REVOLUTE_AXIS
        if i > 0:
            forces[i - 1] = forces[i - 1] + _matvec(
                np.transpose(xup[i], (0, 2, 1)), forces[i]
            )
    return tau


def bias_forces_lanes(model: RobotModel, q: np.ndarray, qd: np.ndarray) -> np.ndarray:
    """Stacked Coriolis/centrifugal/gravity torques ``h(q, qd)``."""
    q = _lane_configs(model, q)
    return rnea_lanes(model, q, qd, np.zeros_like(q))


def gravity_forces_lanes(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Stacked gravity torques ``g(q)``."""
    q = _lane_configs(model, q)
    zeros = np.zeros_like(q)
    return rnea_lanes(model, q, zeros, zeros)


def mass_matrix_lanes(model: RobotModel, q: np.ndarray) -> np.ndarray:
    """Stacked joint-space mass matrices ``(N, dof, dof)`` via CRBA."""
    q = _lane_configs(model, q)
    xup, inertias = joint_spatial_quantities_lanes(model, q)
    lanes, n = q.shape
    composite = [np.repeat(inertia[None], lanes, axis=0) for inertia in inertias]
    for i in range(n - 1, 0, -1):
        composite[i - 1] = composite[i - 1] + np.transpose(xup[i], (0, 2, 1)) @ composite[i] @ xup[i]

    m = np.zeros((lanes, n, n))
    for i in range(n):
        force = _matvec(composite[i], np.broadcast_to(_REVOLUTE_AXIS, (lanes, 6)))
        m[:, i, i] = force @ _REVOLUTE_AXIS
        j = i
        while j > 0:
            force = _matvec(np.transpose(xup[j], (0, 2, 1)), force)
            j -= 1
            m[:, i, j] = m[:, j, i] = force @ _REVOLUTE_AXIS
    return m


def task_space_mass_matrix_lanes(
    m: np.ndarray, jac: np.ndarray, damping: float = 1e-6
) -> np.ndarray:
    """Stacked task-space mass matrices ``M_x = (J M^-1 J^T)^-1``: ``(N, 6, 6)``."""
    m_inv_jt = np.linalg.solve(m, np.transpose(jac, (0, 2, 1)))
    core = jac @ m_inv_jt
    return np.linalg.inv(core + damping * np.eye(core.shape[-1]))


def task_space_bias_force_lanes(
    m: np.ndarray,
    jac: np.ndarray,
    h: np.ndarray,
    jdot_qd: np.ndarray,
    lambda_x: np.ndarray,
) -> np.ndarray:
    """Stacked task-space bias forces ``h_x = M_x (J M^-1 h - Jdot qd)``: ``(N, 6)``."""
    return _matvec(lambda_x, _matvec(jac, np.linalg.solve(m, h[:, :, None])[:, :, 0]) - jdot_qd)


def operational_space_quantities_lanes(
    model: RobotModel, q: np.ndarray, qd: np.ndarray
) -> dict[str, np.ndarray]:
    """Stacked operational-space quantities for TS-CTC, one per lane.

    Mirrors :func:`repro.robot.dynamics.operational_space_quantities` key
    for key, with every value carrying a leading lane axis.
    """
    jac = geometric_jacobian_lanes(model, q)
    m = mass_matrix_lanes(model, q)
    h = bias_forces_lanes(model, q, qd)
    jdot_qd = jacobian_dot_qd_lanes(model, q, qd)
    lambda_x = task_space_mass_matrix_lanes(m, jac)
    h_x = task_space_bias_force_lanes(m, jac, h, jdot_qd, lambda_x)
    return {
        "jacobian": jac,
        "mass_matrix": m,
        "bias": h,
        "lambda_x": lambda_x,
        "h_x": h_x,
        "jdot_qd": jdot_qd,
    }


def semi_implicit_euler_step_lanes(
    model: RobotModel, q: np.ndarray, qd: np.ndarray, tau: np.ndarray, dt: float
) -> tuple[np.ndarray, np.ndarray]:
    """Advance every lane one symplectic-Euler step; returns ``(q, qd)``.

    Mirrors :func:`repro.robot.integrators.semi_implicit_euler_step`: the
    joint-limit clamp is the identity on lanes inside their limits, so the
    stacked clamp equals the scalar per-lane conditional bit for bit.
    """
    q = _lane_configs(model, q)
    qd = np.asarray(qd, dtype=float)
    m = mass_matrix_lanes(model, q)
    h = bias_forces_lanes(model, q, qd)
    rhs = np.asarray(tau, dtype=float) - h
    qdd = np.linalg.solve(m, rhs[:, :, None])[:, :, 0]
    qd_next = np.clip(qd + dt * qdd, -model.qd_limit, model.qd_limit)
    q_next = q + dt * qd_next
    below = q_next < model.q_lower
    above = q_next > model.q_upper
    if below.any() or above.any():
        q_next = model.clamp_configuration(q_next)
        qd_next = np.where(below | above, 0.0, qd_next)
    return q_next, qd_next


# -- inverse kinematics over lanes ---------------------------------------------


def pose_error_lanes(model: RobotModel, q: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Stacked 6-D pose errors against ``[xyz, rpy]`` targets: ``(N, 6)``.

    Positions vectorise; the rotation logarithm is branchy 3x3 work and
    runs per lane through the scalar :func:`repro.robot.spatial.rotation_error`.
    """
    q = _lane_configs(model, q)
    targets = np.asarray(targets, dtype=float)
    current = forward_kinematics_lanes(model, q)
    errors = np.zeros((len(q), 6))
    errors[:, :3] = targets[:, :3] - current[:, :3, 3]
    for k in range(len(q)):
        errors[k, 3:] = rotation_error(rpy_to_matrix(targets[k, 3:]), current[k, :3, :3])
    return errors


def ik_step_lanes(
    model: RobotModel,
    q: np.ndarray,
    targets: np.ndarray,
    damping: float = 1e-3,
    step_scale: float = 0.8,
    posture_weight: float = 0.05,
) -> np.ndarray:
    """One damped-least-squares IK update for every lane: ``(N, dof)``.

    The batched counterpart of :func:`repro.robot.ik.ik_step`, mirroring
    its operation order exactly (gram solve, nullspace posture pull,
    joint-limit clamp).
    """
    q = _lane_configs(model, q)
    error = pose_error_lanes(model, q, targets)
    jac = geometric_jacobian_lanes(model, q)
    jac_t = np.transpose(jac, (0, 2, 1))
    gram = jac @ jac_t + damping**2 * np.eye(6)
    dq_task = _matvec(jac_t, np.linalg.solve(gram, error[:, :, None])[:, :, 0])
    pseudo_inverse = jac_t @ np.linalg.inv(gram)
    nullspace = np.eye(model.dof) - pseudo_inverse @ jac
    dq_posture = posture_weight * (model.q_home - q)
    return model.clamp_configuration(q + step_scale * dq_task + _matvec(nullspace, dq_posture))
