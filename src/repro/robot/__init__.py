"""Robot-arm substrate: kinematics, dynamics, and task-space control.

Public surface of the subpackage; everything the rest of the library (and
downstream users) need from the robot model is re-exported here.
"""

from repro.robot.batched import (
    bias_forces_lanes,
    forward_kinematics_lanes,
    geometric_jacobian_lanes,
    gravity_forces_lanes,
    ik_step_lanes,
    jacobian_dot_qd_lanes,
    link_transforms_lanes,
    mass_matrix_lanes,
    operational_space_quantities_lanes,
    pose_error_lanes,
    rnea_lanes,
    semi_implicit_euler_step_lanes,
    task_space_bias_force_lanes,
    task_space_mass_matrix_lanes,
)
from repro.robot.control import (
    ControlGains,
    TaskSpaceComputedTorqueController,
    TaskSpaceReference,
)
from repro.robot.dynamics import (
    bias_forces,
    forward_dynamics,
    gravity_forces,
    mass_matrix,
    mass_matrix_reference,
    operational_space_quantities,
    rnea,
    rnea_reference,
    task_space_bias_force,
    task_space_mass_matrix,
)
from repro.robot.ik import IkResult, ik_step, solve_ik, trajectory_to_joint_path
from repro.robot.integrators import JointState, semi_implicit_euler_step, simulate_torque_steps
from repro.robot.jacobian import (
    end_effector_velocity,
    geometric_jacobian,
    geometric_jacobian_reference,
    jacobian_dot_qd,
    jacobian_dot_qd_reference,
)
from repro.robot.kinematics import end_effector_pose, forward_kinematics, link_transforms
from repro.robot.model import LinkParameters, RobotModel, panda, two_link_planar

__all__ = [
    "ControlGains",
    "IkResult",
    "JointState",
    "LinkParameters",
    "RobotModel",
    "TaskSpaceComputedTorqueController",
    "TaskSpaceReference",
    "bias_forces",
    "bias_forces_lanes",
    "end_effector_pose",
    "end_effector_velocity",
    "forward_dynamics",
    "forward_kinematics",
    "forward_kinematics_lanes",
    "geometric_jacobian",
    "geometric_jacobian_lanes",
    "geometric_jacobian_reference",
    "gravity_forces",
    "gravity_forces_lanes",
    "ik_step",
    "ik_step_lanes",
    "jacobian_dot_qd",
    "jacobian_dot_qd_lanes",
    "jacobian_dot_qd_reference",
    "link_transforms",
    "link_transforms_lanes",
    "mass_matrix",
    "mass_matrix_lanes",
    "mass_matrix_reference",
    "operational_space_quantities",
    "operational_space_quantities_lanes",
    "panda",
    "pose_error_lanes",
    "rnea",
    "rnea_lanes",
    "rnea_reference",
    "semi_implicit_euler_step",
    "semi_implicit_euler_step_lanes",
    "simulate_torque_steps",
    "solve_ik",
    "task_space_bias_force",
    "task_space_bias_force_lanes",
    "task_space_mass_matrix",
    "task_space_mass_matrix_lanes",
    "trajectory_to_joint_path",
    "two_link_planar",
]
