"""Robot-arm substrate: kinematics, dynamics, and task-space control.

Public surface of the subpackage; everything the rest of the library (and
downstream users) need from the robot model is re-exported here.
"""

from repro.robot.control import (
    ControlGains,
    TaskSpaceComputedTorqueController,
    TaskSpaceReference,
)
from repro.robot.dynamics import (
    bias_forces,
    forward_dynamics,
    gravity_forces,
    mass_matrix,
    operational_space_quantities,
    rnea,
    task_space_bias_force,
    task_space_mass_matrix,
)
from repro.robot.ik import IkResult, solve_ik, trajectory_to_joint_path
from repro.robot.integrators import JointState, semi_implicit_euler_step, simulate_torque_steps
from repro.robot.jacobian import end_effector_velocity, geometric_jacobian, jacobian_dot_qd
from repro.robot.kinematics import end_effector_pose, forward_kinematics, link_transforms
from repro.robot.model import LinkParameters, RobotModel, panda, two_link_planar

__all__ = [
    "ControlGains",
    "IkResult",
    "JointState",
    "LinkParameters",
    "RobotModel",
    "TaskSpaceComputedTorqueController",
    "TaskSpaceReference",
    "bias_forces",
    "end_effector_pose",
    "end_effector_velocity",
    "forward_dynamics",
    "forward_kinematics",
    "geometric_jacobian",
    "gravity_forces",
    "jacobian_dot_qd",
    "link_transforms",
    "mass_matrix",
    "operational_space_quantities",
    "panda",
    "rnea",
    "semi_implicit_euler_step",
    "simulate_torque_steps",
    "solve_ik",
    "task_space_bias_force",
    "task_space_mass_matrix",
    "trajectory_to_joint_path",
    "two_link_planar",
]
