"""Smoke tests for `examples/`: docs-adjacent code must not rot.

Every example script runs end to end in a subprocess at
``REPRO_EXAMPLE_SCALE=smoke`` (the scripts' few-seconds scale: fewer
demos/epochs, small heads).  A non-zero exit -- an import drifting from the
public API, an assertion inside a walkthrough failing -- fails the suite.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def test_every_example_is_covered():
    assert EXAMPLES, "examples/ directory is missing or empty"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    env = {
        **os.environ,
        "REPRO_EXAMPLE_SCALE": "smoke",
        "PYTHONPATH": str(REPO / "src"),
        "OMP_NUM_THREADS": "1",
        "OPENBLAS_NUM_THREADS": "1",
    }
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=REPO,
    )
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
