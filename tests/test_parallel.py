"""Tests for multi-process sharded fleet evaluation (`repro.analysis.parallel`).

The headline property: sharding an evaluation across OS processes changes
*no byte* of its output -- per-lane randomness is keyed on the global lane
index, policies round-trip through npz exactly, and traces merge in lane
order.  Asserted here at three levels: raw traces, the per-family matrix,
and the formatted Tbl. 1 report the CLI prints.

Also covers the satellite bugfixes that share this seam: the re-keyed
``(seed, lane)`` RNG streams (adjacent seeds used to collide bit-for-bit)
and Corki-SW's list aliasing in ``evaluate_all_systems``.
"""

import dataclasses

import numpy as np
import pytest

import repro.analysis.evaluation as evaluation
from repro.analysis.evaluation import (
    SystemEvaluation,
    TrainedPolicies,
    evaluate_all_systems,
    evaluate_system,
    evaluate_system_families,
    expert_oracle_families,
    lane_generators,
)
from repro.analysis.metrics import job_statistics
from repro.analysis.parallel import (
    archive_policies,
    restore_policies,
    run_sharded,
    shard_lanes,
    shutdown_pools,
)
from repro.sim.tasks import TASK_FAMILIES, Task
from repro.sim.world import SEEN_LAYOUT


@pytest.fixture(scope="module")
def trained(tiny_policies):
    """One TrainedPolicies object per module, so the worker-pool cache
    (keyed on policy identity) spawns each pool exactly once."""
    baseline, corki, _ = tiny_policies
    return TrainedPolicies(baseline, corki, demos_per_task=3, epochs=1)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_pools()


def assert_traces_equal(a, b):
    assert a.success == b.success
    assert a.frames == b.frames
    assert a.executed_steps == b.executed_steps
    assert np.array_equal(a.ee_path, b.ee_path)
    assert np.array_equal(a.reference_path, b.reference_path)
    assert np.array_equal(a.gripper_path, b.gripper_path)


class TestShardLanes:
    def test_partition_covers_lane_space(self):
        ranges = shard_lanes(10, 4)
        assert ranges == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_workers_than_lanes_drops_empty_ranges(self):
        assert shard_lanes(2, 4) == [(0, 1), (1, 2)]

    def test_single_worker(self):
        assert shard_lanes(5, 1) == [(0, 5)]


class TestPolicyArchive:
    def test_roundtrip_is_bitwise(self, trained):
        restored = restore_policies(archive_policies(trained))
        observation = np.linspace(-1.0, 1.0, trained.baseline.observation_dim)
        original = trained.corki.encode_frame_token(observation, 3)
        roundtripped = restored.corki.encode_frame_token(observation, 3)
        assert np.array_equal(original, roundtripped)
        assert np.array_equal(
            trained.baseline.normalizer.scale, restored.baseline.normalizer.scale
        )
        assert restored.demos_per_task == trained.demos_per_task


class TestShardedEvaluation:
    def test_traces_byte_identical_across_workers(self, trained):
        sequential = evaluate_system(
            trained, "corki-5", SEEN_LAYOUT, jobs=5, seed=11, workers=1
        )
        sharded = evaluate_system(
            trained, "corki-5", SEEN_LAYOUT, jobs=5, seed=11, workers=2
        )
        assert sharded.completed_counts == sequential.completed_counts
        assert np.array_equal(
            sharded.job_stats.success_at, sequential.job_stats.success_at
        )
        assert sharded.job_stats.average_length == sequential.job_stats.average_length
        assert len(sharded.traces) == len(sequential.traces)
        for a, b in zip(sequential.traces, sharded.traces):
            assert_traces_equal(a, b)

    def test_more_workers_than_lanes(self, trained):
        sequential = evaluate_system(
            trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=5, workers=1
        )
        sharded = evaluate_system(
            trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=5, workers=4
        )
        assert sharded.completed_counts == sequential.completed_counts
        for a, b in zip(sequential.traces, sharded.traces):
            assert_traces_equal(a, b)

    def test_family_matrix_identical_across_workers(self, trained):
        sequential = evaluate_system_families(
            trained, "roboflamingo", SEEN_LAYOUT, episodes_per_task=1, workers=1
        )
        sharded = evaluate_system_families(
            trained, "roboflamingo", SEEN_LAYOUT, episodes_per_task=1, workers=2
        )
        assert set(sharded) == set(TASK_FAMILIES)
        assert sharded == sequential

    @staticmethod
    def _crash_sharded(trained):
        """Dispatch a chunk whose instruction cannot resolve in a worker."""
        ghost = Task(
            instruction="summon a task nobody registered",
            family="ghost",
            prepare=lambda scene, rng: None,
            success=lambda before, after: False,
            expert=lambda scene: [],
        )
        run_sharded(
            trained, "roboflamingo", SEEN_LAYOUT, seed=1,
            lane_jobs=[[ghost], [ghost]], fleet_size=32, workers=2,
        )

    def test_worker_crash_surfaces_an_error(self, trained):
        """A chunk whose instruction cannot resolve raises instead of
        silently dropping its lanes."""
        with pytest.raises(KeyError, match="unknown instruction"):
            self._crash_sharded(trained)

    def test_zero_lanes_yields_empty_result_without_spawning(self, trained):
        """Matches the in-process path: no lanes -> no traces, no pool."""
        assert run_sharded(
            trained, "roboflamingo", SEEN_LAYOUT, seed=1,
            lane_jobs=[], fleet_size=32, workers=2,
        ) == []

    def test_pool_survives_a_failed_chunk(self, trained):
        """After a chunk failure the cached pool still serves good chunks."""
        with pytest.raises(KeyError):
            self._crash_sharded(trained)
        sequential = evaluate_system(
            trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=5, workers=1
        )
        sharded = evaluate_system(
            trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=5, workers=2
        )
        assert sharded.completed_counts == sequential.completed_counts


class TestShardedOracle:
    def test_oracle_matrix_identical_across_workers(self):
        sequential = expert_oracle_families(
            SEEN_LAYOUT, episodes_per_task=1, workers=1
        )
        sharded = expert_oracle_families(SEEN_LAYOUT, episodes_per_task=1, workers=2)
        assert sharded == sequential
        for cell in sharded.values():
            assert cell.success_rate == 1.0


class TestTbl1ByteIdentity:
    def test_report_byte_identical_across_workers(self, trained, monkeypatch):
        """The acceptance criterion: `--workers 4 tbl1` == `--workers 1`.

        Exercised at reduced scale through the same code path the CLI runs
        (shared context -> evaluate_all_systems -> formatted table), with
        the profile's trained policies swapped for the tiny test pair.
        """
        from repro.experiments.accuracy_tables import accuracy_table
        from repro.experiments.context import ExperimentContext
        from repro.experiments.profiles import QUICK

        monkeypatch.setattr(ExperimentContext, "policies", lambda self: trained)
        base = dataclasses.replace(QUICK, jobs=3)
        report_1 = accuracy_table("seen", dataclasses.replace(base, workers=1))
        report_4 = accuracy_table("seen", dataclasses.replace(base, workers=4))
        assert report_1 == report_4


class TestSeedStreamKeying:
    def test_lane_streams_disjoint_within_a_seed(self):
        env_rng, feedback_rng = lane_generators(1234, 7)
        assert not np.array_equal(
            env_rng.random(16), feedback_rng.random(16)
        )

    def test_adjacent_seeds_do_not_share_streams(self):
        """Regression: `[seed + 1, lane]` / `[seed + 2, lane]` keying made
        seed S's feedback stream identical to seed S+1's env stream."""
        for seed in (0, 1234, 9999):
            for lane in (0, 3):
                _, feedback_here = lane_generators(seed, lane)
                env_next, _ = lane_generators(seed + 1, lane)
                assert not np.array_equal(
                    feedback_here.random(16), env_next.random(16)
                )

    def test_adjacent_seeds_produce_distinct_episodes(self, trained):
        """Behavioral form of the regression: evaluations one seed apart
        must not share scene randomness."""
        here = evaluate_system(trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=21)
        there = evaluate_system(trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=22)
        assert any(
            a.ee_path.shape != b.ee_path.shape or not np.array_equal(a.ee_path, b.ee_path)
            for a, b in zip(here.traces, there.traces)
        )


class TestCorkiSwCopies:
    def test_corki_sw_lists_are_independent(self, monkeypatch):
        """Regression: corki-sw aliased corki-5's trace/count *list objects*,
        so mutating one silently corrupted the other."""

        def fake_evaluate_system(policies, system, layout, jobs, seed=1234, **kwargs):
            return SystemEvaluation(
                name=system,
                job_stats=job_statistics([2], 5),
                traces=[f"trace-of-{system}"],
                completed_counts=[2],
            )

        monkeypatch.setattr(evaluation, "evaluate_system", fake_evaluate_system)
        results = evaluate_all_systems(None, SEEN_LAYOUT, jobs=1)
        corki5, corki_sw = results["corki-5"], results["corki-sw"]
        assert corki_sw.traces == corki5.traces
        assert corki_sw.completed_counts == corki5.completed_counts
        assert corki_sw.traces is not corki5.traces
        assert corki_sw.completed_counts is not corki5.completed_counts
        corki_sw.traces.append("mutation")
        corki_sw.completed_counts.append(0)
        assert corki5.traces == ["trace-of-corki-5"]
        assert corki5.completed_counts == [2]
