"""Golden-trace regression tests for the figure experiments (13, 14, 15).

The fixtures under ``tests/data/`` freeze the **scalar-reference** outputs
of each figure's workload -- every float serialised with ``float.hex()`` so
the comparison is exact down to the last bit, not "close enough".  Two
things are pinned per figure:

* the scalar path still produces the frozen bytes (the keyed jitter streams
  and the frozen reference executors have not drifted), and
* the lane-batched path reproduces the same bytes byte-for-byte.

Regenerate after an *intentional* modelling change with::

    PYTHONPATH=src python tests/test_golden_figures.py
"""

import json
from pathlib import Path

import numpy as np

from repro.analysis.calibration import threshold_sweep
from repro.experiments.fig13_latency_energy import system_lanes
from repro.experiments.fig14_frame_analysis import frame_lanes
from repro.pipeline import simulate_baseline, simulate_corki, simulate_lanes

DATA_DIR = Path(__file__).parent / "data"

# Frozen stand-in for Corki-ADAP's measured execution lengths: the golden
# workload must not depend on policy training, only on the pipeline model.
ADAP_STEPS = [5, 3, 7, 5, 4, 6, 5, 5, 9, 1, 2, 5]
FIG13_FRAMES = 60
FIG15_KWARGS = dict(thresholds=[0.0, 0.4], trajectories=1)


def hex_list(values) -> list[str]:
    return [float(v).hex() for v in np.asarray(values, dtype=float)]


def unhex(values) -> np.ndarray:
    return np.array([float.fromhex(v) for v in values])


def scalar_trace(lane):
    if lane.frames is not None:
        return simulate_baseline(lane.frames, stages=lane.stages, rng=lane.rng, name=lane.name)
    return simulate_corki(
        list(lane.executed_steps), stages=lane.stages, rng=lane.rng, name=lane.name
    )


def scalar_figure(lanes) -> dict:
    golden = {}
    for lane in lanes:
        trace = scalar_trace(lane)
        golden[lane.name] = {
            "latencies_ms": hex_list(trace.latencies_ms()),
            "energies_j": hex_list(trace.energies_j()),
        }
    return golden


def compute_goldens() -> dict[str, dict]:
    fig15 = threshold_sweep(batched=False, **FIG15_KWARGS)
    return {
        "fig13": scalar_figure(system_lanes(FIG13_FRAMES, ADAP_STEPS)),
        "fig14": scalar_figure(frame_lanes(ADAP_STEPS)),
        "fig15": {
            "points": [
                {
                    "threshold": point.threshold.hex(),
                    "speedup": point.speedup.hex(),
                    "trajectory_error_cm": point.trajectory_error_cm.hex(),
                    "skip_rate": point.skip_rate.hex(),
                }
                for point in fig15
            ]
        },
    }


def load_golden(name: str) -> dict:
    with open(DATA_DIR / f"golden_{name}.json") as handle:
        return json.load(handle)


def assert_matches_golden(golden: dict, traces: dict) -> None:
    assert set(traces) == set(golden)
    for name, expected in golden.items():
        assert (traces[name].latencies_ms() == unhex(expected["latencies_ms"])).all(), name
        assert (traces[name].energies_j() == unhex(expected["energies_j"])).all(), name


class TestFig13Golden:
    def test_scalar_path_matches_golden(self):
        golden = load_golden("fig13")
        traces = {lane.name: scalar_trace(lane) for lane in system_lanes(FIG13_FRAMES, ADAP_STEPS)}
        assert_matches_golden(golden, traces)

    def test_batched_path_matches_golden(self):
        golden = load_golden("fig13")
        views = simulate_lanes(system_lanes(FIG13_FRAMES, ADAP_STEPS))
        assert_matches_golden(golden, {view.name: view for view in views})


class TestFig14Golden:
    def test_scalar_path_matches_golden(self):
        golden = load_golden("fig14")
        traces = {lane.name: scalar_trace(lane) for lane in frame_lanes(ADAP_STEPS)}
        assert_matches_golden(golden, traces)

    def test_batched_path_matches_golden(self):
        golden = load_golden("fig14")
        views = simulate_lanes(frame_lanes(ADAP_STEPS))
        assert_matches_golden(golden, {view.name: view for view in views})


class TestFig15Golden:
    def assert_points_match(self, points):
        golden = load_golden("fig15")["points"]
        assert len(points) == len(golden)
        for point, expected in zip(points, golden):
            for field, frozen in expected.items():
                assert getattr(point, field) == float.fromhex(frozen), field

    def test_scalar_sweep_matches_golden(self):
        self.assert_points_match(threshold_sweep(batched=False, **FIG15_KWARGS))

    def test_batched_sweep_matches_golden(self):
        self.assert_points_match(threshold_sweep(**FIG15_KWARGS))


if __name__ == "__main__":
    DATA_DIR.mkdir(exist_ok=True)
    for name, golden in compute_goldens().items():
        path = DATA_DIR / f"golden_{name}.json"
        path.write_text(json.dumps(golden, indent=1) + "\n")
        print(f"wrote {path}")
