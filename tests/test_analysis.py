"""Tests for metrics, calibration and report formatting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    format_series,
    format_table,
    job_statistics,
    max_trajectory_distance,
    paper_vs_measured,
    sample_trajectory,
    track_trajectory,
    trajectory_metrics,
    trajectory_rmse,
)
from repro.robot import panda


class TestJobStatistics:
    def test_success_at_k(self):
        stats = job_statistics([5, 3, 0, 2, 5])
        assert stats.success_at[0] == pytest.approx(0.8)  # >= 1 task
        assert stats.success_at[4] == pytest.approx(0.4)  # all 5 tasks
        assert stats.average_length == pytest.approx(3.0)
        assert stats.jobs == 5

    def test_success_at_is_monotone_decreasing(self):
        stats = job_statistics([1, 2, 3, 4, 5, 0, 2])
        assert all(a >= b for a, b in zip(stats.success_at, stats.success_at[1:]))

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            job_statistics([])
        with pytest.raises(ValueError):
            job_statistics([6])

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_average_consistent_with_success_at(self, counts):
        """avg length equals the sum over k of P(completed >= k)."""
        stats = job_statistics(counts)
        assert stats.average_length == pytest.approx(stats.success_at.sum())


class TestTrajectoryMetrics:
    def test_rmse_zero_for_identical(self):
        path = np.random.default_rng(0).normal(size=(20, 6))
        assert trajectory_rmse(path, path) == 0.0

    def test_rmse_known_offset(self):
        reference = np.zeros((10, 6))
        executed = reference.copy()
        executed[:, 0] = 0.03
        assert trajectory_rmse(executed, reference) == pytest.approx(0.03)

    def test_max_distance_per_dimension(self):
        reference = np.zeros((10, 6))
        executed = reference.copy()
        executed[4, 1] = -0.05
        assert np.allclose(max_trajectory_distance(executed, reference), [0.0, 0.05, 0.0])

    def test_length_mismatch_uses_common_prefix(self):
        reference = np.zeros((10, 6))
        executed = np.zeros((6, 6))
        executed[:, 2] = 0.01
        assert trajectory_rmse(executed, reference) == pytest.approx(0.01)

    def test_batch_aggregation(self):
        reference = [np.zeros((5, 6)), np.zeros((5, 6))]
        executed = [np.zeros((5, 6)), np.zeros((5, 6))]
        executed[1][:, 0] = 0.02
        stats = trajectory_metrics(executed, reference)
        assert stats.mean_rmse == pytest.approx(0.01)

    def test_validates_batch(self):
        with pytest.raises(ValueError):
            trajectory_metrics([], [])


class TestCalibration:
    def test_sample_trajectory_scale(self):
        model = panda()
        trajectory = sample_trajectory(model, np.random.default_rng(0))
        total = np.linalg.norm(trajectory.pose(trajectory.duration)[:3] - trajectory.origin[:3])
        assert 0.02 < total < 0.15  # centimetre-scale per-step motion

    def test_tracking_reports_fields(self):
        model = panda()
        trajectory = sample_trajectory(model, np.random.default_rng(1))
        report = track_trajectory(model, trajectory, control_hz=100, physics_hz=300)
        assert report.rmse_m < 0.05
        assert report.max_error_m >= report.rmse_m
        assert report.skip_rate is None


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        text = format_series("s", [1.0, 2.0], [0.5, 0.25], unit="ms")
        assert "s (ms):" in text
        assert "0.5" in text

    def test_paper_vs_measured(self):
        text = paper_vs_measured([("x", "1.0", "1.1")], title="t")
        assert text.startswith("t")
        assert "measured" in text
