"""Unit and property tests for the spatial-algebra primitives."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.robot.spatial import (
    crf,
    crm,
    matrix_to_rpy,
    mdh_transform,
    rotation_error,
    rotx,
    roty,
    rotz,
    rpy_to_matrix,
    skew,
    so3_exp,
    so3_log,
    spatial_inertia,
    spatial_transform,
    transform,
    transform_inverse,
    transform_point,
    unskew,
)

angles = st.floats(-np.pi, np.pi, allow_nan=False)
small_vectors = arrays(np.float64, 3, elements=st.floats(-2.0, 2.0, width=64))


class TestRotations:
    @given(angles)
    def test_principal_rotations_are_orthonormal(self, angle):
        for rot in (rotx(angle), roty(angle), rotz(angle)):
            assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)
            assert np.isclose(np.linalg.det(rot), 1.0)

    def test_rotz_rotates_x_to_y(self):
        rotated = rotz(np.pi / 2) @ np.array([1.0, 0.0, 0.0])
        assert np.allclose(rotated, [0.0, 1.0, 0.0], atol=1e-12)

    @given(angles, st.floats(-1.4, 1.4), angles)
    def test_rpy_roundtrip(self, roll, pitch, yaw):
        rpy = np.array([roll, pitch, yaw])
        recovered = matrix_to_rpy(rpy_to_matrix(rpy))
        assert np.allclose(rpy_to_matrix(recovered), rpy_to_matrix(rpy), atol=1e-9)

    def test_rpy_singularity_is_total(self):
        rotation = roty(np.pi / 2)
        rpy = matrix_to_rpy(rotation)
        assert np.allclose(rpy_to_matrix(rpy), rotation, atol=1e-9)


class TestSkewAndLog:
    @given(small_vectors, small_vectors)
    def test_skew_is_cross_product(self, a, b):
        assert np.allclose(skew(a) @ b, np.cross(a, b), atol=1e-12)

    @given(small_vectors)
    def test_unskew_inverts_skew(self, vector):
        assert np.allclose(unskew(skew(vector)), vector)

    @given(small_vectors)
    def test_exp_log_roundtrip(self, omega):
        # Keep away from the pi-boundary where the log is multivalued.
        norm = np.linalg.norm(omega)
        if norm > 3.0:
            omega = omega * (3.0 / norm)
        rotation = so3_exp(omega)
        assert np.allclose(so3_exp(so3_log(rotation)), rotation, atol=1e-8)

    def test_log_near_pi(self):
        rotation = rotx(np.pi - 1e-8)
        recovered = so3_exp(so3_log(rotation))
        assert np.allclose(recovered, rotation, atol=1e-6)

    def test_log_identity_is_zero(self):
        assert np.allclose(so3_log(np.eye(3)), np.zeros(3))

    def test_rotation_error_direction(self):
        desired = rotz(0.2)
        actual = np.eye(3)
        error = rotation_error(desired, actual)
        assert np.allclose(error, [0.0, 0.0, 0.2], atol=1e-9)


class TestTransforms:
    @given(angles, small_vectors)
    def test_inverse_composes_to_identity(self, angle, translation):
        t = transform(rotz(angle), translation)
        assert np.allclose(t @ transform_inverse(t), np.eye(4), atol=1e-12)

    @given(angles, small_vectors, small_vectors)
    def test_transform_point_matches_matrix(self, angle, translation, point):
        t = transform(roty(angle), translation)
        homogeneous = t @ np.append(point, 1.0)
        assert np.allclose(transform_point(t, point), homogeneous[:3])

    def test_mdh_zero_parameters_is_identity(self):
        assert np.allclose(mdh_transform(0.0, 0.0, 0.0, 0.0), np.eye(4))

    def test_mdh_pure_rotation(self):
        t = mdh_transform(0.0, 0.0, 0.0, np.pi / 2)
        assert np.allclose(t[:3, :3], rotz(np.pi / 2), atol=1e-12)


class TestSpatialAlgebra:
    @given(angles, small_vectors)
    def test_spatial_transform_preserves_motion(self, angle, translation):
        """X maps twists consistently with the homogeneous adjoint."""
        rotation = rotx(angle)
        x = spatial_transform(rotation, translation)
        # A pure angular velocity about the parent origin maps to an angular
        # velocity plus the induced linear velocity at the child origin.
        omega = np.array([0.1, -0.2, 0.3])
        twist = np.concatenate([omega, np.zeros(3)])
        mapped = x @ twist
        assert np.allclose(mapped[:3], rotation.T @ omega)
        # The child-frame origin sits at ``translation``; a rotation about the
        # parent origin gives it linear velocity omega x p (in child coords).
        assert np.allclose(mapped[3:], rotation.T @ np.cross(omega, translation))

    @given(small_vectors, small_vectors)
    def test_crf_is_negative_crm_transpose(self, a, b):
        v = np.concatenate([a, b])
        assert np.allclose(crf(v), -crm(v).T)

    @given(small_vectors)
    def test_crm_of_self_is_zero(self, omega):
        v = np.concatenate([omega, omega])
        assert np.allclose(crm(v) @ v, np.zeros(6), atol=1e-12)

    def test_spatial_inertia_point_mass(self):
        inertia = spatial_inertia(2.0, np.zeros(3), np.zeros((3, 3)))
        twist = np.array([0.0, 0.0, 0.0, 1.0, 2.0, 3.0])
        momentum = inertia @ twist
        assert np.allclose(momentum[3:], 2.0 * twist[3:])
        assert np.allclose(momentum[:3], np.zeros(3))

    def test_spatial_inertia_symmetric_positive(self):
        inertia = spatial_inertia(1.5, np.array([0.1, -0.2, 0.05]), 0.02 * np.eye(3))
        assert np.allclose(inertia, inertia.T)
        assert np.all(np.linalg.eigvalsh(inertia) > 0)
