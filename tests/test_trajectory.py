"""Tests for the cubic trajectory representation and fitting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import CubicTrajectory, fit_cubic, polynomial_design_matrix
from repro.core.trajectory import pose_batch


def make_trajectory(coefficients=None, steps=9, duration=0.3):
    coefficients = (
        coefficients
        if coefficients is not None
        else np.vstack([np.array([0.0, 0.0, 0.1, 0.0])] + [np.zeros(4)] * 5)
    )
    return CubicTrajectory(
        origin=np.zeros(6),
        coefficients=coefficients,
        duration=duration,
        gripper_open=np.ones(steps, dtype=bool),
    )


class TestEvaluation:
    def test_pose_at_zero_is_origin_plus_constant(self):
        trajectory = make_trajectory()
        assert np.allclose(trajectory.pose(0.0), np.zeros(6))

    def test_linear_trajectory_endpoints(self):
        trajectory = make_trajectory()  # r(tau) = 0.1 tau on x
        assert trajectory.pose(trajectory.duration)[0] == pytest.approx(0.1)
        assert trajectory.pose(trajectory.duration / 2)[0] == pytest.approx(0.05)

    def test_pose_clamps_beyond_duration(self):
        trajectory = make_trajectory()
        assert np.allclose(trajectory.pose(10.0), trajectory.pose(trajectory.duration))

    def test_velocity_of_linear_trajectory(self):
        trajectory = make_trajectory(duration=0.5)
        # dx/dt = 0.1 / 0.5 = 0.2 m/s everywhere
        assert trajectory.velocity(0.1)[0] == pytest.approx(0.2)

    def test_acceleration_of_quadratic(self):
        coefficients = np.vstack([np.array([0.0, 0.2, 0.0, 0.0])] + [np.zeros(4)] * 5)
        trajectory = make_trajectory(coefficients, duration=0.3)
        # d2x/dt2 = 2 * 0.2 / 0.3^2
        assert trajectory.acceleration(0.1)[0] == pytest.approx(2 * 0.2 / 0.09)

    def test_velocity_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        coefficients = rng.normal(size=(6, 4)) * 0.05
        trajectory = make_trajectory(coefficients)
        t, eps = 0.15, 1e-6
        numeric = (trajectory.pose(t + eps) - trajectory.pose(t - eps)) / (2 * eps)
        assert np.allclose(trajectory.velocity(t), numeric, atol=1e-6)

    def test_waypoints_shape_and_spacing(self):
        trajectory = make_trajectory()
        waypoints = trajectory.waypoints()
        assert waypoints.shape == (9, 6)
        # Linear in tau: equally spaced x values.
        assert np.allclose(np.diff(waypoints[:, 0]), 0.1 / 9, atol=1e-12)

    def test_gripper_at_step_clamps(self):
        trajectory = make_trajectory()
        trajectory.gripper_open[-1] = False
        assert trajectory.gripper_at_step(9) is False
        assert trajectory.gripper_at_step(99) is False
        assert trajectory.gripper_at_step(1) is True

    def test_step_dt(self):
        trajectory = make_trajectory(steps=9, duration=0.3)
        assert trajectory.step_dt == pytest.approx(0.3 / 9)


class TestFitting:
    offsets_arrays = arrays(
        np.float64, (9, 3), elements=st.floats(-0.05, 0.05, width=64)
    )

    def test_exact_fit_of_cubic_data(self):
        rng = np.random.default_rng(1)
        true = rng.normal(size=(2, 4)) * 0.1
        true[:, 3] = 0.0  # start at origin
        tau = np.arange(1, 10) / 9
        data = polynomial_design_matrix(tau) @ true.T
        fitted = fit_cubic(data)
        assert np.allclose(fitted, true, atol=1e-9)

    def test_constrained_fit_passes_through_origin(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(9, 6)) * 0.01
        coefficients = fit_cubic(data, constrain_start=True)
        assert np.allclose(coefficients[:, 3], np.zeros(6))

    @given(offsets_arrays)
    def test_fit_smooths_noise(self, offsets):
        """The cubic fit's residual energy never exceeds the data's energy."""
        coefficients = fit_cubic(offsets, constrain_start=False)
        tau = np.arange(1, 10) / 9
        reconstruction = polynomial_design_matrix(tau) @ coefficients.T
        residual = offsets - reconstruction
        assert np.sum(residual**2) <= np.sum(offsets**2) + 1e-12

    def test_fit_denoises_known_line(self):
        """Noise on a linear motion shrinks after cubic fitting (Eq. 5's point)."""
        rng = np.random.default_rng(3)
        tau = np.arange(1, 10) / 9
        clean = np.outer(tau, [0.05, 0.0, 0.0])
        noisy = clean + rng.normal(0.0, 0.004, size=clean.shape)
        coefficients = fit_cubic(noisy)
        reconstruction = polynomial_design_matrix(tau) @ coefficients.T
        noise_before = np.abs(noisy - clean).mean()
        noise_after = np.abs(reconstruction - clean).mean()
        assert noise_after < noise_before


class TestPoseBatch:
    """The fleet runner's batched evaluator must equal per-lane pose()."""

    def _random_trajectories(self, rng, count):
        trajectories = []
        for k in range(count):
            steps = int(rng.integers(3, 12))
            trajectories.append(
                CubicTrajectory(
                    origin=rng.normal(size=6),
                    coefficients=rng.normal(size=(6, 4)),
                    duration=float(rng.uniform(0.1, 0.6)),
                    gripper_open=rng.integers(0, 2, size=steps).astype(bool),
                )
            )
        return trajectories

    def test_bitwise_equal_to_scalar_pose(self, rng):
        for count in (1, 2, 7, 32):
            trajectories = self._random_trajectories(rng, count)
            times = rng.uniform(-0.05, 0.8, size=count)  # includes clamp edges
            batched = pose_batch(trajectories, times)
            scalar = np.stack(
                [t.pose(float(time)) for t, time in zip(trajectories, times)]
            )
            assert np.array_equal(batched, scalar)

    def test_execution_time_grid(self, rng):
        """The exact call pattern of the fleet tick: step * step_dt times."""
        trajectories = self._random_trajectories(rng, 9)
        steps = [int(rng.integers(1, t.steps + 1)) for t in trajectories]
        times = np.array([s * t.step_dt for s, t in zip(steps, trajectories)])
        batched = pose_batch(trajectories, times)
        for k, (trajectory, step) in enumerate(zip(trajectories, steps)):
            assert np.array_equal(batched[k], trajectory.pose(step * trajectory.step_dt))
