"""Tests for the experiment drivers that need no policy training, and the CLI."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS, FULL, QUICK, get_profile
from repro.experiments.ablation_datapath import run as run_ablation
from repro.experiments.fig02_breakdown import run as run_fig2
from repro.experiments.fig09_mass_matrix import run as run_fig9
from repro.experiments.resources_report import run as run_resources


class TestProfiles:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile().name == "quick"

    def test_env_selects_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert get_profile().name == "full"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert get_profile("quick").name == "quick"

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            get_profile("enormous")

    def test_full_is_larger(self):
        assert FULL.jobs > QUICK.jobs


class TestExperimentRegistry:
    def test_all_artifacts_registered(self):
        expected = {
            "fig2", "fig9", "fig11", "fig12", "fig13", "fig14", "fig15",
            "tbl1", "tbl2", "tbl3", "tbl4", "families", "resources",
            "ablation", "ablation-algo", "power",
        }
        assert set(EXPERIMENTS) == expected


class TestTrainingFreeExperiments:
    def test_fig2_report(self):
        report = run_fig2(QUICK)
        assert "Fig. 2" in report
        assert "72.7%" in report  # paper column present

    def test_fig9_report(self):
        report = run_fig9(QUICK)
        assert "joint 2" in report
        assert "shape check" in report

    def test_resources_report(self):
        report = run_resources(QUICK)
        assert "13.6%" in report

    def test_ablation_report(self):
        report = run_ablation(QUICK)
        assert "54.0%" in report and "86.0%" in report

    def test_power_report(self):
        from repro.experiments.discussion_power import run as run_power

        report = run_power(QUICK)
        assert "40.6%" in report
        assert "end-to-end" in report


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "tbl1" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["tbl99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_training_free_experiment(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "resources done" in out
