"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property-based tests fast on the single-core CI budget while still
# exploring a meaningful slice of the input space.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def panda_model():
    from repro.robot import panda

    return panda()


@pytest.fixture(scope="session")
def planar_model():
    from repro.robot import two_link_planar

    return two_link_planar()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_policies():
    """Small policies trained for a couple of epochs; shared by slow tests.

    These are *not* the accuracy-tuned models -- just enough training that
    closed-loop rollouts behave non-trivially.
    """
    import numpy as np

    from repro.core import BaselinePolicy, CorkiPolicy, TrainingConfig, train_baseline, train_corki
    from repro.sim import OBSERVATION_DIM, SEEN_LAYOUT, TASKS, collect_demonstrations

    rng = np.random.default_rng(0)
    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=3)
    baseline = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    corki = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    config = TrainingConfig(epochs=1, batch_size=64)
    train_baseline(baseline, demos, config)
    train_corki(corki, demos, config)
    return baseline, corki, demos
