"""Tests for the micro-controller sequencer and feedback schedules."""

import numpy as np
import pytest

from repro.accelerator import CorkiAccelerator, MicroController, Opcode
from repro.core import (
    MIDPOINT_FEEDBACK,
    NO_FEEDBACK,
    RANDOM_FEEDBACK,
    CubicTrajectory,
    fit_cubic,
    schedule_by_name,
)
from repro.robot import end_effector_pose, panda


@pytest.fixture(scope="module")
def setup():
    model = panda()
    accelerator = CorkiAccelerator(model, threshold=0.4)
    origin = end_effector_pose(model, model.q_home)
    tau = np.arange(1, 10)[:, None] / 9
    offsets = np.concatenate([tau * [0.03, 0.0, 0.0], np.zeros((9, 3))], axis=1)
    trajectory = CubicTrajectory(
        origin=origin,
        coefficients=fit_cubic(offsets),
        duration=0.3,
        gripper_open=np.ones(9, dtype=bool),
    )
    return model, accelerator, trajectory


class TestMicroController:
    def _sensors(self, model):
        def read(t):
            return model.q_home, np.zeros(model.dof)

        return read

    def test_tick_count_matches_rate(self, setup):
        model, accelerator, trajectory = setup
        controller = MicroController(accelerator, control_hz=100.0)
        run = controller.execute(trajectory, self._sensors(model))
        # 0.3 s window at 100 Hz -> 30 ticks.
        assert len(run.torques) == 30
        assert len(run.tick_results) == 30

    def test_truncated_window(self, setup):
        model, accelerator, trajectory = setup
        controller = MicroController(accelerator, control_hz=100.0)
        run = controller.execute(trajectory, self._sensors(model), steps=3)
        assert len(run.torques) == 10  # 3 steps x 33.3 ms at 100 Hz

    def test_rejects_bad_steps(self, setup):
        model, accelerator, trajectory = setup
        controller = MicroController(accelerator)
        with pytest.raises(ValueError):
            controller.execute(trajectory, self._sensors(model), steps=0)
        with pytest.raises(ValueError):
            controller.execute(trajectory, self._sensors(model), steps=10)

    def test_sequencer_overhead_is_small(self, setup):
        """The datapath, not sequencing, must dominate (paper's design goal)."""
        model, accelerator, trajectory = setup
        controller = MicroController(accelerator)
        run = controller.execute(trajectory, self._sensors(model))
        assert run.sequencer_overhead < 0.35
        assert run.datapath_cycles > 0

    def test_instruction_stream_structure(self, setup):
        model, accelerator, trajectory = setup
        controller = MicroController(accelerator, control_hz=100.0)
        run = controller.execute(trajectory, self._sensors(model), steps=1)
        opcodes = [instruction.opcode for instruction in run.instructions]
        assert opcodes[0] == Opcode.LOAD_TRAJECTORY
        assert opcodes.count(Opcode.LAUNCH_DATAPATH) == len(run.torques)
        assert opcodes[-1] == Opcode.BRANCH_NOT_DONE


class TestFeedbackSchedules:
    def test_random_within_window(self, rng):
        for steps in (2, 5, 9):
            step = RANDOM_FEEDBACK.feedback_step(steps, rng)
            assert 1 <= step < steps

    def test_single_step_has_no_feedback(self, rng):
        assert RANDOM_FEEDBACK.feedback_step(1, rng) is None
        assert MIDPOINT_FEEDBACK.feedback_step(1, rng) is None

    def test_none_schedule(self, rng):
        assert NO_FEEDBACK.feedback_step(9, rng) is None

    def test_midpoint_deterministic(self, rng):
        assert MIDPOINT_FEEDBACK.feedback_step(9, rng) == 4
        assert MIDPOINT_FEEDBACK.feedback_step(5, rng) == 2

    def test_lookup(self):
        assert schedule_by_name("random") is RANDOM_FEEDBACK
        with pytest.raises(KeyError):
            schedule_by_name("sometimes")

    def test_open_loop_variation_runs(self, tiny_policies):
        from repro.core.config import CorkiVariation
        from repro.core.runner import run_corki_episode
        from repro.sim import ManipulationEnv, SEEN_LAYOUT, TASKS

        _, corki, _ = tiny_policies
        variation = CorkiVariation("corki-nofb", execute_steps=5, feedback="none")
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(0))
        trace = run_corki_episode(
            env, corki, TASKS[0], variation, np.random.default_rng(1), max_frames=15
        )
        assert trace.frames <= 15
