"""Failure-injection and edge-case tests across the stack."""

import numpy as np

from repro.core import VARIATIONS, run_corki_episode
from repro.core.runner import _TokenWindow
from repro.sim import (
    PERFECT_ACTUATION,
    SEEN_LAYOUT,
    TASKS,
    ActuationModel,
    ManipulationEnv,
    collect_demonstrations,
)


class TestActuationDegradation:
    def test_noise_destroys_expert_success(self):
        """With centimetre-level actuation noise the expert must start failing.

        This is the physical channel through which control quality reaches
        task success -- the basis of the 30 Hz vs 100 Hz comparison.
        """
        clean = collect_demonstrations(
            SEEN_LAYOUT, np.random.default_rng(0), per_task=2, jitter_std=0.0,
            keep_failures=True,
        )
        noisy = collect_demonstrations(
            SEEN_LAYOUT, np.random.default_rng(0), per_task=2, jitter_std=0.02,
            keep_failures=True,
        )
        clean_rate = np.mean([demo.succeeded for demo in clean])
        noisy_rate = np.mean([demo.succeeded for demo in noisy])
        assert clean_rate == 1.0
        assert noisy_rate < clean_rate

    def test_low_tracking_gain_slows_approach(self):
        """A sluggish actuation model covers less ground per frame."""
        results = {}
        for gain in (1.0, 0.5):
            env = ManipulationEnv(
                SEEN_LAYOUT,
                np.random.default_rng(0),
                actuation=ActuationModel("test", tracking_gain=gain, noise_std=0.0),
            )
            env.reset(TASKS[0])
            start = env.scene.ee_pose.copy()
            target = start + np.array([0.1, 0.0, 0.0, 0.0, 0.0, 0.0])
            env.step(target, True)
            results[gain] = env.scene.ee_pose[0] - start[0]
        assert results[0.5] < results[1.0]


class TestGraspBoundaries:
    def _env_with_block_at(self, offset):
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(0), actuation=PERFECT_ACTUATION)
        env.reset(TASKS[0])
        block = env.scene.blocks["red"]
        env.scene.ee_pose = np.array(
            [block.position[0] + offset, block.position[1], 0.03, 0.0, 0.0, 0.0]
        )
        return env

    def test_grasp_inside_radius(self):
        env = self._env_with_block_at(0.03)
        env.step(env.scene.ee_pose, False)
        assert env.scene.attached == "red"

    def test_grasp_outside_radius_fails(self):
        env = self._env_with_block_at(0.06)
        env.step(env.scene.ee_pose, False)
        assert env.scene.attached is None

    def test_grasp_too_high_fails(self):
        env = self._env_with_block_at(0.0)
        env.scene.ee_pose[2] = 0.15
        env.step(env.scene.ee_pose, False)
        assert env.scene.attached is None


class TestTokenWindow:
    def test_feedback_token_enters_window(self, tiny_policies):
        _, corki, _ = tiny_policies
        window = _TokenWindow(corki)
        rng = np.random.default_rng(0)
        observation = rng.normal(size=corki.observation_dim)
        window.add_inference_frame(0, observation, 0)
        window.add_feedback_frame(3, observation)
        assembled = window.assemble(5)
        mask = corki.mask_token()
        # Slot for frame 3 must differ from the mask embedding.
        slot = assembled[-(5 - 3) - 1]
        assert not np.allclose(slot, mask)

    def test_unencoded_slots_are_mask(self, tiny_policies):
        _, corki, _ = tiny_policies
        window = _TokenWindow(corki)
        rng = np.random.default_rng(0)
        window.add_inference_frame(11, rng.normal(size=corki.observation_dim), 0)
        assembled = window.assemble(11)
        mask = corki.mask_token()
        assert np.allclose(assembled[0], mask)  # frame 0 never encoded
        assert not np.allclose(assembled[-1], mask)  # current frame is real

    def test_warmup_padding_uses_first_real_token(self, tiny_policies):
        _, corki, _ = tiny_policies
        window = _TokenWindow(corki)
        rng = np.random.default_rng(0)
        window.add_inference_frame(0, rng.normal(size=corki.observation_dim), 0)
        assembled = window.assemble(0)
        # Negative frames (before episode start) repeat the first real token.
        assert np.allclose(assembled[0], assembled[-1])


class TestRunnerEdgeCases:
    def test_single_frame_budget(self, tiny_policies):
        _, corki, _ = tiny_policies
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(0))
        trace = run_corki_episode(
            env, corki, TASKS[0], VARIATIONS["corki-9"], np.random.default_rng(1),
            max_frames=1,
        )
        assert trace.frames == 1
        assert trace.executed_steps == [1]

    def test_closed_loop_disabled_variation(self, tiny_policies):
        from repro.core.config import CorkiVariation

        _, corki, _ = tiny_policies
        variation = CorkiVariation("corki-open", execute_steps=5, closed_loop=False)
        env = ManipulationEnv(SEEN_LAYOUT, np.random.default_rng(0))
        trace = run_corki_episode(
            env, corki, TASKS[0], variation, np.random.default_rng(1), max_frames=15
        )
        assert trace.frames <= 15
