"""Docs health: links resolve, named CLI subcommands exist.

Docs rot in two characteristic ways: a relative link keeps pointing at a
file that moved, or prose keeps naming a ``repro-experiments`` subcommand
that was renamed.  Both are cheap to machine-check, so CI does (the
``docs`` job runs exactly this module); it is plain pytest so the tier-1
suite catches the same rot locally.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_PROGRAM = re.compile(r"(?:repro-experiments|python -m repro\.cli)\s+([^\n`]*)")

# Flags of the repro-experiments CLI and whether they consume the next token.
_VALUE_FLAGS = {
    "--json", "--episodes", "--layout", "--workers", "--fleet-size",
    "--profile", "--slots", "--cache-dir", "--max-entries", "--demos",
    "--epochs", "--result-cache-dir",
}
_BARE_FLAGS = {"--list", "--save", "--no-cache", "--result-cache"}
_ID_TOKEN = re.compile(r"^[a-z][a-z0-9-]*$")


def _cli_names() -> set[str]:
    from repro.experiments import EXPERIMENTS

    return set(EXPERIMENTS) | {"all", "bench", "suite", "serve", "lint"}


def _subcommand_mentions(text: str, known: set[str]) -> list[str]:
    """Tokens used in subcommand position after a CLI program name."""
    mentions = []
    for match in _PROGRAM.finditer(text):
        tokens = match.group(1).split()
        index = 0
        while index < len(tokens):
            token = tokens[index].rstrip(".,;:`\"')")
            if token in _BARE_FLAGS:
                index += 1
            elif token in _VALUE_FLAGS:
                index += 2
            elif token.startswith("-"):
                index += 1  # unknown flag: be conservative, skip it alone
            elif _ID_TOKEN.match(token):
                mentions.append(token)
                index += 1
            else:
                break  # paths, redirects, prose -- end of the command
    return mentions


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    text = path.read_text()
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken relative links: {broken}"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_named_subcommands_exist(path):
    known = _cli_names()
    unknown = [
        token
        for token in _subcommand_mentions(path.read_text(), known)
        if token not in known
    ]
    assert not unknown, (
        f"{path.name} names CLI subcommands that do not exist: {unknown} "
        f"(known: {sorted(known)})"
    )


def test_checker_catches_a_broken_command():
    """The subcommand scanner must actually flag nonsense, or the doc tests
    are vacuous."""
    known = _cli_names()
    assert _subcommand_mentions("run `repro-experiments tbl99` now", known) == ["tbl99"]
    assert _subcommand_mentions(
        "repro-experiments --fleet-size 64 tbl1", known
    ) == ["tbl1"]
    assert _subcommand_mentions(
        "repro-experiments suite --episodes 1 --layout seen --workers 2", known
    ) == ["suite"]
    assert _subcommand_mentions(
        "repro-experiments --result-cache tbl1", known
    ) == ["tbl1"]
    assert _subcommand_mentions(
        "repro-experiments bench --json artifacts/BENCH_fleet.json", known
    ) == ["bench"]
