"""Tests for the IK solver, the transformer VLM and the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.statistics import bootstrap_mean_ci, paired_bootstrap_difference
from repro.nn import Tensor
from repro.nn.attention import MultiHeadSelfAttention, TransformerVLM
from repro.robot import end_effector_pose, forward_kinematics, panda
from repro.robot.ik import solve_ik, trajectory_to_joint_path

_PANDA = panda()


class TestInverseKinematics:
    def test_converges_to_reachable_pose(self):
        target = end_effector_pose(_PANDA, _PANDA.q_home)
        target[0] += 0.08
        target[2] -= 0.05
        result = solve_ik(_PANDA, target)
        assert result.converged
        assert result.position_error < 1e-4

    def test_solution_respects_joint_limits(self):
        target = end_effector_pose(_PANDA, _PANDA.q_home)
        target[1] += 0.15
        result = solve_ik(_PANDA, target)
        assert np.all(result.q >= _PANDA.q_lower - 1e-12)
        assert np.all(result.q <= _PANDA.q_upper + 1e-12)

    def test_unreachable_pose_reports_failure(self):
        target = np.array([2.0, 0.0, 0.5, 0.0, 0.0, 0.0])  # 2 m away
        result = solve_ik(_PANDA, target, max_iterations=50)
        assert not result.converged
        assert result.position_error > 0.5

    def test_roundtrip_fk_ik(self, rng):
        q_true = _PANDA.clamp_configuration(_PANDA.q_home + 0.2 * rng.normal(size=7))
        target = end_effector_pose(_PANDA, q_true)
        result = solve_ik(_PANDA, target)
        assert result.converged
        recovered = forward_kinematics(_PANDA, result.q)[:3, 3]
        assert np.allclose(recovered, target[:3], atol=1e-3)

    def test_trajectory_to_joint_path_continuity(self):
        start = end_effector_pose(_PANDA, _PANDA.q_home)
        poses = np.array([start + np.array([0.01 * k, 0, 0, 0, 0, 0]) for k in range(5)])
        path, converged = trajectory_to_joint_path(_PANDA, poses)
        assert converged
        # Consecutive solutions stay on one branch: small joint steps.
        assert np.abs(np.diff(path, axis=0)).max() < 0.2


class TestAttention:
    def test_output_shape(self, rng):
        attention = MultiHeadSelfAttention(dim=16, heads=4, rng=rng)
        x = Tensor(rng.normal(size=(5, 16)))
        assert attention(x).shape == (5, 16)

    def test_rejects_bad_head_split(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=10, heads=4, rng=rng)

    def test_gradients_flow_through_attention(self, rng):
        attention = MultiHeadSelfAttention(dim=8, heads=2, rng=rng)
        x = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        attention(x).sum().backward()
        assert x.grad is not None
        assert np.any(x.grad != 0)

    def test_attention_gradcheck(self, rng):
        attention = MultiHeadSelfAttention(dim=4, heads=2, rng=rng)
        x0 = rng.normal(size=(3, 4))

        def fn(x):
            return (attention(x) * attention(x)).sum()

        x = Tensor(x0.copy(), requires_grad=True)
        fn(x).backward()
        analytic = x.grad.copy()
        eps = 1e-6
        numeric = np.zeros_like(x0)
        for i in range(x0.size):
            plus, minus = x0.copy().ravel(), x0.copy().ravel()
            plus[i] += eps
            minus[i] -= eps
            numeric.ravel()[i] = (
                fn(Tensor(plus.reshape(x0.shape))).item()
                - fn(Tensor(minus.reshape(x0.shape))).item()
            ) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_transformer_vlm_token(self, rng):
        vlm = TransformerVLM(observation_dim=48, num_instructions=5, token_dim=16, rng=rng)
        token = vlm(rng.normal(size=48), 2)
        assert token.shape == (16,)

    def test_transformer_vlm_instruction_sensitivity(self, rng):
        vlm = TransformerVLM(observation_dim=48, num_instructions=5, token_dim=16, rng=rng)
        obs = rng.normal(size=48)
        assert not np.allclose(vlm(obs, 0).numpy(), vlm(obs, 4).numpy())

    def test_transformer_vlm_trains(self, rng):
        from repro.nn import Adam, mse_loss

        vlm = TransformerVLM(observation_dim=16, num_instructions=2, token_dim=8, rng=rng, num_patches=4, depth=1)
        optimizer = Adam(vlm.parameters(), lr=0.01)
        obs = rng.normal(size=(8, 16))
        targets = rng.normal(size=(8, 8))
        losses = []
        for _ in range(40):
            loss = None
            for row in range(8):
                sample_loss = mse_loss(vlm(obs[row], row % 2), targets[row])
                loss = sample_loss if loss is None else loss + sample_loss
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < 0.5 * losses[0]


class TestStatistics:
    def test_ci_contains_true_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(3.0, 1.0, size=200)
        ci = bootstrap_mean_ci(samples)
        assert 3.0 in ci
        assert ci.lower < ci.point < ci.upper

    def test_ci_width_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = bootstrap_mean_ci(rng.normal(size=20))
        large = bootstrap_mean_ci(rng.normal(size=2000))
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.ones(3), confidence=1.5)

    def test_paired_difference_detects_shift(self):
        rng = np.random.default_rng(1)
        control = rng.normal(0.0, 1.0, size=300)
        treatment = control + 0.5
        ci = paired_bootstrap_difference(treatment, control)
        assert 0.0 not in ci
        assert ci.point == pytest.approx(0.5)

    def test_paired_requires_alignment(self):
        with pytest.raises(ValueError):
            paired_bootstrap_difference(np.ones(3), np.ones(4))

    @given(st.integers(0, 100))
    def test_ci_is_deterministic_given_seed(self, seed):
        samples = np.arange(10.0)
        a = bootstrap_mean_ci(samples, seed=seed)
        b = bootstrap_mean_ci(samples, seed=seed)
        assert a == b
