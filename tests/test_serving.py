"""Tests for the evaluation service (`repro.serving`).

The acceptance property: serving a request set -- continuous batching
in-process, or fanned across a warm worker pool, cache cold or warm --
produces traces **byte-identical** to the equivalent
``evaluate_system(..., workers=1)`` batch run.  Everything else here guards
the cache key (any weight/schema/request change must change it), the LRU
and corruption behaviour, and the JSONL protocol surface.
"""

import dataclasses
import io
import json

import numpy as np
import pytest

from repro.analysis.evaluation import (
    JOB_LENGTH,
    TrainedPolicies,
    evaluate_system,
)
from repro.analysis.parallel import archive_policies, restore_policies, shutdown_pools
from repro.core.fleet import FleetLane, FleetRunner
from repro.serving.cache import (
    ResultCache,
    decode_traces,
    encode_traces,
    policy_digest,
    result_key,
)
from repro.serving.jsonl import serve_jsonl
from repro.serving.service import (
    EpisodeRequest,
    EvaluationService,
    estimate_for_request,
)
from repro.sim.env import ManipulationEnv
from repro.sim.tasks import TASKS, sample_job
from repro.sim.world import SEEN_LAYOUT


@pytest.fixture(scope="module")
def trained(tiny_policies):
    baseline, corki, _ = tiny_policies
    return TrainedPolicies(baseline, corki, demos_per_task=3, epochs=1)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_pools()


def job_requests(system: str, seed: int, count: int) -> list[EpisodeRequest]:
    """Requests mirroring lanes 0..count-1 of ``evaluate_system(seed=seed)``."""
    job_rng = np.random.default_rng(seed)
    jobs = [sample_job(job_rng, JOB_LENGTH) for _ in range(count)]
    return [
        EpisodeRequest(
            system=system,
            instructions=tuple(task.instruction for task in job),
            seed=seed,
            lane=lane,
        )
        for lane, job in enumerate(jobs)
    ]


def assert_traces_equal(a, b):
    assert a.success == b.success
    assert a.frames == b.frames
    assert a.executed_steps == b.executed_steps
    assert np.array_equal(a.ee_path, b.ee_path)
    assert np.array_equal(a.reference_path, b.reference_path)
    assert np.array_equal(a.gripper_path, b.gripper_path)


def assert_serves_batch(results, evaluation):
    served = [trace for result in results for trace in result.traces]
    assert len(served) == len(evaluation.traces)
    for fresh, roll in zip(evaluation.traces, served):
        assert_traces_equal(fresh, roll)


# -- cache keys ----------------------------------------------------------------


class TestCacheKeys:
    def test_digest_changes_with_policy_weights(self, trained):
        """Perturbing one weight must re-address every cached result."""
        perturbed = restore_policies(archive_policies(trained))
        parameter = perturbed.baseline.parameters()[0]
        parameter.data[...] = parameter.data + 1e-3
        assert policy_digest(trained) != policy_digest(perturbed)

    def test_digest_is_stable_for_identical_weights(self, trained):
        """A round-tripped copy of the same weights shares the digest (and a
        repeated call hits the memo)."""
        clone = restore_policies(archive_policies(trained))
        assert policy_digest(clone) == policy_digest(trained)
        assert policy_digest(trained) == policy_digest(trained)

    def test_key_changes_with_environment_schema(self):
        """The PR 3 cache-tag fields: registry size and feature dims all
        invalidate -- growing the task suite or the camera must re-roll."""
        base = dict(
            policy="p", system="corki-5", layout_name="seen", seed=1, lane=0,
            instructions=("lift the red block",),
        )
        key = result_key(**base)
        assert key != result_key(**base, registry_size=len(TASKS) + 1)
        assert key != result_key(**base, raw_feature_dim=99)
        assert key != result_key(**base, observation_dim=99)

    def test_key_changes_with_request_identity(self):
        base = dict(
            policy="p", system="corki-5", layout_name="seen", seed=1, lane=0,
            instructions=("lift the red block",),
        )
        key = result_key(**base)
        assert key != result_key(**{**base, "system": "corki-3"})
        assert key != result_key(**{**base, "layout_name": "unseen"})
        assert key != result_key(**{**base, "seed": 2})
        assert key != result_key(**{**base, "lane": 1})
        assert key != result_key(**{**base, "instructions": ("open the drawer",)})
        assert key != result_key(**base, max_frames=10)


# -- cache storage -------------------------------------------------------------


class TestResultCacheStore:
    def roll_one(self, trained):
        evaluation = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=1, seed=3)
        return evaluation.traces

    def test_roundtrip_is_byte_identical(self, trained):
        traces = self.roll_one(trained)
        for original, decoded in zip(traces, decode_traces(encode_traces(traces))):
            assert_traces_equal(original, decoded)

    def test_lru_eviction_bounds_entries(self, trained, tmp_path):
        cache = ResultCache(directory=tmp_path, max_entries=2)
        traces = self.roll_one(trained)
        cache.put("a", traces)
        cache.put("b", traces)
        cache.get("a")  # refresh "a": "b" becomes least recently used
        cache.put("c", traces)
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.evictions == 1
        assert not (tmp_path / "b.npz").exists()

    def test_disk_entries_survive_a_new_instance(self, trained, tmp_path):
        traces = self.roll_one(trained)
        ResultCache(directory=tmp_path).put("k", traces)
        reopened = ResultCache(directory=tmp_path)
        hit = reopened.get("k")
        assert hit is not None
        for original, decoded in zip(traces, hit):
            assert_traces_equal(original, decoded)

    def test_corrupted_entry_is_a_miss_and_is_dropped(self, trained, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", self.roll_one(trained))
        (tmp_path / "k.npz").write_bytes(b"not an npz archive")
        fresh = ResultCache(directory=tmp_path)  # no in-memory copy to mask it
        assert fresh.get("k") is None
        assert fresh.corrupt == 1
        assert not (tmp_path / "k.npz").exists()

    def test_in_memory_corruption_is_also_survived(self, trained):
        cache = ResultCache()
        cache.put("k", self.roll_one(trained))
        cache._entries["k"] = b"garbage"
        assert cache.get("k") is None
        assert cache.corrupt == 1


# -- cache threading through evaluate_system -----------------------------------


class TestEvaluateSystemCache:
    def test_rerun_hits_and_matches(self, trained, tmp_path):
        cache = ResultCache(directory=tmp_path)
        first = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=3, seed=7, cache=cache)
        assert cache.misses == 3 and cache.hits == 0
        second = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=3, seed=7, cache=cache)
        assert cache.hits == 3
        assert second.completed_counts == first.completed_counts
        for a, b in zip(first.traces, second.traces):
            assert_traces_equal(a, b)

    def test_cached_equals_uncached(self, trained, tmp_path):
        plain = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=3, seed=7)
        cached = evaluate_system(
            trained, "corki-5", SEEN_LAYOUT, jobs=3, seed=7,
            cache=ResultCache(directory=tmp_path),
        )
        rerun = evaluate_system(
            trained, "corki-5", SEEN_LAYOUT, jobs=3, seed=7,
            cache=ResultCache(directory=tmp_path),
        )
        for a, b, c in zip(plain.traces, cached.traces, rerun.traces):
            assert_traces_equal(a, b)
            assert_traces_equal(a, c)

    def test_partial_hits_reroll_only_missing_lanes(self, trained, tmp_path):
        """A scattered miss set re-rolls at the original global lane indices,
        so partially-cached results stay byte-identical."""
        plain = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=4, seed=7)
        cache = ResultCache(directory=tmp_path)
        evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=4, seed=7, cache=cache)
        # Corrupt lanes 0 and 2 on disk; a fresh instance must re-roll just them.
        files = sorted(tmp_path.glob("*.npz"))
        assert len(files) == 4
        job_rng = np.random.default_rng(7)
        jobs = [sample_job(job_rng, JOB_LENGTH) for _ in range(4)]
        for lane in (0, 2):
            key = cache.lane_key(trained, "corki-5", SEEN_LAYOUT, 7, lane, jobs[lane])
            (tmp_path / f"{key}.npz").write_bytes(b"corrupt")
        fresh = ResultCache(directory=tmp_path)
        rerolled = evaluate_system(
            trained, "corki-5", SEEN_LAYOUT, jobs=4, seed=7, cache=fresh
        )
        assert fresh.corrupt == 2 and fresh.hits == 2
        for a, b in zip(plain.traces, rerolled.traces):
            assert_traces_equal(a, b)


# -- continuous batching -------------------------------------------------------


class TestRunContinuous:
    def test_refill_matches_batch_run(self, trained):
        """Lanes admitted into freed slots equal the same lanes run as one
        batch -- the fleet-size/admission-order invariance, end to end."""
        from repro.analysis.evaluation import lane_generators

        def lanes_and_envs(count):
            job_rng = np.random.default_rng(5)
            jobs = [sample_job(job_rng, JOB_LENGTH) for _ in range(count)]
            pairs = []
            for lane_index, job in enumerate(jobs):
                env_rng, _ = lane_generators(5, lane_index)
                pairs.append(
                    (
                        ManipulationEnv(SEEN_LAYOUT, env_rng),
                        FleetLane(tasks=list(job)),
                    )
                )
            return pairs

        runner = FleetRunner(baseline=trained.baseline)
        batch_pairs = lanes_and_envs(4)
        batch = runner.run(
            [env for env, _ in batch_pairs], [lane for _, lane in batch_pairs]
        )
        results = {}
        streamed_pairs = lanes_and_envs(4)
        order = {id(lane): index for index, (_, lane) in enumerate(streamed_pairs)}
        served = runner.run_continuous(
            iter(streamed_pairs),
            slots=2,
            on_complete=lambda lane, traces: results.__setitem__(order[id(lane)], traces),
        )
        assert served == 4 and sorted(results) == [0, 1, 2, 3]
        for index in range(4):
            for a, b in zip(batch[index], results[index]):
                assert_traces_equal(a, b)

    def test_empty_source_serves_nothing(self, trained):
        runner = FleetRunner(baseline=trained.baseline)
        assert runner.run_continuous(iter(()), slots=4, on_complete=lambda *_: None) == 0

    def test_slots_must_be_positive(self, trained):
        runner = FleetRunner(baseline=trained.baseline)
        with pytest.raises(ValueError, match="slots"):
            runner.run_continuous(iter(()), slots=0, on_complete=lambda *_: None)


# -- the service ---------------------------------------------------------------


class TestServiceInProcess:
    def test_continuous_service_matches_batch(self, trained):
        batch = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=4, seed=11, workers=1)
        service = EvaluationService(trained, workers=1, slots=2)
        cold = service.serve(job_requests("corki-5", 11, 4))
        assert [result.cached for result in cold] == [False] * 4
        assert_serves_batch(cold, batch)
        warm = service.serve(job_requests("corki-5", 11, 4))
        assert [result.cached for result in warm] == [True] * 4
        assert_serves_batch(warm, batch)

    def test_mixed_systems_in_one_drain(self, trained):
        corki = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=2, seed=11)
        base = evaluate_system(trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=11)
        service = EvaluationService(trained, workers=1, slots=4)
        results = service.serve(
            job_requests("corki-5", 11, 2) + job_requests("roboflamingo", 11, 2)
        )
        assert_serves_batch(results[:2], corki)
        assert_serves_batch(results[2:], base)

    def test_cache_disabled_rolls_every_time(self, trained):
        service = EvaluationService(trained, workers=1, slots=2, use_cache=False)
        requests = job_requests("corki-5", 11, 2)
        first = service.serve(requests)
        second = service.serve(requests)
        assert not any(result.cached for result in first + second)
        for a, b in zip(first, second):
            for x, y in zip(a.traces, b.traces):
                assert_traces_equal(x, y)

    def test_rejects_unknown_system_and_layout(self):
        with pytest.raises(ValueError, match="unknown system"):
            EpisodeRequest(system="corki-42", instructions=("x",), seed=0)
        with pytest.raises(ValueError, match="layout"):
            EpisodeRequest(
                system="corki-5", instructions=("x",), seed=0, layout="imagined"
            )
        with pytest.raises(ValueError, match="instruction"):
            EpisodeRequest(system="corki-5", instructions=(), seed=0)

    def test_rejects_negative_seed_and_lane(self):
        """A malformed-but-parseable request must fail at validation, not
        mid-drain (where it would take the whole batch down)."""
        with pytest.raises(ValueError, match="seed and lane"):
            EpisodeRequest(system="corki-5", instructions=("x",), seed=-1)
        with pytest.raises(ValueError, match="seed and lane"):
            EpisodeRequest(system="corki-5", instructions=("x",), seed=0, lane=-2)
        with pytest.raises(ValueError, match="max_frames"):
            EpisodeRequest(system="corki-5", instructions=("x",), seed=0, max_frames=0)

    def test_duplicate_requests_in_one_drain_roll_once(self, trained):
        service = EvaluationService(trained, workers=1, slots=4)
        request = job_requests("corki-5", 11, 1)[0]
        results = service.serve([request, request, request])
        # All three lookups miss (the roll lands after), but only the
        # primary rolled: one cache entry, copies flagged cached.
        assert len(service.cache) == 1
        assert [result.cached for result in results] == [False, True, True]
        for duplicate in results[1:]:
            assert duplicate.traces is not results[0].traces
            for a, b in zip(results[0].traces, duplicate.traces):
                assert_traces_equal(a, b)

    def test_policy_digest_not_fooled_by_id_reuse(self, trained):
        """Recycled object ids must not resurrect a stale digest."""
        from repro.serving.cache import _DIGEST_CACHE

        clone = restore_policies(archive_policies(trained))
        stale_id = id(clone)
        first = policy_digest(clone)
        assert _DIGEST_CACHE[stale_id][1] == first
        del clone
        # Simulate the allocator handing the dead object's id to different
        # weights: the weakref check must force a recompute.
        perturbed = restore_policies(archive_policies(trained))
        parameter = perturbed.baseline.parameters()[0]
        parameter.data[...] = parameter.data + 1e-3
        _DIGEST_CACHE[id(perturbed)] = _DIGEST_CACHE.pop(stale_id, (lambda: None, first))
        assert policy_digest(perturbed) != first


class TestServicePooled:
    def test_pooled_service_matches_batch_cold_and_warm(self, trained):
        """The acceptance criterion: workers >= 2, cache cold then warm,
        byte-identical to ``evaluate_system(..., workers=1)``."""
        batch = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=4, seed=11, workers=1)
        service = EvaluationService(trained, workers=2, slots=8)
        cold = service.serve(job_requests("corki-5", 11, 4))
        assert [result.cached for result in cold] == [False] * 4
        assert_serves_batch(cold, batch)
        warm = service.serve(job_requests("corki-5", 11, 4))
        assert [result.cached for result in warm] == [True] * 4
        assert_serves_batch(warm, batch)

    def test_pooled_mixed_burst_matches_batches(self, trained):
        corki = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=2, seed=13)
        base = evaluate_system(trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=13)
        service = EvaluationService(trained, workers=2)
        results = service.serve(
            job_requests("corki-5", 13, 2) + job_requests("roboflamingo", 13, 2)
        )
        assert_serves_batch(results[:2], corki)
        assert_serves_batch(results[2:], base)


# -- the JSONL surface ---------------------------------------------------------


class TestJsonlProtocol:
    def run_lines(self, service, lines):
        out = io.StringIO()
        serve_jsonl(service, io.StringIO("\n".join(lines) + "\n"), out)
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_request_response_round_trip(self, trained):
        batch = evaluate_system(trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=17)
        service = EvaluationService(trained, workers=1, slots=2)
        requests = job_requests("roboflamingo", 17, 2)
        lines = [
            json.dumps(
                {
                    "id": f"r{request.lane}",
                    "system": request.system,
                    "instructions": list(request.instructions),
                    "seed": request.seed,
                    "lane": request.lane,
                }
            )
            for request in requests
        ]
        responses = self.run_lines(service, lines)
        assert [response["id"] for response in responses] == ["r0", "r1"]
        # Compare against the batch run lane by lane (its traces are flat,
        # in lane order; each response declares its own episode count).
        flat = iter(batch.traces)
        for response in responses:
            assert response["cached"] is False
            expected = [next(flat) for _ in response["successes"]]
            assert response["successes"] == [trace.success for trace in expected]
            assert response["frames"] == [trace.frames for trace in expected]
            assert response["executed_steps"] == [
                trace.executed_steps for trace in expected
            ]

    def test_stats_and_errors_do_not_break_the_loop(self, trained):
        service = EvaluationService(trained, workers=1, slots=2)
        request = job_requests("roboflamingo", 17, 1)[0]
        lines = [
            "this is not json",
            json.dumps({"id": "bad", "system": "corki-5", "seed": 1}),  # no instructions
            json.dumps(  # a typo'd instruction must not kill the loop
                {"id": "typo", "system": "corki-5", "instruction": "levitate", "seed": 1}
            ),
            json.dumps({"op": "stats"}),
            json.dumps(
                {
                    "id": "ok",
                    "system": request.system,
                    "instruction": request.instructions[0],
                    "seed": request.seed,
                }
            ),
        ]
        responses = self.run_lines(service, lines)
        assert "error" in responses[0]
        assert responses[1]["id"] == "bad" and "error" in responses[1]
        assert responses[2]["id"] == "typo" and "unknown instruction" in responses[2]["error"]
        assert "stats" in responses[3]
        # single-instruction shorthand serves lane 0 of the request's seed
        assert responses[4]["id"] == "ok" and len(responses[4]["successes"]) >= 1

    def test_repro_serve_main_cold_then_warm(self, trained, tmp_path):
        """The ``repro-serve`` surface end to end: two service processes
        sharing a disk cache -- the second serves every request cached."""
        from repro.serving.__main__ import main

        requests = job_requests("corki-5", 19, 2)
        lines = "\n".join(
            json.dumps(
                {
                    "id": f"r{request.lane}",
                    "system": request.system,
                    "instructions": list(request.instructions),
                    "seed": request.seed,
                    "lane": request.lane,
                }
            )
            for request in requests
        ) + "\n"
        argv = ["--workers", "2", "--cache-dir", str(tmp_path)]
        cold_out = io.StringIO()
        assert main(argv, policies=trained, stdin=io.StringIO(lines), stdout=cold_out) == 0
        warm_out = io.StringIO()
        assert main(argv, policies=trained, stdin=io.StringIO(lines), stdout=warm_out) == 0
        cold = [json.loads(line) for line in cold_out.getvalue().splitlines()]
        warm = [json.loads(line) for line in warm_out.getvalue().splitlines()]
        assert [response["cached"] for response in cold] == [False, False]
        assert [response["cached"] for response in warm] == [True, True]
        for a, b in zip(cold, warm):
            assert a["successes"] == b["successes"]
            assert a["frames"] == b["frames"]
            assert a["executed_steps"] == b["executed_steps"]


class TestProfileThreading:
    def test_result_cache_dir_flows_into_experiment_context(self, trained, tmp_path, monkeypatch):
        """`--result-cache` reruns of tbl1 must produce identical reports
        while rolling nothing the second time."""
        from repro.experiments.accuracy_tables import accuracy_table
        from repro.experiments.context import ExperimentContext
        from repro.experiments.profiles import QUICK

        monkeypatch.setattr(ExperimentContext, "policies", lambda self: trained)
        profile = dataclasses.replace(
            QUICK, jobs=2, result_cache_dir=str(tmp_path / "cache")
        )
        first = accuracy_table("seen", profile)
        # A fresh context simulates a rerun of the CLI in a new process.
        import repro.experiments.context as context_module

        monkeypatch.setattr(context_module, "_SHARED", None)
        second = accuracy_table("seen", profile)
        assert first == second
        assert list((tmp_path / "cache").glob("*.npz"))


# -- pipeline-cost estimates on responses --------------------------------------


class TestServedEstimates:
    """The estimate block is a pure function of the request and its traces:
    cache hits, duplicates, and fresh rolls must all carry identical
    estimates, and pre-schema-bump payloads must re-roll rather than serve
    estimate-less (or stale-layout) results."""

    def strip_schema_marker(self, payload: bytes) -> bytes:
        """Re-encode an npz payload the way the pre-bump schema wrote it."""
        arrays = dict(np.load(io.BytesIO(payload)))
        del arrays["schema"]
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        return buffer.getvalue()

    def test_fresh_and_cached_estimates_are_identical(self, trained):
        service = EvaluationService(trained, workers=1, slots=2)
        requests = job_requests("corki-5", 11, 2)
        fresh = service.serve(requests)
        warm = service.serve(requests)
        for request, cold, hot in zip(requests, fresh, warm):
            assert cold.estimate is not None
            assert not cold.cached and hot.cached
            assert cold.estimate == hot.estimate
            assert cold.estimate == estimate_for_request(request, cold.traces)
            assert cold.estimate.system == "corki-5"
            assert cold.estimate.frames == sum(t.frames for t in cold.traces)

    def test_duplicates_in_one_drain_share_the_estimate(self, trained):
        service = EvaluationService(trained, workers=1, slots=2)
        request = job_requests("corki-5", 11, 1)[0]
        primary, duplicate = service.serve([request, request])
        assert primary.estimate == duplicate.estimate

    def test_jsonl_response_carries_the_estimate(self, trained):
        from repro.serving.jsonl import response_to_json

        service = EvaluationService(trained, workers=1, slots=2)
        result = service.serve(job_requests("corki-5", 11, 1))[0]
        response = response_to_json(result, "r1")
        assert response["estimate"] == result.estimate.to_json()
        for field in ("system", "frames", "mean_latency_ms", "mean_energy_j"):
            assert field in response["estimate"]

    def test_decode_rejects_pre_bump_payloads(self, trained):
        traces = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=1, seed=3).traces
        with pytest.raises(ValueError, match="schema"):
            decode_traces(self.strip_schema_marker(encode_traces(traces)))

    def test_pre_bump_entry_is_evicted_and_rerolled(self, trained):
        """A payload written before the schema bump, planted under the
        current key, must count as corrupt and re-roll -- with the re-rolled
        response carrying the same estimate a fresh one would."""
        service = EvaluationService(trained, workers=1, slots=2)
        request = job_requests("corki-5", 11, 1)[0]
        fresh = service.serve([request])[0]
        (key, payload), = service.cache._entries.items()
        service.cache._entries[key] = self.strip_schema_marker(payload)
        rerolled = service.serve([request])[0]
        assert not rerolled.cached
        assert service.cache.corrupt == 1
        assert rerolled.estimate == fresh.estimate
        for a, b in zip(fresh.traces, rerolled.traces):
            assert_traces_equal(a, b)

    def test_schema_string_is_part_of_the_key(self, trained, monkeypatch):
        import repro.serving.cache as cache_module

        kwargs = dict(
            policy=policy_digest(trained), system="corki-5", layout_name="seen",
            seed=3, lane=0, instructions=("x",),
        )
        before = result_key(**kwargs)
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA", "repro-result-cache/1")
        assert result_key(**kwargs) != before
