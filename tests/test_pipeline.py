"""Tests for the system pipeline model: stages, executor, traces."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import constants
from repro.pipeline import (
    CommunicationStage,
    ControlStage,
    InferenceStage,
    SystemStages,
    simulate_baseline,
    simulate_corki,
)


class TestStages:
    def test_inference_scaling(self):
        assert InferenceStage(0.4).latency_ms == pytest.approx(constants.INFERENCE_MS * 0.4)

    def test_control_substrates(self):
        assert ControlStage("cpu").latency_ms == pytest.approx(24.7, abs=0.1)
        assert ControlStage("fpga").latency_ms == pytest.approx(24.7 / 29.0, abs=0.01)
        with pytest.raises(ValueError):
            _ = ControlStage("tpu").latency_ms

    def test_stage_energy(self):
        stage = CommunicationStage()
        assert stage.energy_j() == pytest.approx(stage.latency_ms / 1000 * stage.power_w)


class TestBaselinePipeline:
    def test_matches_paper_frame_latency(self):
        trace = simulate_baseline(100)
        assert trace.mean_latency_ms == pytest.approx(249.4, rel=0.01)

    def test_breakdown_matches_paper(self):
        trace = simulate_baseline(200, rng=np.random.default_rng(0))
        breakdown = trace.latency_breakdown()
        assert breakdown["inference"] == pytest.approx(0.727, abs=0.02)
        assert breakdown["control"] == pytest.approx(0.099, abs=0.02)
        assert breakdown["communication"] == pytest.approx(0.174, abs=0.02)

    def test_energy_dominated_by_inference(self):
        trace = simulate_baseline(100, rng=np.random.default_rng(0))
        assert trace.energy_breakdown()["inference"] == pytest.approx(0.958, abs=0.01)

    def test_jitter_reproducible(self):
        a = simulate_baseline(50, rng=np.random.default_rng(5))
        b = simulate_baseline(50, rng=np.random.default_rng(5))
        assert np.allclose(a.latencies_ms(), b.latencies_ms())


class TestCorkiPipeline:
    def test_corki5_frequency_matches_paper(self):
        trace = simulate_corki([5] * 60)
        assert trace.frequency_hz == pytest.approx(26.9, abs=0.5)

    def test_crest_trough_structure(self):
        trace = simulate_corki([5, 5])
        latencies = trace.latencies_ms()
        assert latencies[0] > 10 * latencies[1]
        assert latencies[5] > 10 * latencies[6]

    def test_speedup_monotone_in_steps(self):
        baseline = simulate_baseline(90)
        speedups = [
            simulate_corki([steps] * 30).speedup_vs(baseline) for steps in (1, 3, 5, 7, 9)
        ]
        assert all(a < b for a, b in zip(speedups, speedups[1:]))
        assert 1.0 < speedups[0] < 2.0  # paper: 1.2x for Corki-1
        assert 8.0 < speedups[-1] < 13.0  # paper: 9.1x for Corki-9

    def test_short_trajectory_exposes_communication(self):
        """One 33 ms step cannot hide 43.4 ms of communication."""
        trace = simulate_corki([1])
        assert trace.frames[0].communication_ms > 0
        trace_long = simulate_corki([5])
        assert trace_long.frames[0].communication_ms == 0.0

    def test_energy_reduction_scales(self):
        baseline = simulate_baseline(90)
        reduction_9 = simulate_corki([9] * 30).energy_reduction_vs(baseline)
        assert reduction_9 == pytest.approx(9.2, abs=1.5)  # paper: 9.2x

    def test_sw_variant_slower(self):
        fpga = simulate_corki([5] * 30)
        cpu = simulate_corki([5] * 30, stages=SystemStages.corki(control="cpu"))
        assert cpu.mean_latency_ms > fpga.mean_latency_ms
        assert cpu.frequency_hz < 22.0  # paper: 18.7 Hz

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            simulate_corki([5, 0, 3])

    def test_long_tail_heavier_than_baseline(self):
        """Paper Fig. 14c: Corki has higher relative latency variation."""
        rng = np.random.default_rng(0)
        baseline = simulate_baseline(100, rng=rng)
        corki = simulate_corki([5] * 20, rng=rng)
        assert corki.latency_variation > baseline.latency_variation

    @given(st.lists(st.integers(1, 9), min_size=1, max_size=40))
    def test_frame_count_is_total_steps(self, steps):
        trace = simulate_corki(steps)
        assert len(trace.frames) == sum(steps)

    @given(st.lists(st.integers(1, 9), min_size=2, max_size=40))
    def test_inference_count_matches_trajectories(self, steps):
        trace = simulate_corki(steps)
        crests = sum(1 for frame in trace.frames if frame.inference_ms > 0)
        assert crests == len(steps)


class TestScaling:
    def test_tbl3_h100_beats_v100_speedup(self):
        from repro.experiments.tbl3_tbl4_scaling import scaled_speedup

        steps = [5] * 40
        v100 = scaled_speedup(1.0, steps)
        h100 = scaled_speedup(0.4, steps)
        assert h100 > v100  # paper: 6.4x > 5.9x

    def test_tbl4_int8_beats_fp32_speedup(self):
        from repro.experiments.tbl3_tbl4_scaling import scaled_speedup

        steps = [5] * 40
        assert scaled_speedup(0.4, steps) > scaled_speedup(1.0, steps)
