"""End-to-end integration: train -> evaluate -> metrics -> pipeline model.

Exercises the exact composition the paper's Tbl. 1 / Fig. 13 machinery uses,
at tiny scale, asserting the plumbing invariants rather than accuracy
numbers (those belong to the full-scale experiment drivers).
"""

import numpy as np
import pytest

from repro.analysis.evaluation import JOB_LENGTH, SystemEvaluation, TrainedPolicies, evaluate_system
from repro.pipeline import simulate_baseline, simulate_corki
from repro.sim import SEEN_LAYOUT, UNSEEN_LAYOUT


@pytest.fixture(scope="module")
def trained(tiny_policies_module):
    baseline, corki, _ = tiny_policies_module
    return TrainedPolicies(baseline, corki, demos_per_task=3, epochs=1)


@pytest.fixture(scope="module")
def tiny_policies_module():
    from repro.core import (
        BaselinePolicy,
        CorkiPolicy,
        TrainingConfig,
        train_baseline,
        train_corki,
    )
    from repro.sim import OBSERVATION_DIM, TASKS, collect_demonstrations

    rng = np.random.default_rng(0)
    demos = collect_demonstrations(SEEN_LAYOUT, rng, per_task=3)
    baseline = BaselinePolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    corki = CorkiPolicy(OBSERVATION_DIM, len(TASKS), rng, token_dim=16, hidden_dim=32)
    config = TrainingConfig(epochs=1, batch_size=64)
    train_baseline(baseline, demos, config)
    train_corki(corki, demos, config)
    return baseline, corki, demos


class TestEvaluationPlumbing:
    def test_baseline_evaluation(self, trained):
        result = evaluate_system(trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=1)
        assert isinstance(result, SystemEvaluation)
        assert result.job_stats.jobs == 2
        assert 1 <= len(result.traces) <= 2 * JOB_LENGTH
        assert result.mean_steps_per_inference == pytest.approx(1.0)

    def test_corki_evaluation_steps(self, trained):
        result = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=2, seed=1)
        assert 1.0 < result.mean_steps_per_inference <= 5.0
        assert all(1 <= step <= 9 for step in result.executed_steps)

    def test_adaptive_evaluation(self, trained):
        result = evaluate_system(trained, "corki-adap", SEEN_LAYOUT, jobs=1, seed=1)
        assert all(1 <= step <= 9 for step in result.executed_steps)

    def test_unseen_layout_runs(self, trained):
        result = evaluate_system(trained, "corki-3", UNSEEN_LAYOUT, jobs=1, seed=1)
        assert result.job_stats.jobs == 1

    def test_paired_seeding(self, trained):
        """Same seed => same job sequences => comparable evaluations."""
        a = evaluate_system(trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=9)
        b = evaluate_system(trained, "roboflamingo", SEEN_LAYOUT, jobs=2, seed=9)
        assert a.job_stats.average_length == b.job_stats.average_length

    def test_trajectory_stats_finite(self, trained):
        result = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=1, seed=2)
        stats = result.trajectory_stats()
        assert np.isfinite(stats.mean_rmse)
        assert stats.max_distance.shape == (3,)


class TestAccuracyToPipelineCoupling:
    def test_traces_drive_pipeline_model(self, trained):
        """The measured executed-steps feed the latency model (Fig. 13 path)."""
        result = evaluate_system(trained, "corki-5", SEEN_LAYOUT, jobs=1, seed=3)
        baseline_trace = simulate_baseline(60)
        corki_trace = simulate_corki(result.executed_steps)
        assert corki_trace.speedup_vs(baseline_trace) > 1.0
        assert len(corki_trace.frames) == sum(result.executed_steps)
