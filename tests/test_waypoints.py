"""Tests for Algorithm 1: waypoint extraction and identification."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    adaptive_termination_step,
    gripper_change_flags,
    point_line_distance,
    segment_angles,
)


class TestGripperFlags:
    def test_change_detected(self):
        schedule = np.array([True, True, False, False, True])
        flags = gripper_change_flags(schedule, current_open=True)
        assert list(flags) == [False, False, True, False, True]

    def test_initial_change(self):
        schedule = np.array([False, False])
        flags = gripper_change_flags(schedule, current_open=True)
        assert list(flags) == [True, False]

    def test_no_changes(self):
        schedule = np.ones(5, dtype=bool)
        assert not gripper_change_flags(schedule, current_open=True).any()


class TestGeometry:
    def test_point_on_chord_has_small_angles(self):
        start = np.zeros(3)
        end = np.array([1.0, 0.0, 0.0])
        angle_start, angle_end = segment_angles(np.array([0.5, 0.0, 0.0]), start, end)
        assert angle_start < 1e-9 and angle_end < 1e-9

    def test_point_behind_start_has_obtuse_angle(self):
        start = np.zeros(3)
        end = np.array([1.0, 0.0, 0.0])
        angle_start, _ = segment_angles(np.array([-0.2, 0.1, 0.0]), start, end)
        assert angle_start > np.pi / 2

    def test_distance_to_line(self):
        d = point_line_distance(
            np.array([0.5, 0.3, 0.0]), np.zeros(3), np.array([1.0, 0.0, 0.0])
        )
        assert d == pytest.approx(0.3)

    def test_degenerate_chord_distance(self):
        d = point_line_distance(np.array([0.1, 0.0, 0.0]), np.zeros(3), np.zeros(3))
        assert d == pytest.approx(0.1)


class TestAdaptiveTermination:
    def _straight(self, steps=5):
        return np.outer(np.arange(1, steps + 1), [0.01, 0.0, 0.0])

    def test_straight_line_runs_to_the_end(self):
        waypoints = self._straight()
        flags = np.zeros(5, dtype=bool)
        assert adaptive_termination_step(np.zeros(3), waypoints, flags, 0.02) == 5

    def test_gripper_change_terminates_at_waypoint(self):
        waypoints = self._straight()
        flags = np.zeros(5, dtype=bool)
        flags[3] = True  # change at waypoint 4 -> stop at 3 (P with G(Pn)=1)
        assert adaptive_termination_step(np.zeros(3), waypoints, flags, 0.02) == 3

    def test_gripper_change_at_current_waypoint(self):
        waypoints = self._straight()
        flags = np.zeros(5, dtype=bool)
        flags[1] = True
        assert adaptive_termination_step(np.zeros(3), waypoints, flags, 0.02) == 1

    def test_sharp_turn_terminates_early(self):
        # Straight out to x = 0.03 then back toward the origin: waypoint 2
        # ends up between A and later candidates -> obtuse angle at B.
        waypoints = np.array(
            [
                [0.02, 0.0, 0.0],
                [0.04, 0.0, 0.0],
                [0.02, 0.002, 0.0],
                [0.0, 0.004, 0.0],
                [-0.02, 0.006, 0.0],
            ]
        )
        flags = np.zeros(5, dtype=bool)
        step = adaptive_termination_step(np.zeros(3), waypoints, flags, 0.05)
        assert step < 5

    def test_distance_threshold_trips(self):
        waypoints = np.array(
            [
                [0.01, 0.03, 0.0],  # far from the straight chord
                [0.02, 0.0, 0.0],
                [0.03, 0.0, 0.0],
            ]
        )
        flags = np.zeros(3, dtype=bool)
        assert adaptive_termination_step(np.zeros(3), waypoints, flags, 0.01) < 3

    def test_flag_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            adaptive_termination_step(np.zeros(3), self._straight(), np.zeros(3, dtype=bool), 0.02)

    @given(st.integers(0, 1000))
    def test_result_always_in_range(self, seed):
        rng = np.random.default_rng(seed)
        steps = int(rng.integers(1, 10))
        waypoints = rng.normal(0.0, 0.02, size=(steps, 3))
        flags = rng.random(steps) < 0.2
        result = adaptive_termination_step(np.zeros(3), waypoints, flags, 0.02)
        assert 1 <= result <= steps

    @given(st.integers(0, 1000))
    def test_monotone_in_distance_threshold(self, seed):
        """A looser distance threshold can only lengthen the execution."""
        rng = np.random.default_rng(seed)
        waypoints = rng.normal(0.0, 0.02, size=(6, 3))
        flags = np.zeros(6, dtype=bool)
        tight = adaptive_termination_step(np.zeros(3), waypoints, flags, 0.005)
        loose = adaptive_termination_step(np.zeros(3), waypoints, flags, 0.05)
        assert loose >= tight
