"""Tests for the autograd engine, layers, losses and optimisers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import (
    LSTM,
    MLP,
    SGD,
    Adam,
    CompactVLM,
    Embedding,
    LayerNorm,
    Linear,
    LSTMCell,
    PatchFeatureEncoder,
    Tensor,
    bce_with_logits,
    clip_gradients,
    concat,
    load_state_dict,
    mse_loss,
    no_grad,
    softmax,
    stack,
    state_dict,
)


def numeric_gradient(fn, x0, eps=1e-6):
    grad = np.zeros_like(x0)
    flat = grad.reshape(-1)
    base = x0.reshape(-1)
    for index in range(base.size):
        plus = base.copy()
        minus = base.copy()
        plus[index] += eps
        minus[index] -= eps
        flat[index] = (
            fn(Tensor(plus.reshape(x0.shape))).item() - fn(Tensor(minus.reshape(x0.shape))).item()
        ) / (2 * eps)
    return grad


def analytic_gradient(fn, x0):
    x = Tensor(x0.copy(), requires_grad=True)
    fn(x).backward()
    return x.grad


small_matrices = arrays(
    np.float64,
    array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=4),
    elements=st.floats(-2.0, 2.0, width=64),
)


class TestAutogradCore:
    @given(small_matrices)
    def test_elementwise_chain(self, x0):
        def fn(x):
            return ((x * 2.0 + 1.0).tanh() * x.sigmoid()).sum()

        assert np.allclose(analytic_gradient(fn, x0), numeric_gradient(fn, x0), atol=1e-6)

    @given(small_matrices)
    def test_reductions(self, x0):
        def fn(x):
            return (x.mean(axis=0) * x.sum(axis=1).mean()).sum()

        assert np.allclose(analytic_gradient(fn, x0), numeric_gradient(fn, x0), atol=1e-6)

    def test_matmul_gradients(self, rng):
        a0 = rng.normal(size=(3, 4))
        b = Tensor(rng.normal(size=(4, 2)))

        def fn(a):
            return (a @ b).sum()

        assert np.allclose(analytic_gradient(fn, a0), numeric_gradient(fn, a0), atol=1e-6)

    def test_broadcast_add_gradients(self, rng):
        x0 = rng.normal(size=(3, 4))
        bias = Tensor(rng.normal(size=4), requires_grad=True)
        x = Tensor(x0, requires_grad=True)
        ((x + bias) * 2.0).sum().backward()
        assert np.allclose(bias.grad, np.full(4, 6.0))
        assert np.allclose(x.grad, np.full((3, 4), 2.0))

    def test_getitem_gradient(self, rng):
        x0 = rng.normal(size=(4, 3))

        def fn(x):
            return (x[1:3] * 2.0).sum() + x[0, 0] * 5.0

        assert np.allclose(analytic_gradient(fn, x0), numeric_gradient(fn, x0), atol=1e-6)

    def test_concat_and_stack_gradients(self, rng):
        x0 = rng.normal(size=(2, 3))

        def fn(x):
            pieces = concat([x, x * 2.0], axis=1)
            piled = stack([x, x * 3.0], axis=0)
            return pieces.sum() + piled.sum()

        assert np.allclose(analytic_gradient(fn, x0), numeric_gradient(fn, x0), atol=1e-6)

    def test_shared_subexpression_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        (y + y).sum().backward()
        assert np.allclose(x.grad, [6.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2.0).sum()
        assert not y.requires_grad

    def test_division_gradients(self, rng):
        x0 = rng.normal(size=(3,)) + 3.0

        def fn(x):
            return (1.0 / x + x / 2.0).sum()

        assert np.allclose(analytic_gradient(fn, x0), numeric_gradient(fn, x0), atol=1e-6)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        assert np.allclose(x.grad, np.ones(2))


class TestLosses:
    def test_mse_matches_numpy(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(5, 3))
        assert mse_loss(Tensor(a), b).item() == pytest.approx(np.mean((a - b) ** 2))

    def test_bce_matches_reference(self, rng):
        logits = rng.normal(size=20)
        targets = (rng.random(20) > 0.5).astype(float)
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        eps = 1e-7
        probabilities = probabilities * (1 - 2 * eps) + eps
        expected = -np.mean(
            targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities)
        )
        assert bce_with_logits(Tensor(logits), targets).item() == pytest.approx(expected, rel=1e-6)

    def test_bce_extreme_logits_finite(self):
        loss = bce_with_logits(Tensor(np.array([1000.0, -1000.0])), np.array([0.0, 1.0]))
        assert np.isfinite(loss.item())

    def test_bce_gradient(self, rng):
        logits0 = rng.normal(size=6)
        targets = (rng.random(6) > 0.5).astype(float)

        def fn(x):
            return bce_with_logits(x, targets)

        assert np.allclose(analytic_gradient(fn, logits0), numeric_gradient(fn, logits0), atol=1e-6)

    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(4, 5)))).numpy()
        assert np.allclose(out.sum(axis=-1), np.ones(4))


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 3, rng)
        assert layer(Tensor(rng.normal(size=(7, 4)))).shape == (7, 3)
        assert layer(Tensor(rng.normal(size=(2, 5, 4)))).shape == (2, 5, 3)

    def test_mlp_validates_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_lstm_cell_state_shapes(self, rng):
        cell = LSTMCell(3, 8, rng)
        h, c = cell.initial_state((5,))
        h2, c2 = cell(Tensor(rng.normal(size=(5, 3))), (h, c))
        assert h2.shape == (5, 8) and c2.shape == (5, 8)

    def test_lstm_forget_bias_initialised(self, rng):
        cell = LSTMCell(3, 4, rng)
        assert np.allclose(cell.bias.numpy()[4:8], np.ones(4))

    def test_layernorm_normalises(self, rng):
        norm = LayerNorm(16)
        out = norm(Tensor(rng.normal(3.0, 2.0, size=(10, 16)))).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_embedding_lookup(self, rng):
        table = Embedding(5, 4, rng)
        row = table(2)
        assert np.allclose(row.numpy(), table.table.numpy()[2])
        batch = table(np.array([0, 2, 4]))
        assert batch.shape == (3, 4)

    def test_parameter_count(self, rng):
        layer = Linear(4, 3, rng)
        assert layer.parameter_count() == 4 * 3 + 3

    def test_lstm_learns_running_sum(self, rng):
        lstm = LSTM(1, 12, rng)
        head = Linear(12, 1, rng)
        optimizer = Adam(lstm.parameters() + head.parameters(), lr=0.02)
        losses = []
        for _ in range(120):
            xs = rng.normal(size=(16, 5, 1))
            targets = xs.sum(axis=1)
            sequence = [Tensor(xs[:, t, :]) for t in range(5)]
            _, (h, _) = lstm(sequence)
            loss = mse_loss(head(h), targets)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < 0.3 * losses[0]


class TestOptimisers:
    def _quadratic_step(self, optimizer_cls, **kwargs):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        optimizer = optimizer_cls([x], **kwargs)
        for _ in range(200):
            loss = (x * x).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return np.abs(x.numpy()).max()

    def test_sgd_converges(self):
        assert self._quadratic_step(SGD, lr=0.05, momentum=0.5) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_step(Adam, lr=0.1) < 1e-3

    def test_clip_gradients(self):
        x = Tensor(np.ones(4), requires_grad=True)
        (x * 100.0).sum().backward()
        norm = clip_gradients([x], max_norm=1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0)


class TestModels:
    def test_vlm_shapes(self, rng):
        vlm = CompactVLM(observation_dim=24, num_instructions=5, token_dim=8, rng=rng)
        assert vlm(rng.normal(size=24), 1).shape == (8,)
        assert vlm(rng.normal(size=(6, 24)), np.arange(6) % 5).shape == (6, 8)
        assert vlm(rng.normal(size=(2, 12, 24)), np.array([0, 1])).shape == (2, 12, 8)

    def test_vlm_instruction_changes_token(self, rng):
        vlm = CompactVLM(observation_dim=24, num_instructions=5, token_dim=8, rng=rng)
        obs = rng.normal(size=24)
        assert not np.allclose(vlm(obs, 0).numpy(), vlm(obs, 3).numpy())

    def test_patch_encoder_validates_dims(self, rng):
        with pytest.raises(ValueError):
            PatchFeatureEncoder(observation_dim=25, num_patches=8, feature_dim=4, rng=rng)

    def test_patch_encoder_shapes(self, rng):
        encoder = PatchFeatureEncoder(observation_dim=24, num_patches=4, feature_dim=6, rng=rng)
        assert encoder(rng.normal(size=24)).shape == (6,)
        assert encoder(rng.normal(size=(5, 24))).shape == (5, 6)


class TestSerialization:
    def test_roundtrip(self, rng, tmp_path):
        from repro.nn import load_module, save_module

        vlm = CompactVLM(observation_dim=12, num_instructions=3, token_dim=8, rng=rng)
        obs = rng.normal(size=12)
        before = vlm(obs, 1).numpy().copy()
        path = str(tmp_path / "vlm.npz")
        save_module(vlm, path)
        # Perturb and restore.
        for parameter in vlm.parameters():
            parameter.data += 1.0
        load_module(vlm, path)
        assert np.allclose(vlm(obs, 1).numpy(), before)

    def test_shape_mismatch_raises(self, rng):
        a = Linear(3, 2, rng)
        b = Linear(3, 4, rng)
        with pytest.raises(ValueError):
            load_state_dict(b, state_dict(a))

    def test_missing_key_raises(self, rng):
        layer = Linear(3, 2, rng)
        state = state_dict(layer)
        state.pop(sorted(state)[0])
        with pytest.raises(KeyError):
            load_state_dict(layer, state)


class TestInferFastPath:
    """The raw-array deployment path must be bitwise the Tensor forward.

    Batch sizes start at 2: singleton batches are padded by the policy layer
    (``repro.core.policy._pad_singleton``) before reaching ``infer``, because
    one-row matmuls dispatch to a differently-ordered BLAS kernel.
    """

    def test_linear_mlp_layernorm_embedding(self, rng):
        from repro.nn.layers import MLP, Embedding, LayerNorm, Linear
        from repro.nn.tensor import Tensor, no_grad

        for batch in (2, 5, 32):
            x = rng.normal(size=(batch, 16))
            linear = Linear(16, 24, rng)
            mlp = MLP([16, 32, 8], rng)
            norm = LayerNorm(16)
            embed = Embedding(7, 12, rng)
            indices = rng.integers(0, 7, size=batch)
            with no_grad():
                assert np.array_equal(linear(Tensor(x)).numpy(), linear.infer(x))
                assert np.array_equal(mlp(Tensor(x)).numpy(), mlp.infer(x))
                assert np.array_equal(norm(Tensor(x)).numpy(), norm.infer(x))
                assert np.array_equal(embed(indices).numpy(), embed.infer(indices))

    def test_linear_stacked_input_collapses_to_one_gemm(self, rng):
        from repro.nn.layers import Linear
        from repro.nn.tensor import Tensor, no_grad

        linear = Linear(48, 32, rng)
        x = rng.normal(size=(6, 12, 48))
        with no_grad():
            assert np.array_equal(linear(Tensor(x)).numpy(), linear.infer(x))

    def test_lstm_final_hidden_state(self, rng):
        from repro.nn.layers import LSTM
        from repro.nn.tensor import Tensor, no_grad

        lstm = LSTM(16, 32, rng)
        for batch in (2, 3, 32):
            sequence = rng.normal(size=(batch, 12, 16))
            with no_grad():
                hidden_states, _ = lstm(Tensor(sequence))
                assert np.array_equal(hidden_states[-1].numpy(), lstm.infer(sequence))

    def test_vlm_and_vit_encoders(self, rng):
        from repro.nn.tensor import Tensor, no_grad
        from repro.nn.vit import PatchFeatureEncoder
        from repro.nn.vlm import CompactVLM

        vlm = CompactVLM(48, 19, 16, rng)
        vit = PatchFeatureEncoder(48, 8, 16, rng)
        for batch in (2, 4, 16):
            instructions = rng.integers(0, 19, size=batch)
            flat = rng.normal(size=(batch, 48))
            windowed = rng.normal(size=(batch, 12, 48))
            with no_grad():
                assert np.array_equal(
                    vlm(flat, instructions).numpy(), vlm.infer(flat, instructions)
                )
                assert np.array_equal(
                    vlm(windowed, instructions).numpy(), vlm.infer(windowed, instructions)
                )
                assert np.array_equal(vit(flat).numpy(), vit.infer(flat))

    def test_sigmoid_values_matches_masked_reference(self, rng):
        from repro.nn.tensor import sigmoid_values

        z = rng.normal(scale=40.0, size=4096)  # deep into both saturation tails
        reference = np.empty_like(z)
        positive = z >= 0
        reference[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        exp_z = np.exp(z[~positive])
        reference[~positive] = exp_z / (1.0 + exp_z)
        assert np.array_equal(sigmoid_values(z), reference)


class TestSwapaxes:
    def test_forward_matches_numpy(self, rng):
        from repro.nn.tensor import Tensor

        x = rng.normal(size=(3, 4, 5))
        assert np.array_equal(
            Tensor(x).swapaxes(-1, -2).numpy(), np.swapaxes(x, -1, -2)
        )

    def test_gradient_swaps_back(self, rng):
        from repro.nn.tensor import Tensor

        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        weights = rng.normal(size=(2, 4, 3))
        (x.swapaxes(-1, -2) * Tensor(weights)).sum().backward()
        assert np.array_equal(x.grad, np.swapaxes(weights, -1, -2))

    def test_attention_uses_single_node_transpose(self, rng):
        """TransformerVLM's attention trains through swapaxes (gradcheck)."""
        from repro.nn.attention import MultiHeadSelfAttention
        from repro.nn.tensor import Tensor

        attention = MultiHeadSelfAttention(dim=4, heads=2, rng=rng)
        x0 = rng.normal(size=(2, 3, 4))  # batched rank-3 input

        def fn(x):
            return (attention(x) * attention(x)).sum()

        x = Tensor(x0.copy(), requires_grad=True)
        fn(x).backward()
        analytic = x.grad.copy()
        eps = 1e-6
        numeric = np.zeros_like(x0)
        for i in range(x0.size):
            plus, minus = x0.copy().ravel(), x0.copy().ravel()
            plus[i] += eps
            minus[i] -= eps
            numeric.ravel()[i] = (
                fn(Tensor(plus.reshape(x0.shape))).item()
                - fn(Tensor(minus.reshape(x0.shape))).item()
            ) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)
