"""Tests for the camera model, demonstrations and supervision targets."""

import numpy as np
import pytest

from repro.core import PREDICTION_HORIZON
from repro.sim import (
    OBSERVATION_DIM,
    RAW_FEATURE_DIM,
    SEEN_LAYOUT,
    UNSEEN_LAYOUT,
    ActionNormalizer,
    CameraModel,
    baseline_target,
    collect_demonstrations,
    corki_targets,
    min_jerk_profile,
    render_keyframes,
    sample_scene,
)
from repro.sim.tasks import Keyframe


class TestCamera:
    def test_observation_shape_and_range(self):
        scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(0))
        camera = CameraModel(noise_std=0.0)
        obs = camera.render(scene, np.random.default_rng(1))
        assert obs.shape == (OBSERVATION_DIM,)
        assert np.all(np.abs(obs) <= 1.0)

    def test_raw_features_dimension(self):
        scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(0))
        assert CameraModel.raw_features(scene).shape == (RAW_FEATURE_DIM,)

    def test_noise_free_render_is_deterministic(self):
        scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(0))
        camera = CameraModel(noise_std=0.0)
        a = camera.render(scene, np.random.default_rng(1))
        b = camera.render(scene, np.random.default_rng(2))
        assert np.allclose(a, b)

    def test_scene_changes_move_pixels(self):
        scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(0))
        camera = CameraModel(noise_std=0.0)
        before = camera.render(scene, np.random.default_rng(1))
        scene.blocks["red"].position[0] += 0.05
        after = camera.render(scene, np.random.default_rng(1))
        assert not np.allclose(before, after)

    def test_domain_shift_changes_response(self):
        scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(0))
        seen = CameraModel(noise_std=0.0, domain_shift=0.0)
        unseen = CameraModel(noise_std=0.0, domain_shift=UNSEEN_LAYOUT.camera_shift)
        a = seen.render(scene, np.random.default_rng(1))
        b = unseen.render(scene, np.random.default_rng(1))
        assert not np.allclose(a, b)

    def test_sensor_noise_scale(self):
        scene = sample_scene(SEEN_LAYOUT, np.random.default_rng(0))
        camera = CameraModel(noise_std=0.02)
        rng = np.random.default_rng(1)
        samples = np.array([camera.render(scene, rng) for _ in range(50)])
        assert samples.std(axis=0).mean() == pytest.approx(0.02, rel=0.3)


class TestExpertRendering:
    def test_min_jerk_boundary_conditions(self):
        s = np.array([0.0, 1.0])
        blend = min_jerk_profile(s)
        assert blend[0] == 0.0 and blend[1] == pytest.approx(1.0)

    def test_min_jerk_monotone(self):
        s = np.linspace(0, 1, 50)
        assert np.all(np.diff(min_jerk_profile(s)) >= 0)

    def test_render_hits_keyframes(self):
        start = np.zeros(6)
        keyframes = [
            Keyframe(np.array([0.1, 0, 0.1, 0, 0, 0]), True, 0.3),
            Keyframe(np.array([0.1, 0.2, 0.1, 0, 0, 0]), False, 0.3),
        ]
        trajectory = render_keyframes(start, keyframes)
        assert np.allclose(trajectory.poses[0], start)
        assert np.allclose(trajectory.poses[-1], keyframes[-1].pose)
        # Gripper command during the second segment is closed.
        assert not trajectory.gripper_open[-1]

    def test_render_frame_count(self):
        keyframes = [Keyframe(np.ones(6), True, 0.5)]
        trajectory = render_keyframes(np.zeros(6), keyframes, frame_dt=1 / 30)
        assert len(trajectory) == 1 + round(0.5 * 30)
        assert trajectory.duration == pytest.approx(0.5)


class TestSupervisionTargets:
    @pytest.fixture(scope="class")
    def demo(self):
        demos = collect_demonstrations(
            SEEN_LAYOUT, np.random.default_rng(0), per_task=1
        )
        return demos[0]

    def test_baseline_target_is_next_delta(self, demo):
        delta, gripper = baseline_target(demo, 3)
        assert np.allclose(delta, demo.poses[4] - demo.poses[3])
        assert gripper in (0.0, 1.0)

    def test_baseline_target_final_frame(self, demo):
        delta, _ = baseline_target(demo, len(demo) - 1)
        assert np.allclose(delta, np.zeros(6))

    def test_corki_targets_are_cumulative_offsets(self, demo):
        offsets, gripper = corki_targets(demo, 2, PREDICTION_HORIZON)
        assert offsets.shape == (PREDICTION_HORIZON, 6)
        assert np.allclose(offsets[0], demo.poses[3] - demo.poses[2])
        assert np.allclose(offsets[4], demo.poses[7] - demo.poses[2])
        assert gripper.shape == (PREDICTION_HORIZON,)

    def test_normalizer_roundtrip(self, demo):
        normalizer = ActionNormalizer.fit([demo])
        delta = np.array([0.01, -0.02, 0.005, 0.0, 0.0, 0.1])
        assert np.allclose(normalizer.denormalize(normalizer.normalize(delta)), delta)

    def test_normalizer_floors_scale(self):
        demo_poses = np.zeros((5, 6))
        from repro.sim.dataset import Demonstration

        flat = Demonstration(
            instruction_id=0,
            observations=np.zeros((5, OBSERVATION_DIM)),
            poses=demo_poses,
            clean_poses=demo_poses,
            gripper_open=np.ones(5, dtype=bool),
            succeeded=True,
        )
        normalizer = ActionNormalizer.fit([flat])
        assert np.all(normalizer.scale >= 1e-4)
