"""The scalar-vs-batched differential harness.

Every lane-batched kernel in the architecture half must be **bitwise**
equal, per lane, to its frozen scalar reference -- across fleet sizes, and
independently of which other lanes share the batch.  This file is the
contract: a batched kernel lands together with a case here driving it
against the scalar function through :func:`assert_scalar_batched_equal`.
"""

import numpy as np
import pytest

from repro.accelerator import (
    ALL_UNITS,
    AcceleratorLanes,
    CorkiAccelerator,
    baseline_cycles,
    baseline_cycles_lanes,
    pipelined_cycles,
    pipelined_cycles_lanes,
    reuse_cycles,
    reuse_cycles_lanes,
)
from repro.analysis.calibration import (
    sample_trajectory,
    threshold_sweep,
    track_trajectories_lanes,
    track_trajectory,
)
from repro.pipeline import (
    PipelineLane,
    SystemStages,
    estimate_from_steps,
    estimate_lanes,
    lane_jitter_rng,
    simulate_baseline,
    simulate_corki,
    simulate_lanes,
)
from repro.robot import (
    TaskSpaceComputedTorqueController,
    forward_kinematics,
    forward_kinematics_lanes,
    geometric_jacobian_lanes,
    geometric_jacobian_reference,
    ik_step,
    ik_step_lanes,
    jacobian_dot_qd_lanes,
    jacobian_dot_qd_reference,
    mass_matrix_lanes,
    mass_matrix_reference,
    pose_error_lanes,
    rnea_lanes,
    rnea_reference,
    semi_implicit_euler_step,
    semi_implicit_euler_step_lanes,
)
from repro.robot.control import TaskSpaceReference
from repro.robot.integrators import JointState

FLEET_SIZES = (1, 2, 7, 32)


def assert_scalar_batched_equal(batched, scalars):
    """Assert lane ``i`` of a batched result equals scalar result ``i`` bitwise.

    ``batched`` is an array (leading lane axis) or a sequence of per-lane
    results; ``scalars`` is the list of scalar-reference results.  Equality
    is exact -- same values, same dtype, no tolerance -- because the batched
    kernels promise bit-identical arithmetic, not approximate agreement.
    """
    assert len(batched) == len(scalars), "lane count mismatch"
    for lane, scalar in enumerate(scalars):
        got = np.asarray(batched[lane])
        want = np.asarray(scalar)
        assert got.shape == want.shape, f"lane {lane}: shape {got.shape} != {want.shape}"
        assert got.dtype == want.dtype, f"lane {lane}: dtype {got.dtype} != {want.dtype}"
        assert (got == want).all(), f"lane {lane}: values differ from scalar reference"


def lane_states(model, lanes, seed=0):
    """Deterministic per-lane joint states exercising the workspace."""
    rng = np.random.default_rng(seed)
    q = model.q_home + rng.normal(0.0, 0.35, (lanes, model.dof))
    qd = rng.normal(0.0, 0.6, (lanes, model.dof))
    qdd = rng.normal(0.0, 0.4, (lanes, model.dof))
    return q, qd, qdd


@pytest.mark.parametrize("lanes", FLEET_SIZES)
class TestRobotKernels:
    def test_rnea(self, panda_model, lanes):
        q, qd, qdd = lane_states(panda_model, lanes)
        batched = rnea_lanes(panda_model, q, qd, qdd)
        scalars = [rnea_reference(panda_model, q[k], qd[k], qdd[k]) for k in range(lanes)]
        assert_scalar_batched_equal(batched, scalars)

    def test_mass_matrix(self, panda_model, lanes):
        q, _, _ = lane_states(panda_model, lanes, seed=1)
        batched = mass_matrix_lanes(panda_model, q)
        scalars = [mass_matrix_reference(panda_model, q[k]) for k in range(lanes)]
        assert_scalar_batched_equal(batched, scalars)

    def test_jacobian(self, panda_model, lanes):
        q, _, _ = lane_states(panda_model, lanes, seed=2)
        batched = geometric_jacobian_lanes(panda_model, q)
        scalars = [geometric_jacobian_reference(panda_model, q[k]) for k in range(lanes)]
        assert_scalar_batched_equal(batched, scalars)

    def test_jacobian_dot_qd_with_resting_lanes(self, panda_model, lanes):
        q, qd, _ = lane_states(panda_model, lanes, seed=3)
        if lanes >= 2:
            qd[1] = 0.0  # a resting lane must not perturb the moving lanes
        batched = jacobian_dot_qd_lanes(panda_model, q, qd)
        scalars = [jacobian_dot_qd_reference(panda_model, q[k], qd[k]) for k in range(lanes)]
        assert_scalar_batched_equal(batched, scalars)

    def test_forward_kinematics(self, panda_model, lanes):
        q, _, _ = lane_states(panda_model, lanes, seed=4)
        batched = forward_kinematics_lanes(panda_model, q)
        scalars = [forward_kinematics(panda_model, q[k]) for k in range(lanes)]
        assert_scalar_batched_equal(batched, scalars)

    def test_ik_step(self, panda_model, lanes):
        rng = np.random.default_rng(5)
        q, _, _ = lane_states(panda_model, lanes, seed=5)
        targets = np.stack(
            [
                np.concatenate(
                    [
                        forward_kinematics(panda_model, panda_model.q_home)[:3, 3]
                        + rng.normal(0.0, 0.05, 3),
                        rng.normal(0.0, 0.2, 3),
                    ]
                )
                for _ in range(lanes)
            ]
        )
        batched = ik_step_lanes(panda_model, q, targets)
        scalars = [ik_step(panda_model, q[k], targets[k]) for k in range(lanes)]
        assert_scalar_batched_equal(batched, scalars)

    def test_integrator_step(self, panda_model, lanes):
        q, qd, _ = lane_states(panda_model, lanes, seed=6)
        rng = np.random.default_rng(7)
        tau = rng.normal(0.0, 5.0, (lanes, panda_model.dof))
        q_next, qd_next = semi_implicit_euler_step_lanes(panda_model, q, qd, tau, 0.002)
        scalars = [
            semi_implicit_euler_step(panda_model, JointState(q[k], qd[k]), tau[k], 0.002)
            for k in range(lanes)
        ]
        assert_scalar_batched_equal(q_next, [s.q for s in scalars])
        assert_scalar_batched_equal(qd_next, [s.qd for s in scalars])

    def test_pose_error(self, panda_model, lanes):
        q, _, _ = lane_states(panda_model, lanes, seed=8)
        rng = np.random.default_rng(9)
        references = rng.normal(0.0, 0.3, (lanes, 6))
        controller = TaskSpaceComputedTorqueController(panda_model)
        batched = pose_error_lanes(panda_model, q, references)
        scalars = [controller.pose_error(references[k], q[k]) for k in range(lanes)]
        assert_scalar_batched_equal(batched, scalars)


def pipeline_lane_specs(lanes, seed=21):
    """A mixed bag of baseline / Corki / CPU-control / no-jitter lanes."""
    specs = []
    for index in range(lanes):
        rng = None if index % 5 == 4 else lane_jitter_rng(seed, index)
        kind = index % 3
        if kind == 0:
            specs.append(PipelineLane(f"lane-{index}", frames=20 + index, rng=rng))
        elif kind == 1:
            specs.append(
                PipelineLane(
                    f"lane-{index}",
                    executed_steps=(5, 1, 3, 7, 2)[: 2 + index % 3],
                    rng=rng,
                )
            )
        else:
            specs.append(
                PipelineLane(
                    f"lane-{index}",
                    executed_steps=(4, 4, 6),
                    stages=SystemStages.corki(control="cpu"),
                    rng=rng,
                )
            )
    return specs


@pytest.mark.parametrize("lanes", FLEET_SIZES)
class TestPipelineTraces:
    def scalar_trace(self, spec):
        if spec.frames is not None:
            return simulate_baseline(
                spec.frames, stages=spec.stages, rng=spec.rng, name=spec.name
            )
        return simulate_corki(
            list(spec.executed_steps), stages=spec.stages, rng=spec.rng, name=spec.name
        )

    def test_simulate_lanes_matches_scalar(self, lanes):
        arrays = simulate_lanes(pipeline_lane_specs(lanes))
        scalars = [self.scalar_trace(spec) for spec in pipeline_lane_specs(lanes)]
        assert_scalar_batched_equal(
            [view.latencies_ms() for view in arrays],
            [trace.latencies_ms() for trace in scalars],
        )
        assert_scalar_batched_equal(
            [view.energies_j() for view in arrays],
            [trace.energies_j() for trace in scalars],
        )
        for view, trace in zip(arrays, scalars):
            assert view.mean_latency_ms == trace.mean_latency_ms
            assert view.mean_energy_j == trace.mean_energy_j
            for stage in ("inference_ms", "control_ms", "communication_ms",
                          "inference_j", "control_j", "communication_j"):
                got = np.array([getattr(r, stage) for r in view.records()])
                want = np.array([getattr(r, stage) for r in trace.frames])
                assert (got == want).all(), stage

    def test_jitter_streams_are_fleet_size_invariant(self, lanes):
        # Lane 0's bytes must not depend on how many lanes share the batch.
        solo = simulate_lanes(pipeline_lane_specs(1)).view(0)
        fleet = simulate_lanes(pipeline_lane_specs(lanes)).view(0)
        assert (fleet.latencies_ms() == solo.latencies_ms()).all()
        assert (fleet.energies_j() == solo.energies_j()).all()


@pytest.mark.parametrize("lanes", FLEET_SIZES)
class TestDatapathCosting:
    def test_unit_cycles(self, lanes):
        links = np.arange(1, lanes + 1, dtype=np.int64)
        for unit in ALL_UNITS:
            batched = unit.cycles_lanes(links)
            scalars = [unit.cycles(int(n)) for n in links]
            assert_scalar_batched_equal(batched, scalars)
            assert batched.dtype == np.int64

    def test_schedules(self, lanes):
        links = np.arange(1, lanes + 1, dtype=np.int64)
        for batched_fn, scalar_fn in (
            (baseline_cycles_lanes, baseline_cycles),
            (reuse_cycles_lanes, reuse_cycles),
            (pipelined_cycles_lanes, pipelined_cycles),
        ):
            batched = batched_fn(links)
            scalars = [scalar_fn(int(n)).cycles for n in links]
            assert_scalar_batched_equal(batched, scalars)


@pytest.mark.parametrize("lanes", FLEET_SIZES)
def test_estimate_lanes_is_fleet_size_invariant(lanes):
    steps = [[5, 3, 7] for _ in range(lanes)]
    batch = estimate_lanes("corki-5", steps, seed=11)
    for index, estimate in enumerate(batch):
        assert estimate == estimate_from_steps("corki-5", [5, 3, 7], seed=11, lane=index)


class TestAcceleratorLanes:
    def tick_inputs(self, model, lanes, seed):
        rng = np.random.default_rng(seed)
        q = model.q_home + rng.normal(0.0, 0.05, (lanes, model.dof))
        qd = rng.normal(0.0, 0.1, (lanes, model.dof))
        poses = rng.normal(0.0, 0.3, (lanes, 6))
        velocities = rng.normal(0.0, 0.1, (lanes, 6))
        accelerations = rng.normal(0.0, 0.1, (lanes, 6))
        return q, qd, poses, velocities, accelerations

    @pytest.mark.parametrize("lanes", (1, 2, 7))
    def test_control_ticks_match_scalar(self, panda_model, lanes):
        scalar_accs = [CorkiAccelerator(panda_model, threshold=0.4) for _ in range(lanes)]
        batched_accs = [CorkiAccelerator(panda_model, threshold=0.4) for _ in range(lanes)]
        bank = AcceleratorLanes(batched_accs)
        q, qd, poses, velocities, accelerations = self.tick_inputs(panda_model, lanes, 31)
        for tick in range(3):
            # Nudge a subset of lanes so ACE decisions diverge across lanes.
            q = q.copy()
            q[tick % lanes] += 0.2
            result = bank.control_tick_lanes(poses, velocities, accelerations, q, qd)
            scalars = [
                acc.control_tick(
                    TaskSpaceReference(poses[k], velocities[k], accelerations[k]),
                    q[k],
                    qd[k],
                )
                for k, acc in enumerate(scalar_accs)
            ]
            assert_scalar_batched_equal(result.torques, [t.torque for t in scalars])
            assert [int(c) for c in result.cycles] == [t.cycles for t in scalars]
            assert result.updated == [t.updated for t in scalars]
        for scalar, batched in zip(scalar_accs, batched_accs):
            assert scalar.cycle_log == batched.cycle_log
            assert scalar.skip_rate == batched.skip_rate

    def test_mismatched_gains_are_rejected(self, panda_model):
        from repro.robot import ControlGains

        a = CorkiAccelerator(panda_model)
        b = CorkiAccelerator(panda_model, gains=ControlGains(nullspace_damping=3.0))
        with pytest.raises(ValueError):
            AcceleratorLanes([a, b])

    def test_empty_fleet_is_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorLanes([])


class TestTrackingLanes:
    def test_track_trajectories_matches_scalar(self, panda_model):
        rng = np.random.default_rng(3)
        samples = [sample_trajectory(panda_model, rng, steps=3) for _ in range(2)]
        scalar_accs = [CorkiAccelerator(panda_model, threshold=0.4) for _ in samples]
        scalar_reports = [
            track_trajectory(panda_model, trajectory, accelerator=acc)
            for trajectory, acc in zip(samples, scalar_accs)
        ]
        batched_accs = [CorkiAccelerator(panda_model, threshold=0.4) for _ in samples]
        batched_reports = track_trajectories_lanes(
            panda_model, samples, accelerators=batched_accs
        )
        assert scalar_reports == batched_reports
        for scalar, batched in zip(scalar_accs, batched_accs):
            assert scalar.cycle_log == batched.cycle_log

    def test_software_controller_lanes_match_scalar(self, panda_model):
        rng = np.random.default_rng(4)
        samples = [sample_trajectory(panda_model, rng, steps=3) for _ in range(2)]
        scalar_reports = [track_trajectory(panda_model, t) for t in samples]
        assert track_trajectories_lanes(panda_model, samples) == scalar_reports

    def test_unequal_durations_are_rejected(self, panda_model):
        rng = np.random.default_rng(5)
        samples = [
            sample_trajectory(panda_model, rng, steps=3),
            sample_trajectory(panda_model, rng, steps=4),
        ]
        with pytest.raises(ValueError):
            track_trajectories_lanes(panda_model, samples)

    def test_threshold_sweep_batched_equals_scalar(self):
        kwargs = dict(thresholds=[0.0, 0.6], trajectories=1)
        assert threshold_sweep(**kwargs) == threshold_sweep(batched=False, **kwargs)


class TestFigureLanes:
    ADAP_STEPS = [5, 3, 7, 5, 4, 6, 5, 5, 9, 1, 2, 5]

    def scalar_traces(self, specs):
        harness = TestPipelineTraces()
        return {spec.name: harness.scalar_trace(spec) for spec in specs}

    def test_fig13_batched_equals_scalar(self):
        from repro.experiments.fig13_latency_energy import system_lanes

        batched = {view.name: view for view in simulate_lanes(system_lanes(60, self.ADAP_STEPS))}
        scalars = self.scalar_traces(system_lanes(60, self.ADAP_STEPS))
        assert set(batched) == set(scalars)
        for name, trace in scalars.items():
            assert (batched[name].latencies_ms() == trace.latencies_ms()).all()
            assert (batched[name].energies_j() == trace.energies_j()).all()

    def test_fig13_streams_keyed_per_system(self):
        # The regression the keying fixes: removing one system must leave
        # every other system's bytes untouched.
        from repro.experiments.fig13_latency_energy import system_lanes

        full = {view.name: view for view in simulate_lanes(system_lanes(60, self.ADAP_STEPS))}
        subset_specs = [
            spec for spec in system_lanes(60, self.ADAP_STEPS) if spec.name != "corki-3"
        ]
        subset = {view.name: view for view in simulate_lanes(subset_specs)}
        for name, view in subset.items():
            assert (view.latencies_ms() == full[name].latencies_ms()).all()

    def test_fig14_batched_equals_scalar(self):
        from repro.experiments.fig14_frame_analysis import frame_lanes

        batched = {view.name: view for view in simulate_lanes(frame_lanes(self.ADAP_STEPS))}
        scalars = self.scalar_traces(frame_lanes(self.ADAP_STEPS))
        for name, trace in scalars.items():
            assert (batched[name].latencies_ms() == trace.latencies_ms()).all()
            assert batched[name].mean_energy_j == trace.mean_energy_j
